"""The paper's running example (Section 3, Examples 3.1-3.4, Figure 4).

Walks through every step of BF-CBO on the three-table query

    SELECT * FROM t1, t2, t3
    WHERE t1.c2 = t2.c1 AND t2.c2 = t3.c1 AND t2.c3 < 100;

at the paper's cardinalities (t1 = 600M, t2 ≈ 807K after filtering, t3 = 1M),
showing the marked Bloom filter candidates, the Δ lists collected in the first
bottom-up phase, and the final BF-Post vs BF-CBO plans side by side.

Run with ``python examples/running_example_paper.py``.
"""

from __future__ import annotations

from repro.experiments import run_running_example


def main() -> None:
    result = run_running_example()
    print(result.to_text())
    print("\nJoin orders:")
    print("  BF-Post:", " | ".join(result.bf_post_join_order))
    print("  BF-CBO :", " | ".join(result.bf_cbo_join_order))
    print("\nEstimated plan cost: BF-Post %.0f vs BF-CBO %.0f"
          % (result.bf_post.estimated_cost, result.bf_cbo.estimated_cost))


if __name__ == "__main__":
    main()
