"""The paper's running example (Section 3, Examples 3.1-3.4, Figure 4).

Walks through BF-CBO on the three-table query

    SELECT * FROM t1, t2, t3
    WHERE t1.c2 = t2.c1 AND t2.c2 = t3.c1 AND t2.c3 < 100;

at the paper's cardinalities (t1 = 600M, t2 ≈ 807K after filtering, t3 = 1M),
entirely through the session API: a statistics-only catalog is registered on
a :class:`repro.api.Database`, the SQL is planned by a session, and the
marked Bloom filter candidates with their Δ lists are read off the
optimization's BF-CBO report before the final BF-Post and BF-CBO plans are
compared side by side.

Run with ``python examples/running_example_paper.py``.
"""

from __future__ import annotations

from repro.api import (
    Catalog,
    Database,
    ForeignKey,
    INT64,
    OptimizerMode,
    join_order_summary,
    make_schema,
    synthetic_statistics,
)

QUERY = """
    select *
    from t1, t2, t3
    where t1.c2 = t2.c1 and t2.c2 = t3.c1 and t2.c3 < 100
"""

#: Paper cardinalities: t1 600M rows, t2 807K rows after its local predicate,
#: t3 1M rows.
T1_ROWS = 600_000_000
T2_ROWS = 8_070_000
T3_ROWS = 1_000_000


def main() -> None:
    db = Database(Catalog())
    db.register_schema(
        make_schema("t1", [("c1", INT64), ("c2", INT64)], primary_key=["c1"]),
        synthetic_statistics("t1", T1_ROWS, {"c1": T1_ROWS, "c2": 22_000_000}))
    db.register_schema(
        make_schema("t2", [("c1", INT64), ("c2", INT64), ("c3", INT64)],
                    primary_key=["c1"],
                    foreign_keys=[ForeignKey("c2", "t3", "c1")]),
        synthetic_statistics("t2", T2_ROWS,
                             {"c1": T2_ROWS, "c2": 770_000, "c3": 1_000},
                             {"c3": (0.0, 999.0)}))
    db.register_schema(
        make_schema("t3", [("c1", INT64)], primary_key=["c1"]),
        synthetic_statistics("t3", T3_ROWS, {"c1": T3_ROWS}))

    session = db.connect()
    bf_post = session.plan(QUERY, OptimizerMode.BF_POST, name="running-example")
    bf_cbo = session.plan(QUERY, OptimizerMode.BF_CBO, name="running-example")

    print("Running example (Section 3)")
    report = bf_cbo.optimization.bfcbo_report
    print("\nBloom filter candidates (Example 3.1) and Δ lists (Example 3.2):")
    for alias, cands in sorted(report.first_phase.candidates.items()):
        for cand in cands:
            print("  %s.bfc: apply=%s build=%s Δ=%s"
                  % (alias, cand.apply_column, cand.build_column,
                     [sorted(d) for d in cand.deltas]))

    print("\nBF-Post plan (Figure 4a):")
    print(bf_post.explain())
    print("\nBF-CBO plan (Figure 4b):")
    print(bf_cbo.explain())

    print("\nJoin orders:")
    print("  BF-Post:", " | ".join(join_order_summary(bf_post.optimization.join_plan)))
    print("  BF-CBO :", " | ".join(join_order_summary(bf_cbo.optimization.join_plan)))
    print("\nEstimated plan cost: BF-Post %.0f vs BF-CBO %.0f"
          % (bf_post.estimated_cost, bf_cbo.estimated_cost))


if __name__ == "__main__":
    main()
