"""The async serving tier: admission control, deadlines, result caching.

This example stands up :class:`repro.serving.AsyncDatabase` over a TPC-H
database and walks the serving features end to end:

1. two "dashboard" tenants hammer a hot query cycle concurrently — repeats
   are served from the shared result cache (``result_cache_size``),
2. an "adhoc" tenant runs unique queries on a low-weight quota, so the
   weighted-fair queue keeps it from crowding out the dashboards,
3. a deadline-bound request is cancelled cooperatively mid-execution with a
   typed :class:`~repro.errors.QueryCancelledError`,
4. a deliberately tiny queue sheds overload with a typed
   :class:`~repro.errors.AdmissionError` instead of buffering unboundedly.

See ``docs/serving.md`` for the architecture.  Run with
``python examples/async_serving.py`` (``--scale`` shrinks the dataset).
"""

from __future__ import annotations

import argparse
import asyncio

from repro.api import Database
from repro.errors import AdmissionError, QueryCancelledError
from repro.serving import AsyncDatabase, TenantQuota

#: The hot-query cycle the dashboard tenants repeat.
HOT_QUERIES = [3, 10, 12]
REPEATS = 8


async def serve(db: Database, workers: int) -> None:
    async with AsyncDatabase(
            db, workers=workers, max_queue_depth=128,
            quotas={"adhoc": TenantQuota(max_concurrency=1, weight=0.5)},
    ) as serving:
        # 1. Hot repeats from two tenants + unique ad-hoc queries.
        requests = []
        for repeat in range(REPEATS):
            for index, number in enumerate(HOT_QUERIES):
                requests.append(serving.execute_async(
                    db.tpch_query(number), tenant="dash-%d" % (index % 2)))
        for unique in range(6):
            requests.append(serving.execute_async(
                "select count(*) as n from lineitem where l_quantity <= %d"
                % (5 + unique), tenant="adhoc"))
        results = await asyncio.gather(*requests)

        snapshot = serving.snapshot()
        hot = sum(1 for r in results if r.from_result_cache)
        print("served %d requests across %d tenants: %d result-cache hits"
              % (len(results), len(snapshot.tenants), hot))
        latency = snapshot.latency
        print("latency p50/p95/p99: %.1f / %.1f / %.1f ms"
              % (latency.p50_ms, latency.p95_ms, latency.p99_ms))

        # 2. A deadline too tight to meet: cooperative cancellation stops
        #    the query within one morsel and raises a typed error.
        try:
            await serving.execute_async(db.tpch_query(18), tenant="dash-0",
                                        timeout=1e-4)
        except QueryCancelledError as error:
            print("deadline enforced: %s" % error)

        # 3. Overload sheds instead of buffering: with one worker and a
        #    one-slot queue, a burst submitted while the worker is busy
        #    mostly rejects with AdmissionError instead of piling up.
        async with AsyncDatabase(db, workers=1,
                                 max_queue_depth=1) as tiny:
            busy = asyncio.ensure_future(
                tiny.execute_async(db.tpch_query(18)))
            burst = [asyncio.ensure_future(
                tiny.execute_async(db.tpch_query(5)))
                for _ in range(8)]
            outcomes = await asyncio.gather(*burst,
                                            return_exceptions=True)
            await busy
            shed = sum(isinstance(o, AdmissionError) for o in outcomes)
            print("overload: %d of %d burst submissions shed with "
                  "AdmissionError" % (shed, len(burst)))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="TPC-H scale factor (default 0.02)")
    parser.add_argument("--workers", type=int, default=4,
                        help="serving worker threads (default 4)")
    args = parser.parse_args()

    print("Generating TPC-H data at scale factor %s ..." % args.scale)
    db = Database.from_tpch(scale_factor=args.scale, result_cache_size=128)
    asyncio.run(serve(db, args.workers))

    stats = db.cache_stats()
    print("result cache: %d hits / %d lookups, %d entries"
          % (stats.result_hits, stats.result_lookups, stats.result_entries))


if __name__ == "__main__":
    main()
