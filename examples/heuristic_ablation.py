"""Ablation of the search-space-limiting heuristics (Sections 3.10 and 4.4).

Runs a subset of the TPC-H workload under several BF-CBO configurations:

* the paper's defaults (Table 2),
* Heuristic 7 enabled (Table 3's plan-list cap),
* Heuristic 9 instead of Heuristic 1 (candidates on both join-clause sides),
* a stricter selectivity threshold (Heuristic 6 at 1/3 instead of 2/3),
* Bloom filters disabled entirely (plain CBO / BF-Post),

and reports total simulated latency, total planning time and the number of
Bloom filters chosen, illustrating the planning-time/plan-quality trade-off
the paper discusses.

Run with ``python examples/heuristic_ablation.py``.
"""

from __future__ import annotations

from repro.core import BfCboSettings, OptimizerMode
from repro.experiments import QueryRunner, format_table, scaled_settings
from repro.tpch import TpchWorkload

QUERY_NUMBERS = [3, 5, 7, 10, 12, 16, 19, 21]
SCALE_FACTOR = 0.01

CONFIGURATIONS = [
    ("BF-Post (baseline)", OptimizerMode.BF_POST, None),
    ("BF-CBO defaults", OptimizerMode.BF_CBO, BfCboSettings.paper_defaults()),
    ("BF-CBO + Heuristic 7", OptimizerMode.BF_CBO, BfCboSettings.with_heuristic7()),
    ("BF-CBO + Heuristic 9", OptimizerMode.BF_CBO,
     BfCboSettings.paper_defaults().with_overrides(use_heuristic9=True)),
    ("BF-CBO strict H6 (sel <= 1/3)", OptimizerMode.BF_CBO,
     BfCboSettings.paper_defaults().with_overrides(max_selectivity=1.0 / 3.0)),
]


def main() -> None:
    print("Generating TPC-H data at scale factor %s ..." % SCALE_FACTOR)
    workload = TpchWorkload.generate(SCALE_FACTOR, query_numbers=QUERY_NUMBERS)
    runner = QueryRunner(workload.catalog, scale_factor=SCALE_FACTOR)

    rows = []
    for label, mode, settings in CONFIGURATIONS:
        total_latency = 0.0
        total_planning = 0.0
        total_filters = 0
        for number in QUERY_NUMBERS:
            run = runner.run(workload.query(number), mode, settings)
            total_latency += run.simulated_latency
            total_planning += run.planning_time_ms
            total_filters += run.num_bloom_filters
        rows.append([label, "%.0f" % total_latency, "%.1f" % total_planning,
                     total_filters])

    baseline = float(rows[0][1])
    for row in rows:
        row.append("%.1f%%" % (100.0 * (baseline - float(row[1])) / baseline))
    print(format_table(
        ["configuration", "total latency", "planning (ms)", "Bloom filters",
         "latency vs BF-Post"],
        rows, title="Heuristic ablation over TPC-H queries %s" % QUERY_NUMBERS))


if __name__ == "__main__":
    main()
