"""Ablation of the search-space-limiting heuristics (Sections 3.10 and 4.4).

Runs a subset of the TPC-H workload under several BF-CBO configurations:

* the paper's defaults (Table 2),
* Heuristic 7 enabled (Table 3's plan-list cap),
* Heuristic 9 instead of Heuristic 1 (candidates on both join-clause sides),
* a stricter selectivity threshold (Heuristic 6 at 1/3 instead of 2/3),
* Bloom filters disabled entirely (plain CBO / BF-Post),

and reports total simulated latency, total planning time and the number of
Bloom filters chosen, illustrating the planning-time/plan-quality trade-off
the paper discusses.  The database is opened with both caches disabled so
every reported planning time is a real, cold optimization.

Run with ``python examples/heuristic_ablation.py`` (``--scale`` and
``--queries`` shrink the run for smoke tests).
"""

from __future__ import annotations

import argparse

from repro.api import BfCboSettings, Database, OptimizerMode, format_table

QUERY_NUMBERS = [3, 5, 7, 10, 12, 16, 19, 21]
SCALE_FACTOR = 0.01

CONFIGURATIONS = [
    ("BF-Post (baseline)", OptimizerMode.BF_POST, None),
    ("BF-CBO defaults", OptimizerMode.BF_CBO, BfCboSettings.paper_defaults()),
    ("BF-CBO + Heuristic 7", OptimizerMode.BF_CBO, BfCboSettings.with_heuristic7()),
    ("BF-CBO + Heuristic 9", OptimizerMode.BF_CBO,
     BfCboSettings.paper_defaults().with_overrides(use_heuristic9=True)),
    ("BF-CBO strict H6 (sel <= 1/3)", OptimizerMode.BF_CBO,
     BfCboSettings.paper_defaults().with_overrides(max_selectivity=1.0 / 3.0)),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=SCALE_FACTOR,
                        help="TPC-H scale factor (default %s)" % SCALE_FACTOR)
    parser.add_argument("--queries", type=str, default=None,
                        help="comma-separated TPC-H query numbers")
    args = parser.parse_args()
    numbers = ([int(n) for n in args.queries.split(",")]
               if args.queries else QUERY_NUMBERS)

    print("Generating TPC-H data at scale factor %s ..." % args.scale)
    db = Database.from_tpch(scale_factor=args.scale, query_numbers=numbers,
                            plan_cache_size=0, sequence_cache_size=0)
    session = db.connect()

    rows = []
    for label, mode, settings in CONFIGURATIONS:
        total_latency = 0.0
        total_planning = 0.0
        total_filters = 0
        for number in numbers:
            result = session.execute(db.tpch_query(number), mode, settings)
            total_latency += result.simulated_latency
            total_planning += result.optimization.planning_time_ms
            total_filters += result.num_bloom_filters
        rows.append([label, "%.0f" % total_latency, "%.1f" % total_planning,
                     total_filters])

    baseline = float(rows[0][1])
    for row in rows:
        row.append("%.1f%%" % (100.0 * (baseline - float(row[1])) / baseline))
    print(format_table(
        ["configuration", "total latency", "planning (ms)", "Bloom filters",
         "latency vs BF-Post"],
        rows, title="Heuristic ablation over TPC-H queries %s" % numbers))


if __name__ == "__main__":
    main()
