"""Quickstart: plan and run a SQL query with and without Bloom-filter-aware CBO.

This example:

1. generates a small deterministic TPC-H dataset (scale factor 0.05),
2. binds an ad-hoc SQL query against it,
3. optimizes it under the three modes the paper compares
   (No-BF, BF-Post, BF-CBO),
4. executes each plan and prints the plan tree, the number of Bloom filters
   applied and the simulated latency.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.core import Optimizer, OptimizerMode, explain
from repro.executor import ExecutionContext, Executor
from repro.sql import bind_sql
from repro.tpch import build_catalog

QUERY = """
    select n_name, count(*) as num_orders, sum(o_totalprice) as total_price
    from customer, orders, nation
    where c_custkey = o_custkey
      and c_nationkey = n_nationkey
      and n_name in ('GERMANY', 'FRANCE')
      and o_orderdate >= date '1995-01-01'
    group by n_name
    order by total_price desc
"""


def main() -> None:
    print("Generating TPC-H data at scale factor 0.05 ...")
    catalog = build_catalog(scale_factor=0.05)
    query = bind_sql(catalog, QUERY, name="quickstart")

    optimizer = Optimizer(catalog)
    context = ExecutionContext.for_catalog(catalog)

    for mode in (OptimizerMode.NO_BF, OptimizerMode.BF_POST,
                 OptimizerMode.BF_CBO):
        result = optimizer.optimize(query, mode)
        execution = Executor(context).execute(result.plan)
        print("\n=== %s ===" % mode.value)
        print("planning time: %.1f ms, Bloom filters: %d"
              % (result.planning_time_ms, result.num_bloom_filters))
        print(explain(result.plan,
                      execution.metrics.actual_rows_by_node()))
        print("simulated latency: %.0f work units, result rows: %d"
              % (execution.simulated_latency, execution.num_rows))
        for name in sorted(execution.batch.keys):
            print("  %s: %s" % (name, list(execution.batch.column(name))))


if __name__ == "__main__":
    main()
