"""Quickstart: plan and run SQL through the embeddable session API.

This example:

1. builds a :class:`repro.api.Database` over a small deterministic TPC-H
   dataset (``Database.from_tpch``),
2. opens a session and prepares an ad-hoc SQL query,
3. executes it under the three modes the paper compares
   (No-BF, BF-Post, BF-CBO), printing the plan tree, the number of Bloom
   filters applied and the simulated latency,
4. executes the BF-CBO variant a second time to show the database's plan
   cache at work (``db.cache_stats()``).

Run with ``python examples/quickstart.py`` (``--scale`` shrinks the dataset
for smoke runs).
"""

from __future__ import annotations

import argparse

from repro.api import Database, OptimizerMode

QUERY = """
    select n_name, count(*) as num_orders, sum(o_totalprice) as total_price
    from customer, orders, nation
    where c_custkey = o_custkey
      and c_nationkey = n_nationkey
      and n_name in ('GERMANY', 'FRANCE')
      and o_orderdate >= date '1995-01-01'
    group by n_name
    order by total_price desc
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="TPC-H scale factor (default 0.05)")
    args = parser.parse_args()

    print("Generating TPC-H data at scale factor %s ..." % args.scale)
    db = Database.from_tpch(scale_factor=args.scale)
    session = db.connect()
    prepared = session.prepare(QUERY, name="quickstart")

    for mode in (OptimizerMode.NO_BF, OptimizerMode.BF_POST,
                 OptimizerMode.BF_CBO):
        result = prepared.execute(mode=mode)
        print("\n=== %s ===" % mode.value)
        print("planning time: %.1f ms, Bloom filters: %d"
              % (result.planning_time_ms, result.num_bloom_filters))
        print(result.explain())
        print("simulated latency: %.0f work units, result rows: %d"
              % (result.simulated_latency, result.num_rows))
        for name in sorted(result.columns):
            print("  %s: %s" % (name, list(result.column(name))))

    # Re-running the same query hits the plan cache: no re-optimization.
    again = prepared.execute(mode=OptimizerMode.BF_CBO)
    stats = db.cache_stats()
    print("\nre-run from plan cache: %s (%.2f ms to fetch the plan)"
          % (again.from_plan_cache, again.planning_time_ms))
    print("cache stats: %d/%d plan hits, %d/%d enumeration-sequence hits"
          % (stats.plan_hits, stats.plan_lookups,
             stats.sequence_hits, stats.sequence_lookups))


if __name__ == "__main__":
    main()
