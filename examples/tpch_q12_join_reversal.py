"""TPC-H Q12: the join-input reversal of Figure 1.

The paper shows that without Bloom-filter-aware costing, Q12 keeps `orders`
on the build side of the hash join (and no Bloom filter can help, because the
probe side joins a foreign key against an unfiltered primary key), whereas
BF-CBO reverses the join inputs so that a Bloom filter built on the filtered
`lineitem` can prune `orders` during its scan — reducing query latency by
49.2% in the paper.

This example first shows the plan shapes at the paper's SF100 statistics, then
executes both plans on a small generated dataset to show the observed
per-operator row counts.

Run with ``python examples/tpch_q12_join_reversal.py``.
"""

from __future__ import annotations

from repro.experiments import run_q12_case_study


def main() -> None:
    print("Plan shapes at SF100 statistics (no execution):")
    planning_only = run_q12_case_study(scale_factor=100.0, execute=False)
    print("  BF-Post join order:", " | ".join(planning_only.bf_post_join_order))
    print("  BF-CBO  join order:", " | ".join(planning_only.bf_cbo_join_order))
    print("  Bloom filters: BF-Post=%d, BF-CBO=%d"
          % (planning_only.bf_post_filters, planning_only.bf_cbo_filters))
    print("  plan changed by BF-CBO:", planning_only.plan_changed)

    print("\nExecution at scale factor 0.02:")
    executed = run_q12_case_study(scale_factor=0.02, execute=True)
    print(executed.to_text())


if __name__ == "__main__":
    main()
