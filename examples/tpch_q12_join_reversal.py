"""TPC-H Q12: the join-input reversal of Figure 1.

The paper shows that without Bloom-filter-aware costing, Q12 keeps `orders`
on the build side of the hash join (and no Bloom filter can help, because the
probe side joins a foreign key against an unfiltered primary key), whereas
BF-CBO reverses the join inputs so that a Bloom filter built on the filtered
`lineitem` can prune `orders` during its scan — reducing query latency by
49.2% in the paper.

Everything runs through the session API: a statistics-only database shows the
plan shapes at the paper's SF100 cardinalities, then a small materialised
database executes both plans and reports the observed per-operator row
counts.

Run with ``python examples/tpch_q12_join_reversal.py``.
"""

from __future__ import annotations

import argparse

from repro.api import Database, OptimizerMode, join_order_summary, percent_reduction


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="scale factor of the executed run (default 0.02)")
    args = parser.parse_args()

    print("Plan shapes at SF100 statistics (no execution):")
    paper_db = Database.from_tpch(scale_factor=100.0, statistics_only=True,
                                  query_numbers=[12])
    planner = paper_db.connect()
    bf_post = planner.plan(paper_db.tpch_query(12), OptimizerMode.BF_POST)
    bf_cbo = planner.plan(paper_db.tpch_query(12), OptimizerMode.BF_CBO)
    post_order = join_order_summary(bf_post.optimization.join_plan)
    cbo_order = join_order_summary(bf_cbo.optimization.join_plan)
    print("  BF-Post join order:", " | ".join(post_order))
    print("  BF-CBO  join order:", " | ".join(cbo_order))
    print("  Bloom filters: BF-Post=%d, BF-CBO=%d"
          % (bf_post.num_bloom_filters, bf_cbo.num_bloom_filters))
    print("  plan changed by BF-CBO:", post_order != cbo_order)

    print("\nExecution at scale factor %s:" % args.scale)
    db = Database.from_tpch(scale_factor=args.scale, query_numbers=[12])
    session = db.connect()
    executed_post = session.execute(db.tpch_query(12), OptimizerMode.BF_POST)
    executed_cbo = session.execute(db.tpch_query(12), OptimizerMode.BF_CBO)
    print("\nBF-Post plan (%d Bloom filters):" % executed_post.num_bloom_filters)
    print(executed_post.explain())
    print("\nBF-CBO plan (%d Bloom filters):" % executed_cbo.num_bloom_filters)
    print(executed_cbo.explain())
    print("\nLatency improvement of BF-CBO over BF-Post: %.1f%%"
          % percent_reduction(executed_post.simulated_latency,
                              executed_cbo.simulated_latency))


if __name__ == "__main__":
    main()
