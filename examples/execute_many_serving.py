"""Batched high-throughput serving with ``execute_many``.

This example simulates a serving workload — a small set of hot TPC-H
queries repeated many times, the way dashboards and APIs hammer a database —
and contrasts three ways of running it:

1. a warm single session executing the requests one by one (the baseline),
2. ``Database.execute_many``: request collapsing (identical queries execute
   once and share the immutable result) plus concurrent execution in
   per-query filter scopes,
3. the same batch with morsel-parallel operators (``executor_workers``)
   layered underneath.

Results are verified identical across all three, as are the deterministic
simulated-latency metrics — the parallel paths only change wall-clock time
(see ``docs/executor.md``).

Run with ``python examples/execute_many_serving.py`` (``--scale`` shrinks
the dataset for smoke runs).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.api import Database

#: The hot-query cycle; each request repeats every query this many times.
HOT_QUERIES = [3, 5, 10, 12, 19]
REPEATS = 6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="TPC-H scale factor (default 0.02)")
    parser.add_argument("--workers", type=int, default=8,
                        help="serving worker threads (default 8)")
    args = parser.parse_args()

    print("Generating TPC-H data at scale factor %s ..." % args.scale)
    db = Database.from_tpch(scale_factor=args.scale)
    numbers = HOT_QUERIES * REPEATS
    queries = [db.tpch_query(n) for n in numbers]

    # Warm the plan cache so every strategy pays execution cost only.
    warm = db.connect(history_limit=0)
    for number in set(numbers):
        warm.execute(db.tpch_query(number))

    session = db.connect(history_limit=0)
    started = time.perf_counter()
    sequential = [session.execute(query) for query in queries]
    sequential_s = time.perf_counter() - started
    print("\nsequential session:   %6.1f ms for %d queries"
          % (sequential_s * 1e3, len(queries)))

    started = time.perf_counter()
    batched = db.execute_many(queries, workers=args.workers)
    batched_s = time.perf_counter() - started
    print("execute_many:         %6.1f ms (%.1fx, %d distinct executions)"
          % (batched_s * 1e3, sequential_s / batched_s,
             len({id(r.execution) for r in batched})))

    started = time.perf_counter()
    morsels = db.execute_many(queries, workers=args.workers,
                              executor_workers=4, morsel_size=8_192)
    morsels_s = time.perf_counter() - started
    print("+ morsel operators:   %6.1f ms (%.1fx)"
          % (morsels_s * 1e3, sequential_s / morsels_s))

    # Identical rows and identical simulated metrics, request by request.
    for reference, fast, fastest in zip(sequential, batched, morsels):
        assert fast.execution.metrics.total_work_units == \
            reference.execution.metrics.total_work_units
        assert fastest.execution.metrics.total_work_units == \
            reference.execution.metrics.total_work_units
        for key in reference.execution.batch.keys:
            assert np.array_equal(reference.execution.batch.column(key),
                                  fast.execution.batch.column(key))
            assert np.array_equal(reference.execution.batch.column(key),
                                  fastest.execution.batch.column(key))
    print("\nall %d results identical across the three strategies; "
          "simulated latency unchanged" % len(queries))
    stats = db.cache_stats()
    print("plan cache: %d hits / %d lookups" % (stats.plan_hits,
                                                stats.plan_lookups))


if __name__ == "__main__":
    main()
