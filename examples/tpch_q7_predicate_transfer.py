"""TPC-H Q7: predicate transfer through chained Bloom filters (Figure 6).

The paper's Figure 6 shows that BF-CBO changes the join order of Q7 so that
five Bloom filters can be applied instead of one, transferring the nation
predicates through customer to orders and on to lineitem, and improving query
latency by 83.7%.  This example reproduces the comparison through the session
API: plan shape and Bloom filter placement at SF100 statistics, then an
execution at a small scale factor with observed row counts.

Run with ``python examples/tpch_q7_predicate_transfer.py``.
"""

from __future__ import annotations

import argparse

from repro.api import (
    Database,
    OptimizerMode,
    bloom_filter_summary,
    join_order_summary,
    percent_reduction,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="scale factor of the executed run (default 0.02)")
    args = parser.parse_args()

    print("Plan shapes at SF100 statistics (no execution):")
    paper_db = Database.from_tpch(scale_factor=100.0, statistics_only=True,
                                  query_numbers=[7])
    planner = paper_db.connect()
    bf_post = planner.plan(paper_db.tpch_query(7), OptimizerMode.BF_POST)
    bf_cbo = planner.plan(paper_db.tpch_query(7), OptimizerMode.BF_CBO)
    print("  BF-Post applies %d Bloom filters:" % bf_post.num_bloom_filters)
    for line in bloom_filter_summary(bf_post.optimization.join_plan):
        print("    " + line)
    print("  BF-CBO applies %d Bloom filters:" % bf_cbo.num_bloom_filters)
    for line in bloom_filter_summary(bf_cbo.optimization.join_plan):
        print("    " + line)
    post_order = join_order_summary(bf_post.optimization.join_plan)
    cbo_order = join_order_summary(bf_cbo.optimization.join_plan)
    print("  plan changed by BF-CBO:", post_order != cbo_order)

    print("\nExecution at scale factor %s:" % args.scale)
    db = Database.from_tpch(scale_factor=args.scale, query_numbers=[7])
    session = db.connect()
    executed_post = session.execute(db.tpch_query(7), OptimizerMode.BF_POST)
    executed_cbo = session.execute(db.tpch_query(7), OptimizerMode.BF_CBO)
    print("\nBF-Post plan (%d Bloom filters):" % executed_post.num_bloom_filters)
    print(executed_post.explain())
    print("\nBF-CBO plan (%d Bloom filters):" % executed_cbo.num_bloom_filters)
    print(executed_cbo.explain())
    print("\nBloom filters applied by BF-CBO:")
    for line in bloom_filter_summary(executed_cbo.optimization.plan):
        print("  " + line)
    print("\nLatency improvement of BF-CBO over BF-Post: %.1f%%"
          % percent_reduction(executed_post.simulated_latency,
                              executed_cbo.simulated_latency))


if __name__ == "__main__":
    main()
