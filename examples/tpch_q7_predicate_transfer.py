"""TPC-H Q7: predicate transfer through chained Bloom filters (Figure 6).

The paper's Figure 6 shows that BF-CBO changes the join order of Q7 so that
five Bloom filters can be applied instead of one, transferring the nation
predicates through customer to orders and on to lineitem, and improving query
latency by 83.7%.  This example reproduces the comparison: plan shape and
Bloom filter placement at SF100 statistics, then an execution at a small scale
factor with observed row counts.

Run with ``python examples/tpch_q7_predicate_transfer.py``.
"""

from __future__ import annotations

from repro.core import bloom_filter_summary
from repro.experiments import run_q7_case_study


def main() -> None:
    print("Plan shapes at SF100 statistics (no execution):")
    planning_only = run_q7_case_study(scale_factor=100.0, execute=False)
    print("  BF-Post applies %d Bloom filters:" % planning_only.bf_post_filters)
    for line in bloom_filter_summary(planning_only.bf_post.optimization.join_plan):
        print("    " + line)
    print("  BF-CBO applies %d Bloom filters:" % planning_only.bf_cbo_filters)
    for line in bloom_filter_summary(planning_only.bf_cbo.optimization.join_plan):
        print("    " + line)
    print("  plan changed by BF-CBO:", planning_only.plan_changed)

    print("\nExecution at scale factor 0.02:")
    executed = run_q7_case_study(scale_factor=0.02, execute=True)
    print(executed.to_text())


if __name__ == "__main__":
    main()
