"""Parallel execution must be bit-identical to serial execution.

The contract of the morsel subsystem (docs/executor.md) is that
``executor_workers`` and ``morsel_size`` are pure performance knobs: for any
query, output batches (values, dtypes, null masks, row order) and every
simulated metric (work units, Bloom probe counts) are exactly the same on the
serial and parallel paths, for any morsel size.  These tests pin that
invariant over the full TPC-H workload plus targeted NULL / outer-join /
composite-key cases, pin the factorized join kernel against the legacy
sort/search kernel property-style, and cover the batched serving entry point
(``Session.execute_many`` / ``Database.execute_many``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Database
from repro.core import ColumnRef, JoinClause
from repro.core.query import JoinType
from repro.errors import ExecutionError
from repro.executor import (
    Batch,
    CompositeKeyIndex,
    combine_key_columns,
    cross_join,
    equi_join,
    executor_overrides,
    join_indices,
    sort_search_join_indices,
)
from repro.executor import keys as keys_module
from repro.storage import Table, make_schema
from repro.storage.partitioning import PartitionedTable, RangePartitionSpec
from repro.storage.types import FLOAT64, INT64, STRING


def assert_batches_identical(expected: Batch, actual: Batch) -> None:
    """Bitwise equality: keys, order, dtypes, values and null masks."""
    assert expected.keys == actual.keys
    assert expected.num_rows == actual.num_rows
    for key in expected.keys:
        want, got = expected.column(key), actual.column(key)
        assert want.dtype == got.dtype, key
        assert np.array_equal(want, got), key
        want_mask = expected.null_mask(key)
        got_mask = actual.null_mask(key)
        assert (want_mask is None) == (got_mask is None), key
        if want_mask is not None:
            assert np.array_equal(want_mask, got_mask), key


# ---------------------------------------------------------------------------
# TPC-H: serial == threads, across morsel sizes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_db(tpch_workload) -> Database:
    database = Database(tpch_workload.catalog)
    database.workload = tpch_workload
    return database


@pytest.fixture(scope="module")
def serial_reference(tpch_db):
    """Serial execution results, computed once per query."""
    session = tpch_db.connect(history_limit=0)
    cache = {}

    def reference(number: int):
        if number not in cache:
            cache[number] = session.execute(tpch_db.workload.query(number))
        return cache[number]

    return reference


@pytest.mark.parametrize("workers,morsel_size", [(2, 500), (4, 117)])
def test_tpch_parallel_identical_to_serial(tpch_db, serial_reference,
                                           workers, morsel_size):
    parallel = tpch_db.connect(history_limit=0, executor_workers=workers,
                               morsel_size=morsel_size)
    for number in tpch_db.workload.query_numbers:
        want = serial_reference(number)
        got = parallel.execute(tpch_db.workload.query(number))
        assert_batches_identical(want.execution.batch, got.execution.batch)
        # The parallel path must not change the simulated latency model.
        assert got.execution.metrics.total_work_units == \
            want.execution.metrics.total_work_units, number
        assert got.execution.metrics.bloom_probes == \
            want.execution.metrics.bloom_probes, number
        assert got.execution.metrics.rows_scanned == \
            want.execution.metrics.rows_scanned, number
        assert got.execution.metrics.rows_bloom_filtered == \
            want.execution.metrics.rows_bloom_filtered, number


def test_parallel_identical_with_nulls_and_composite_keys():
    """NULL-keyed rows and composite group keys across the morsel matrix."""
    rng = np.random.default_rng(7)
    size = 5_000
    values = rng.normal(size=size)
    values[rng.random(size) < 0.1] = np.nan  # inferred NULLs
    columns = {
        "k1": rng.integers(0, 40, size),
        "k2": rng.integers(-5, 5, size),  # negative: defeats int packing
        "tag": np.array(["abcdefghij"[i] for i in
                         rng.integers(0, 10, size)], dtype=object),
        "v": values,
    }
    results = []
    for workers, morsel in [(0, 65536), (3, 137), (4, 1024)]:
        db = Database(__import__("repro.storage",
                                 fromlist=["Catalog"]).Catalog(),
                      executor_workers=workers, morsel_size=morsel)
        db.register_table("t", columns)
        session = db.connect()
        results.append(session.execute(
            "select k1, k2, tag, sum(v) as s, count(v) as c from t "
            "where v is not null or k2 < 0 "
            "group by k1, k2, tag order by k1, k2, tag").execution.batch)
    for other in results[1:]:
        assert_batches_identical(results[0], other)


def test_outer_join_unchanged_by_kernel_swap():
    """FULL join pairs, padding masks and row order on the new kernel."""
    probe = Batch({"p.k": np.asarray([1, 2, 2, 7]),
                   "p.v": np.asarray([10, 20, 21, 70])},
                  {"p.k": np.asarray([False, False, False, True])})
    build = Batch({"b.k": np.asarray([2, 2, 9]),
                   "b.w": np.asarray([200, 201, 900])})
    clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
    joined = equi_join(probe, build, [clause], JoinType.FULL)
    # 4 matched pairs + unmatched probe rows 1 and NULL-keyed 7 + build 9.
    assert joined.num_rows == 4 + 2 + 1
    assert list(joined.column("p.v")[:4]) == [20, 20, 21, 21]
    assert list(joined.column("b.w")[:4]) == [200, 201, 200, 201]
    pad_mask = joined.null_mask("b.w")
    assert list(pad_mask) == [False] * 4 + [True, True, False]
    probe_pad = joined.null_mask("p.v")
    assert list(probe_pad) == [False] * 6 + [True]


# ---------------------------------------------------------------------------
# Kernel property tests: factorized == sort/search
# ---------------------------------------------------------------------------


class TestFactorizedKernel:
    @given(st.lists(st.integers(min_value=-3, max_value=6), max_size=60),
           st.lists(st.integers(min_value=-3, max_value=6), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_sort_search(self, probe_keys, build_keys):
        probe = np.asarray(probe_keys, dtype=np.int64)
        build = np.asarray(build_keys, dtype=np.int64)
        want = sort_search_join_indices(probe, build)
        got = join_indices(probe, build)
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    @given(st.lists(st.floats(min_value=-4, max_value=4, width=16),
                    max_size=40),
           st.lists(st.floats(min_value=-4, max_value=4, width=16),
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_float_keys_bit_identical(self, probe_keys, build_keys):
        probe = np.asarray(probe_keys, dtype=np.float64)
        build = np.asarray(build_keys, dtype=np.float64)
        want = sort_search_join_indices(probe, build)
        got = join_indices(probe, build)
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_nan_key_data_bit_identical(self):
        """Raw NaN float keys (data, not NULLs): the legacy kernel brackets
        the build side's NaN run, so NaN probes match every build NaN — the
        factorized kernel must reproduce the exact pairs."""
        rng = np.random.default_rng(11)
        for _ in range(30):
            probe = rng.integers(0, 5, rng.integers(0, 30)).astype(float)
            build = rng.integers(0, 5, rng.integers(0, 30)).astype(float)
            probe[rng.random(probe.size) < 0.25] = np.nan
            build[rng.random(build.size) < 0.25] = np.nan
            want = sort_search_join_indices(probe, build)
            got = join_indices(probe, build)
            for w, g in zip(want, got):
                assert np.array_equal(w, g)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(-2, 2),
                              st.sampled_from("xyz")), max_size=40),
           st.lists(st.tuples(st.integers(0, 3), st.integers(-2, 2),
                              st.sampled_from("xyz")), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_composite_keys_match_brute_force(self, probe_rows, build_rows):
        """Three mixed-dtype key columns: the composite index must emit the
        same pairs (and pair order) as sort/search over per-row tuples."""
        def cols(rows):
            return [np.asarray([r[0] for r in rows], dtype=np.int64),
                    np.asarray([r[1] for r in rows], dtype=np.int64),
                    np.asarray([r[2] for r in rows], dtype=object)]

        def tuple_keys(rows):
            out = np.empty(len(rows), dtype=object)
            for i, row in enumerate(rows):
                out[i] = row
            return out

        index = CompositeKeyIndex(cols(build_rows))
        got = index.probe(cols(probe_rows))
        want = sort_search_join_indices(tuple_keys(probe_rows),
                                        tuple_keys(build_rows))
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_probe_values_absent_from_build(self):
        index = CompositeKeyIndex([np.asarray([1, 2, 2]),
                                   np.asarray(["a", "a", "b"], dtype=object)])
        probe_idx, build_idx, counts = index.probe(
            [np.asarray([2, 2, 9]),
             np.asarray(["a", "zz", "a"], dtype=object)])
        assert counts.tolist() == [1, 0, 0]
        assert build_idx.tolist() == [1]

    def test_packed_probe_out_of_range(self):
        """Probe ints outside the two-int packing range can never match."""
        index = CompositeKeyIndex([np.asarray([1, 2], dtype=np.int64),
                                   np.asarray([3, 4], dtype=np.int64)])
        probe_idx, build_idx, counts = index.probe(
            [np.asarray([1, -7, 2 ** 40], dtype=np.int64),
             np.asarray([3, 3, 4], dtype=np.int64)])
        assert counts.tolist() == [1, 0, 0]

    def test_pack_overflow_compression_path(self, monkeypatch):
        """A tiny pack limit forces the densify path; grouping and join
        results must be unchanged."""
        monkeypatch.setattr(keys_module, "_PACK_LIMIT", 4)
        rng = np.random.default_rng(3)
        cols = [rng.integers(0, 50, 300), rng.integers(0, 50, 300),
                rng.integers(-25, 25, 300).astype(np.float64)]
        combined = combine_key_columns(cols)
        brute = np.empty(300, dtype=object)
        for i in range(300):
            brute[i] = tuple(c[i] for c in cols)
        _, want_inverse = np.unique(brute, return_inverse=True)
        _, got_inverse = np.unique(combined, return_inverse=True)
        assert np.array_equal(want_inverse, got_inverse)

        index = CompositeKeyIndex([c[:200] for c in cols])
        got = index.probe([c[200:] for c in cols])
        want = sort_search_join_indices(brute[200:], brute[:200])
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_combine_preserves_lexicographic_order(self):
        cols = [np.asarray([1, 1, 0, 2]),
                np.asarray(["b", "a", "z", "a"], dtype=object),
                np.asarray([0.5, -1.0, 3.0, 2.0])]
        combined = combine_key_columns(cols)
        order = np.argsort(combined, kind="stable")
        tuples = sorted(range(4), key=lambda i: tuple(c[i] for c in cols))
        assert order.tolist() == tuples

    def test_build_index_memoized_per_batch(self):
        build = Batch({"b.k": np.asarray([1, 2, 2, 3])})
        probe = Batch({"p.k": np.asarray([2, 3])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        equi_join(probe, build, [clause])
        first = build.kernel_memo(("build_index", ("b.k",)),
                                  lambda: pytest.fail("memo missing"))
        equi_join(Batch({"p.k": np.asarray([1])}), build, [clause])
        second = build.kernel_memo(("build_index", ("b.k",)),
                                   lambda: pytest.fail("memo missing"))
        assert first is second


# ---------------------------------------------------------------------------
# Morsel planning over partitioned storage
# ---------------------------------------------------------------------------


class TestMorselSpans:
    def _table(self, values, offsets=None):
        schema = make_schema("t", [("v", INT64)])
        return Table(schema, {"v": np.asarray(values)},
                     partition_offsets=offsets)

    def test_plain_table_spans(self):
        table = self._table(np.arange(10))
        assert table.morsel_spans(4) == [(0, 4), (4, 8), (8, 10)]
        assert table.morsel_spans(100) == [(0, 10)]
        assert self._table([]).morsel_spans(4) == []

    def test_spans_align_to_partition_offsets(self):
        table = self._table(np.arange(10), offsets=[0, 3, 9])
        assert table.morsel_spans(4) == [(0, 3), (3, 7), (7, 9), (9, 10)]

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            self._table(np.arange(4), offsets=[1, 2])
        with pytest.raises(ValueError):
            self._table(np.arange(4), offsets=[0, 9])

    def test_fused_partitioned_table_records_offsets(self):
        schema = make_schema("t", [("d", FLOAT64), ("s", STRING)])
        table = Table(schema, {"d": np.asarray([5.0, 1.0, 9.0, 3.0]),
                               "s": np.asarray(["a", "b", "c", "d"])})
        part = PartitionedTable(table, RangePartitionSpec("d", (2.0, 6.0)))
        fused = part.fused()
        assert fused.partition_offsets == (0, 1, 3)
        assert list(fused.column("d")) == [1.0, 5.0, 3.0, 9.0]
        assert fused.morsel_spans(10) == [(0, 1), (1, 3), (3, 4)]


# ---------------------------------------------------------------------------
# Batched serving
# ---------------------------------------------------------------------------


class TestExecuteMany:
    def test_results_in_input_order_and_deduplicated(self, tpch_db):
        numbers = [3, 12, 3, 5, 12, 3]
        session = tpch_db.connect(executor_workers=4)
        results = session.execute_many(
            [tpch_db.workload.query(n) for n in numbers])
        assert len(results) == len(numbers)
        for result, number in zip(results, numbers):
            reference = tpch_db.connect(history_limit=0).execute(
                tpch_db.workload.query(number))
            assert_batches_identical(reference.execution.batch,
                                     result.execution.batch)
        # Duplicates share one immutable execution, distinct queries do not.
        assert results[0].execution is results[2].execution
        assert results[0].execution is results[5].execution
        assert results[1].execution is results[4].execution
        assert results[0].execution is not results[3].execution
        # All results land in the history, input order preserved.
        assert [r.query.fingerprint() for r in session.history[-6:]] == \
            [tpch_db.workload.query(n).fingerprint() for n in numbers]

    def test_dedup_disabled_executes_each(self, tpch_db):
        session = tpch_db.connect(history_limit=0)
        query = tpch_db.workload.query(12)
        results = session.execute_many([query, query], deduplicate=False)
        assert results[0].execution is not results[1].execution
        assert_batches_identical(results[0].execution.batch,
                                 results[1].execution.batch)

    def test_database_execute_many_sql(self):
        db = Database(__import__("repro.storage",
                                 fromlist=["Catalog"]).Catalog())
        db.register_table("t", {"k": np.arange(100),
                                "v": np.arange(100) * 2.0})
        results = db.execute_many(
            ["select k from t where v > 100.0 order by k",
             "select sum(v) as s from t",
             "select k from t where v > 100.0 order by k"],
            workers=3)
        assert results[0].num_rows == 49
        assert results[1].column("s")[0] == float(np.sum(np.arange(100) * 2.0))
        assert results[0].execution is results[2].execution

    def test_failure_propagates_typed(self, tpch_db):
        db = Database(__import__("repro.storage",
                                 fromlist=["Catalog"]).Catalog())
        db.register_table("a", {"k": np.arange(50)})
        db.register_table("b", {"k": np.arange(50)})
        session = db.connect(max_cross_join_rows=100)
        with pytest.raises(ExecutionError):
            session.execute_many(["select a.k from a, b"], workers=2)


# ---------------------------------------------------------------------------
# Knob plumbing
# ---------------------------------------------------------------------------


class TestExecutorKnobs:
    def test_database_default_and_session_override(self, tpch_workload):
        db = Database(tpch_workload.catalog, executor_workers=6,
                      morsel_size=123, max_cross_join_rows=77)
        session = db.connect()
        assert session.context.executor_workers == 6
        assert session.context.morsel_size == 123
        assert session.context.max_cross_join_rows == 77
        override = db.connect(executor_workers=0, morsel_size=9)
        assert override.context.executor_workers == 0
        assert override.context.morsel_size == 9
        assert override.context.max_cross_join_rows == 77

    def test_invalid_knobs_fail_eagerly(self):
        with pytest.raises(ValueError):
            executor_overrides(morsel_size=0)
        with pytest.raises(ValueError):
            executor_overrides(executor_workers=-1)


# ---------------------------------------------------------------------------
# Cross-join guard
# ---------------------------------------------------------------------------


class TestCrossJoinGuard:
    def test_small_products_still_run(self):
        left = Batch({"l.a": np.arange(100)})
        right = Batch({"r.b": np.arange(50)})
        assert cross_join(left, right).num_rows == 5_000

    def test_blow_up_raises_execution_error(self):
        left = Batch({"l.a": np.arange(4_000)})
        right = Batch({"r.b": np.arange(4_000)})
        with pytest.raises(ExecutionError, match="max_cross_join_rows"):
            cross_join(left, right)
        with pytest.raises(ExecutionError):
            cross_join(left, right, max_rows=1_000_000)

    def test_limit_configurable_and_disableable(self):
        left = Batch({"l.a": np.arange(200)})
        right = Batch({"r.b": np.arange(200)})
        with pytest.raises(ExecutionError):
            cross_join(left, right, max_rows=100)
        assert cross_join(left, right, max_rows=0).num_rows == 40_000
        assert cross_join(left, right, max_rows=-1).num_rows == 40_000
