"""Parallel joins, aggregation and sort must be bit-identical to serial.

PR contract (docs/executor.md): ``executor_workers``, ``morsel_size`` and
``executor_backend`` are pure performance knobs.  For every operator — morsel
hash-join probes, two-phase aggregation partials, parallel merge sort — and
for every backend (serial inline, thread pool, shared-memory process pool),
output batches and all simulated metrics are exactly those of the serial
operators.  These tests pin that contract over the TPC-H workload and
property-style over the kernels, plus the riders: per-morsel cancellation,
pool reuse across ``execute_many``, and the shared-memory shipping layer.
"""

from __future__ import annotations

from typing import List

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Database
from repro.core import ColumnRef, JoinClause
from repro.core.expressions import AggregateCall, AggregateFunction
from repro.core.query import JoinType
from repro.errors import QueryCancelledError
from repro.executor import (
    Batch,
    CancelToken,
    ShmArena,
    attach_array,
    equi_join,
    executor_overrides,
    resolve_backend,
)
from repro.executor import aggregate as aggregate_module
from repro.executor.aggregate import (
    compute_segment_partials,
    merge_partials,
    segment_partials_kernel,
    segment_spans,
)
from repro.executor.backend import free_threaded_build
from repro.executor.joins import (
    build_probe_state,
    concat_pair_results,
    export_probe_task,
    probe_morsel_kernel,
    probe_span_pairs,
    stitch_equi_join,
)
from repro.executor.sort import (
    combined_sort_key,
    merge_run_list,
    parallel_sort_order,
    sort_run,
)
from repro.storage import Catalog, Table, make_schema
from repro.storage.types import FLOAT64, INT64

from test_parallel_execution import assert_batches_identical


@pytest.fixture(scope="module")
def tpch_db(tpch_workload) -> Database:
    database = Database(tpch_workload.catalog)
    database.workload = tpch_workload
    return database


@pytest.fixture(scope="module")
def serial_reference(tpch_db):
    """Serial execution results, computed once per query."""
    session = tpch_db.connect(history_limit=0)
    cache = {}

    def reference(number: int):
        if number not in cache:
            cache[number] = session.execute(tpch_db.workload.query(number))
        return cache[number]

    return reference


def assert_metrics_identical(want, got) -> None:
    """Simulated metrics — including the derived scaling curve — match."""
    assert got.metrics.total_work_units == want.metrics.total_work_units
    assert got.metrics.rows_hash_probed == want.metrics.rows_hash_probed
    assert got.metrics.rows_scanned == want.metrics.rows_scanned
    for workers, morsel in [(1, 4096), (4, 512), (8, 256)]:
        assert got.metrics.simulated_latency_at(workers, morsel) == \
            want.metrics.simulated_latency_at(workers, morsel)
        for kind in ("JoinNode", "AggregateNode", "SortNode"):
            assert got.metrics.simulated_latency_at(workers, morsel,
                                                    kind=kind) == \
                want.metrics.simulated_latency_at(workers, morsel, kind=kind)


# ---------------------------------------------------------------------------
# TPC-H: serial == threads == processes, all operators parallel
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers,morsel_size", [(1, 511), (2, 211), (8, 256)])
def test_tpch_thread_matrix_identical_to_serial(tpch_db, serial_reference,
                                                workers, morsel_size):
    parallel = tpch_db.connect(history_limit=0, executor_workers=workers,
                               morsel_size=morsel_size)
    for number in tpch_db.workload.query_numbers:
        want = serial_reference(number)
        got = parallel.execute(tpch_db.workload.query(number))
        assert_batches_identical(want.execution.batch, got.execution.batch)
        assert_metrics_identical(want.execution, got.execution)


def test_tpch_process_backend_identical_to_serial(tpch_db, serial_reference):
    """The GIL-escape backend: same bits, and real work crossed processes."""
    session = tpch_db.connect(history_limit=0, executor_workers=2,
                              morsel_size=512, executor_backend="process")
    try:
        for number in (3, 12):
            want = serial_reference(number)
            got = session.execute(tpch_db.workload.query(number))
            assert_batches_identical(want.execution.batch,
                                     got.execution.batch)
            assert_metrics_identical(want.execution, got.execution)
        stats = session.executor_stats()
        assert stats["resolved_backend"] == "process"
        assert stats["process_tasks"] > 0
        assert stats["shm_bytes_exported"] > 0
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Join kernel: morsel pipeline == whole-batch probe, all join types
# ---------------------------------------------------------------------------


def _random_join_batches(rng, probe_rows: int, build_rows: int):
    probe_keys = rng.integers(0, 20, probe_rows)
    build_keys = rng.integers(0, 20, build_rows)
    probe = Batch(
        {"p.k": probe_keys, "p.v": np.arange(probe_rows)},
        {"p.k": rng.random(probe_rows) < 0.15})
    build = Batch(
        {"b.k": build_keys, "b.w": np.arange(build_rows) * 10},
        {"b.k": rng.random(build_rows) < 0.15})
    return probe, build


@pytest.mark.parametrize("join_type", [JoinType.INNER, JoinType.LEFT,
                                       JoinType.SEMI, JoinType.ANTI,
                                       JoinType.FULL])
@pytest.mark.parametrize("morsel_size", [1, 7, 64, 10_000])
def test_morsel_join_identical_for_all_types(join_type, morsel_size):
    """Per-span probing + serial stitch == the serial equi-join, including
    NULL-keyed rows and LEFT/FULL padding, for any span partition."""
    rng = np.random.default_rng(17)
    probe, build = _random_join_batches(rng, 301, 97)
    clauses = [JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))]
    want = equi_join(probe, build, clauses, join_type)

    index, probe_cols, probe_null = build_probe_state(probe, build, clauses)
    results = [probe_span_pairs(index, probe_cols, probe_null, start, stop)
               for start, stop in probe.spans(morsel_size)]
    probe_idx, build_idx, counts = concat_pair_results(results)
    got = stitch_equi_join(probe, build, join_type, probe_idx, build_idx,
                           counts)
    assert_batches_identical(want, got)


def test_probe_kernel_shm_roundtrip():
    """The process-pool probe kernel, run in-process over a real arena,
    reproduces the direct span probe bit-for-bit."""
    rng = np.random.default_rng(23)
    probe, build = _random_join_batches(rng, 150, 40)
    clauses = [JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))]
    index, probe_cols, probe_null = build_probe_state(probe, build, clauses)
    with ShmArena() as arena:
        payload = export_probe_task(index, probe_cols, probe_null, arena)
        assert arena.bytes_exported > 0
        for start, stop in probe.spans(64):
            want = probe_span_pairs(index, probe_cols, probe_null, start, stop)
            got = probe_morsel_kernel(payload, start, stop)
            for w, g in zip(want, got):
                assert np.array_equal(w, g)


# ---------------------------------------------------------------------------
# Two-phase aggregation: segment partials == single pass
# ---------------------------------------------------------------------------


class TestSegmentedAggregation:
    def _calls_data(self, rng, rows: int):
        values = rng.integers(-50, 50, rows).astype(np.float64)
        mask = rng.random(rows) < 0.2
        return values, mask

    @pytest.mark.parametrize("func", [AggregateFunction.COUNT,
                                      AggregateFunction.SUM,
                                      AggregateFunction.AVG,
                                      AggregateFunction.MIN,
                                      AggregateFunction.MAX])
    def test_merged_partials_match_single_pass(self, func, monkeypatch):
        """Multi-segment fold == one-pass aggregation on every function
        (integer-valued floats, so float folds are exact too)."""
        monkeypatch.setattr(aggregate_module, "AGG_SEGMENT_ROWS", 13)
        rng = np.random.default_rng(5)
        rows, num_groups = 211, 9
        group_ids = rng.integers(0, num_groups, rows).astype(np.int64)
        values, mask = self._calls_data(rng, rows)
        calls = [(func, values, mask)]
        spans = segment_spans(rows)
        assert len(spans) > 1
        per_span = [compute_segment_partials(calls, group_ids, num_groups,
                                             start, stop)
                    for start, stop in spans]
        got, got_mask = merge_partials(func, [p[0] for p in per_span])
        whole = compute_segment_partials(calls, group_ids, num_groups,
                                         0, rows)
        want, want_mask = merge_partials(func, whole)
        assert np.array_equal(got, want)
        assert (got_mask is None) == (want_mask is None)
        if got_mask is not None:
            assert np.array_equal(got_mask, want_mask)

    def test_partials_kernel_shm_roundtrip(self):
        rng = np.random.default_rng(29)
        rows, num_groups = 120, 5
        group_ids = rng.integers(0, num_groups, rows).astype(np.int64)
        values, mask = self._calls_data(rng, rows)
        calls = [(AggregateFunction.SUM, values, mask),
                 (AggregateFunction.COUNT, None, None)]
        with ShmArena() as arena:
            payload = aggregate_module.export_partials_task(
                arena, calls, group_ids, num_groups)
            for start, stop in [(0, 40), (40, 120)]:
                want = compute_segment_partials(calls, group_ids, num_groups,
                                                start, stop)
                got = segment_partials_kernel(payload, start, stop)
                for (wc, ws), (gc, gs) in zip(want, got):
                    assert np.array_equal(wc, gc)
                    assert (ws is None) == (gs is None)
                    if ws is not None:
                        assert np.array_equal(ws, gs)

    def test_small_segments_identical_through_engine(self, monkeypatch):
        """End to end with a tiny segment width: serial and thread-parallel
        aggregation stay bit-identical (segmentation never depends on the
        worker count), NULL groups and all-NULL inputs included."""
        monkeypatch.setattr(aggregate_module, "AGG_SEGMENT_ROWS", 37)
        rng = np.random.default_rng(31)
        size = 2_000
        values = rng.normal(size=size)
        values[rng.random(size) < 0.1] = np.nan  # inferred NULLs
        columns = {"k": rng.integers(0, 12, size), "v": values}
        results: List[Batch] = []
        for workers, morsel in [(0, 65536), (4, 113)]:
            db = Database(Catalog(), executor_workers=workers,
                          morsel_size=morsel)
            db.register_table("t", columns)
            results.append(db.connect().execute(
                "select k, sum(v) as s, avg(v) as a, count(v) as c, "
                "min(v) as lo, max(v) as hi from t group by k order by k"
            ).execution.batch)
        assert_batches_identical(results[0], results[1])

    def test_empty_batch_yields_one_global_partial(self):
        assert segment_spans(0) == [(0, 0)]
        counts, stat = compute_segment_partials(
            [(AggregateFunction.SUM, np.zeros(0), None)],
            np.zeros(0, dtype=np.int64), 1, 0, 0)[0]
        out, mask = merge_partials(AggregateFunction.SUM, [(counts, stat)])
        assert list(mask) == [True]  # SUM over no rows is NULL


# ---------------------------------------------------------------------------
# Parallel merge sort: runs + pairwise merges == stable lexsort
# ---------------------------------------------------------------------------


class TestParallelSort:
    @given(st.lists(st.floats(min_value=-5, max_value=5, width=16)
                    | st.just(float("nan")), max_size=80),
           st.integers(min_value=1, max_value=17))
    @settings(max_examples=60, deadline=None)
    def test_float_key_with_nans(self, values, morsel):
        key = np.asarray(values, dtype=np.float64)
        combined = combined_sort_key([key])
        spans = Batch({"x.v": key}).spans(morsel)
        got = parallel_sort_order(combined, spans)
        want = np.lexsort([key])
        assert np.array_equal(got, want)

    @given(st.lists(st.tuples(st.integers(-3, 3), st.sampled_from("abc")),
                    max_size=60),
           st.integers(min_value=1, max_value=11))
    @settings(max_examples=60, deadline=None)
    def test_mixed_dtype_composite_key(self, rows, morsel):
        ints = np.asarray([r[0] for r in rows], dtype=np.int64)
        strs = np.asarray([r[1] for r in rows], dtype=object)
        keys = [strs, ints]  # lexsort convention: ints primary
        combined = combined_sort_key(keys)
        spans = Batch({"x.v": ints}).spans(morsel)
        got = parallel_sort_order(combined, spans)
        want = np.lexsort(keys)
        assert np.array_equal(got, want)

    def test_runner_hook_receives_merge_rounds(self):
        """The runner is exercised for runs and merges, in canonical order."""
        key = np.asarray([3, 1, 2, 0, 7, 5, 4, 6], dtype=np.int64)
        calls = []

        def runner(fn, items):
            calls.append(len(items))
            return [fn(item) for item in items]

        spans = [(0, 2), (2, 4), (4, 6), (6, 8)]
        got = parallel_sort_order(key, spans, runner)
        assert np.array_equal(got, np.argsort(key, kind="stable"))
        assert calls[0] == 4  # four runs sorted in parallel
        assert calls[1] == 2  # first merge round has two independent pairs

    def test_merge_preserves_stability_on_ties(self):
        key = np.zeros(10, dtype=np.int64)  # all equal: order = identity
        runs = [sort_run(key, 0, 5), sort_run(key, 5, 10)]
        assert list(merge_run_list(key, runs)) == list(range(10))


def test_tpch_sort_heavy_query_identical(tpch_db, serial_reference):
    """ORDER BY rides the parallel sort once the batch exceeds one morsel."""
    number = tpch_db.workload.query_numbers[0]
    want = serial_reference(number)
    session = tpch_db.connect(history_limit=0, executor_workers=4,
                              morsel_size=2)
    got = session.execute(tpch_db.workload.query(number))
    assert_batches_identical(want.execution.batch, got.execution.batch)


# ---------------------------------------------------------------------------
# Cancellation: every morsel polls, on the serial and pooled paths
# ---------------------------------------------------------------------------


class _CountingClock:
    """A monotonic clock advancing one tick per observation."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestMorselCancellation:
    def _join_db(self, workers: int) -> Database:
        db = Database(Catalog(), executor_workers=workers, morsel_size=32)
        rng = np.random.default_rng(2)
        db.register_table("a", {"k": rng.integers(0, 50, 2_000),
                                "v": rng.normal(size=2_000)})
        db.register_table("b", {"k": np.arange(50)})
        return db

    QUERY = ("select a.k, sum(a.v) as s from a, b "
             "where a.k = b.k group by a.k order by a.k")

    @pytest.mark.parametrize("workers", [0, 3])
    def test_deadline_trips_mid_execution(self, workers):
        """A deadline expiring after a fixed number of polls stops the query
        on both the inline (serial) and thread-pool morsel paths."""
        session = self._join_db(workers).connect()
        clock = _CountingClock()
        token = CancelToken(deadline=25.0, clock=clock)
        with pytest.raises(QueryCancelledError):
            session.execute(self.QUERY, cancel=token)
        assert token.reason == "deadline exceeded"
        # The token tripped mid-execution, not before it started.
        assert clock.now >= 25.0

    def test_pre_cancelled_token_stops_before_any_work(self):
        session = self._join_db(2).connect()
        token = CancelToken()
        token.cancel("abandoned")
        with pytest.raises(QueryCancelledError, match="abandoned"):
            session.execute(self.QUERY, cancel=token)

    def test_uncancelled_token_changes_nothing(self):
        db = self._join_db(2)
        want = db.connect().execute(self.QUERY)
        got = db.connect().execute(self.QUERY, cancel=CancelToken())
        assert_batches_identical(want.execution.batch, got.execution.batch)


# ---------------------------------------------------------------------------
# Pool reuse + executor_stats
# ---------------------------------------------------------------------------


class TestPoolReuse:
    def test_execute_many_reuses_one_batch_pool(self, tpch_db):
        session = tpch_db.connect(history_limit=0, executor_workers=2,
                                  morsel_size=1024)
        queries = [tpch_db.workload.query(n) for n in (3, 12, 5)]
        session.execute_many(queries, workers=3)
        stats_first = session.executor_stats()
        assert stats_first["batch_pool_size"] == 3
        assert stats_first["batch_tasks"] == 3
        session.execute_many(queries, workers=3)
        stats_second = session.executor_stats()
        # Same pools, more work: no churn across execute_many calls.
        assert stats_second["pools_created"] == stats_first["pools_created"]
        assert stats_second["batch_tasks"] == 6
        assert stats_second["morsel_tasks"] > stats_first["morsel_tasks"]

    def test_morsel_pool_persists_across_executions(self, tpch_db):
        session = tpch_db.connect(history_limit=0, executor_workers=4,
                                  morsel_size=512)
        session.execute(tpch_db.workload.query(3))
        created = session.executor_stats()["pools_created"]
        session.execute(tpch_db.workload.query(12))
        assert session.executor_stats()["pools_created"] == created


# ---------------------------------------------------------------------------
# Shared-memory arena + backend knob plumbing
# ---------------------------------------------------------------------------


class TestShmArena:
    def test_roundtrip_and_memoization(self):
        values = np.arange(1_000, dtype=np.int64)
        floats = np.linspace(0, 1, 57)
        with ShmArena() as arena:
            ref = arena.export(values)
            assert arena.export(values) is ref  # memoized per array object
            attached = attach_array(ref)
            assert np.array_equal(attached, values)
            assert not attached.flags.writeable  # zero-copy views stay pure
            assert np.array_equal(attach_array(arena.export(floats)), floats)
            assert arena.export_optional(None) is None
            assert arena.bytes_exported == values.nbytes + floats.nbytes

    def test_object_and_empty_arrays_inline(self):
        tags = np.asarray(["a", "bb", None], dtype=object)
        empty = np.zeros(0, dtype=np.float64)
        with ShmArena() as arena:
            got_tags = attach_array(arena.export(tags))
            got_empty = attach_array(arena.export(empty))
            assert list(got_tags) == list(tags)
            assert got_empty.shape == (0,) and got_empty.dtype == empty.dtype

    def test_table_export_columns(self):
        schema = make_schema("t", [("k", INT64), ("v", FLOAT64, True)])
        table = Table(schema, {"k": np.arange(10),
                               "v": np.asarray([np.nan] * 5 + [1.0] * 5)})
        with ShmArena() as arena:
            refs = table.export_columns(arena)
            k_values, k_mask = refs["k"]
            assert np.array_equal(attach_array(k_values), table.column("k"))
            assert k_mask is None
            v_values, v_mask = refs["v"]
            assert np.array_equal(attach_array(v_mask),
                                  table.null_mask("v"))
            assert np.array_equal(attach_array(v_values)[5:],
                                  table.column("v")[5:])


class TestBackendKnob:
    def test_resolve_backend(self):
        assert resolve_backend("thread") == "thread"
        assert resolve_backend("process") == "process"
        auto = resolve_backend("auto")
        assert auto == ("thread" if free_threaded_build() else "process")
        with pytest.raises(ValueError):
            resolve_backend("greenlet")

    def test_knob_validation_and_layering(self, tpch_workload):
        with pytest.raises(ValueError):
            executor_overrides(executor_backend="greenlet")
        db = Database(tpch_workload.catalog, executor_backend="process")
        assert db.connect().context.executor_backend == "process"
        override = db.connect(executor_backend="thread")
        assert override.context.executor_backend == "thread"
        with pytest.raises(ValueError):
            db.connect(executor_backend="fiber")
