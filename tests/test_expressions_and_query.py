"""Tests for the bound expression model and the query block / join graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    And,
    Arithmetic,
    ArithmeticOp,
    BaseRelation,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    ExtractYear,
    InList,
    JoinClause,
    JoinGraph,
    JoinType,
    Like,
    Literal,
    Not,
    Or,
    QueryBlock,
    conjunction,
    conjuncts,
)
from repro.storage.types import date_to_int


def resolver_for(columns):
    def resolve(ref):
        return np.asarray(columns["%s.%s" % (ref.relation, ref.column)])
    return resolve


class TestScalarExpressions:
    def test_column_and_literal(self):
        resolve = resolver_for({"t.a": [1, 2, 3]})
        assert list(ColumnRef("t", "a").evaluate(resolve)) == [1, 2, 3]
        assert Literal(7).evaluate(resolve) == 7

    def test_arithmetic(self):
        resolve = resolver_for({"t.a": [1.0, 2.0], "t.b": [10.0, 20.0]})
        expr = Arithmetic(ArithmeticOp.MUL, ColumnRef("t", "a"),
                          Arithmetic(ArithmeticOp.SUB, Literal(1.0),
                                     ColumnRef("t", "b")))
        assert list(expr.evaluate(resolve)) == [-9.0, -38.0]

    def test_division_by_zero_is_zero(self):
        resolve = resolver_for({"t.a": [4.0], "t.b": [0.0]})
        expr = Arithmetic(ArithmeticOp.DIV, ColumnRef("t", "a"), ColumnRef("t", "b"))
        assert expr.evaluate(resolve)[0] == 0.0

    def test_extract_year(self):
        days = [date_to_int(1995, 6, 1), date_to_int(1996, 1, 1)]
        resolve = resolver_for({"t.d": days})
        years = ExtractYear(ColumnRef("t", "d")).evaluate(resolve)
        assert list(years) == [1995, 1996]

    def test_referenced_relations(self):
        expr = Arithmetic(ArithmeticOp.ADD, ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert expr.referenced_relations() == frozenset({"a", "b"})


class TestPredicates:
    def test_comparison_operators(self):
        resolve = resolver_for({"t.a": [1, 2, 3, 4]})
        col = ColumnRef("t", "a")
        assert list(Comparison(ComparisonOp.LT, col, Literal(3)).evaluate(resolve)) == \
            [True, True, False, False]
        assert list(Comparison(ComparisonOp.GE, col, Literal(3)).evaluate(resolve)) == \
            [False, False, True, True]
        assert list(Comparison(ComparisonOp.NE, col, Literal(2)).evaluate(resolve)) == \
            [True, False, True, True]

    def test_between_and_in(self):
        resolve = resolver_for({"t.a": [1, 5, 10]})
        col = ColumnRef("t", "a")
        between = Between(col, Literal(2), Literal(9))
        assert list(between.evaluate(resolve)) == [False, True, False]
        inlist = InList(col, (1, 10))
        assert list(inlist.evaluate(resolve)) == [True, False, True]

    def test_like(self):
        resolve = resolver_for({"t.s": np.asarray(["MEDIUM BRASS", "SMALL TIN"],
                                                  dtype=object)})
        like = Like(ColumnRef("t", "s"), "%BRASS")
        assert list(like.evaluate(resolve)) == [True, False]
        not_like = Like(ColumnRef("t", "s"), "SMALL%", negated=True)
        assert list(not_like.evaluate(resolve)) == [True, False]

    def test_boolean_combinators(self):
        resolve = resolver_for({"t.a": [1, 2, 3, 4]})
        col = ColumnRef("t", "a")
        low = Comparison(ComparisonOp.LE, col, Literal(2))
        high = Comparison(ComparisonOp.GE, col, Literal(4))
        assert list(Or((low, high)).evaluate(resolve)) == [True, True, False, True]
        assert list(And((low, Not(high))).evaluate(resolve)) == \
            [True, True, False, False]

    def test_is_equi_join(self):
        join = Comparison(ComparisonOp.EQ, ColumnRef("a", "x"), ColumnRef("b", "y"))
        local = Comparison(ComparisonOp.EQ, ColumnRef("a", "x"), Literal(1))
        same_rel = Comparison(ComparisonOp.EQ, ColumnRef("a", "x"), ColumnRef("a", "y"))
        assert join.is_equi_join()
        assert not local.is_equi_join()
        assert not same_rel.is_equi_join()

    def test_conjuncts_flattening(self):
        a = Comparison(ComparisonOp.EQ, ColumnRef("t", "a"), Literal(1))
        b = Comparison(ComparisonOp.EQ, ColumnRef("t", "b"), Literal(2))
        c = Comparison(ComparisonOp.EQ, ColumnRef("t", "c"), Literal(3))
        nested = And((a, And((b, c))))
        assert conjuncts(nested) == [a, b, c]
        assert conjunction([]) is None
        assert conjunction([a]) is a
        assert isinstance(conjunction([a, b]), And)


class TestQueryBlock:
    def _block(self):
        return QueryBlock(
            relations=[BaseRelation("a", "ta"), BaseRelation("b", "tb"),
                       BaseRelation("c", "tc")],
            join_clauses=[
                JoinClause(ColumnRef("a", "x"), ColumnRef("b", "x")),
                JoinClause(ColumnRef("b", "y"), ColumnRef("c", "y")),
            ])

    def test_alias_lookup(self):
        block = self._block()
        assert block.aliases == ["a", "b", "c"]
        assert block.table_name("b") == "tb"

    def test_clauses_between(self):
        block = self._block()
        clauses = block.clauses_between(frozenset({"a"}), frozenset({"b", "c"}))
        assert len(clauses) == 1
        assert clauses[0].relations == frozenset({"a", "b"})

    def test_join_clause_helpers(self):
        clause = JoinClause(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert clause.column_for("a") == ColumnRef("a", "x")
        assert clause.other("a") == ColumnRef("b", "y")
        with pytest.raises(KeyError):
            clause.column_for("z")

    def test_join_clause_same_relation_rejected(self):
        with pytest.raises(ValueError):
            JoinClause(ColumnRef("a", "x"), ColumnRef("a", "y"))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError):
            QueryBlock(relations=[BaseRelation("a", "t"), BaseRelation("a", "t")])

    def test_unknown_predicate_alias_rejected(self):
        with pytest.raises(ValueError):
            QueryBlock(relations=[BaseRelation("a", "t")],
                       local_predicates={"zzz": []})

    def test_hashable_join_types(self):
        inner = JoinClause(ColumnRef("a", "x"), ColumnRef("b", "x"))
        anti = JoinClause(ColumnRef("a", "x"), ColumnRef("b", "x"),
                          join_type=JoinType.ANTI)
        assert inner.is_hashable
        assert not anti.is_hashable


class TestJoinGraph:
    def _query(self):
        return QueryBlock(
            relations=[BaseRelation(a, a) for a in ("a", "b", "c", "d")],
            join_clauses=[
                JoinClause(ColumnRef("a", "k"), ColumnRef("b", "k")),
                JoinClause(ColumnRef("b", "k"), ColumnRef("c", "k")),
            ])

    def test_connectivity(self):
        graph = JoinGraph(self._query())
        assert graph.is_connected_set(frozenset({"a", "b", "c"}))
        assert not graph.is_connected_set(frozenset({"a", "c"}))
        assert not graph.is_connected_set(frozenset({"a", "d"}))
        assert graph.is_connected_set(frozenset({"d"}))

    def test_connected_components(self):
        graph = JoinGraph(self._query())
        components = {frozenset(c) for c in graph.connected_components()}
        assert components == {frozenset({"a", "b", "c"}), frozenset({"d"})}

    def test_equivalence_classes(self):
        graph = JoinGraph(self._query())
        columns = graph.equivalent_columns(ColumnRef("a", "k"))
        assert columns == {ColumnRef("a", "k"), ColumnRef("b", "k"),
                           ColumnRef("c", "k")}

    def test_neighbours(self):
        graph = JoinGraph(self._query())
        assert graph.neighbours("b") == {"a", "c"}
        assert graph.neighbours("d") == set()

    def test_are_connected(self):
        graph = JoinGraph(self._query())
        assert graph.are_connected(frozenset({"a"}), frozenset({"b", "d"}))
        assert not graph.are_connected(frozenset({"a"}), frozenset({"d"}))
