"""Tests for candidate marking, the first phase (Δ collection), sub-plan
costing and the heuristics — Section 3 of the paper, step by step, using the
running example fixture."""

from __future__ import annotations

import pytest

from repro.core import (
    BfCboSettings,
    ColumnRef,
    CostModel,
    mark_bloom_filter_candidates,
)
from repro.core.bfcbo import TwoPhaseBloomOptimizer
from repro.core.cardinality import CardinalityEstimator
from repro.core.enumerator import JoinEnumerator


def make_two_phase(catalog, query, settings=None):
    estimator = CardinalityEstimator(catalog, query)
    settings = settings or BfCboSettings.paper_defaults()
    return TwoPhaseBloomOptimizer(catalog, query, estimator, CostModel(),
                                  settings)


class TestCandidateMarking:
    def test_example_3_1_candidates(self, running_example_catalog,
                                    running_example_query):
        """Example 3.1: a BFC on t1 (from t2.c1) and one on t3 (from t2.c2)."""
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        candidates = mark_bloom_filter_candidates(
            running_example_query, estimator, BfCboSettings.paper_defaults())
        assert set(candidates) == {"t1", "t3"}
        t1 = candidates["t1"][0]
        assert t1.apply_column == ColumnRef("t1", "c2")
        assert t1.build_column == ColumnRef("t2", "c1")
        t3 = candidates["t3"][0]
        assert t3.apply_column == ColumnRef("t3", "c1")
        assert t3.build_column == ColumnRef("t2", "c2")

    def test_heuristic1_places_on_larger_side(self, running_example_catalog,
                                              running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        candidates = mark_bloom_filter_candidates(
            running_example_query, estimator, BfCboSettings.paper_defaults())
        # t2 (807K after filter) is smaller than both t1 and t3: never an
        # apply-side relation under Heuristic 1.
        assert "t2" not in candidates

    def test_heuristic2_row_threshold(self, running_example_catalog,
                                      running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        settings = BfCboSettings.paper_defaults().with_overrides(
            min_apply_rows=2_000_000)
        candidates = mark_bloom_filter_candidates(running_example_query,
                                                  estimator, settings)
        # Only t1 (600M rows) clears a 2M-row threshold; t3 (1M) does not.
        assert set(candidates) == {"t1"}

    def test_heuristic9_allows_both_sides(self, running_example_catalog,
                                          running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        settings = BfCboSettings.paper_defaults().with_overrides(
            use_heuristic9=True, min_apply_rows=1.0)
        candidates = mark_bloom_filter_candidates(running_example_query,
                                                  estimator, settings)
        assert "t2" in candidates  # the smaller side now also gets candidates


class TestFirstPhase:
    def test_example_3_2_deltas(self, running_example_catalog,
                                running_example_query):
        """Example 3.2: Δ(t1) = [{t2}, {t2,t3}], Δ(t3) = [{t2}, {t1,t2}]."""
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query)
        candidates = mark_bloom_filter_candidates(
            running_example_query, two_phase.estimator, two_phase.settings,
            two_phase.join_graph)
        result = two_phase.first_phase(candidates)
        t1_deltas = {frozenset(d) for d in candidates["t1"][0].deltas}
        t3_deltas = {frozenset(d) for d in candidates["t3"][0].deltas}
        assert t1_deltas == {frozenset({"t2"}), frozenset({"t2", "t3"})}
        assert t3_deltas == {frozenset({"t2"}), frozenset({"t1", "t2"})}
        assert result.join_pairs_observed > 0
        assert result.total_join_input_rows > 0

    def test_heuristic3_prunes_lossless_fk(self, running_example_catalog,
                                           running_example_query):
        """With the t2 filter removed, t2.c2 -> t3.c1 ... the FK direction in
        the example is t2.c2 referencing t3.c1, and the candidate on t3 builds
        from t2.c2 (not a PK), so Heuristic 3 does not fire here; build an
        explicit FK case instead by flipping the candidate direction."""
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query)
        estimator = two_phase.estimator
        # t2.c2 is an FK referencing t3.c1 (a PK); t3 has no local predicate,
        # so a filter on t2 built from all of t3 would be lossless.
        assert estimator.is_lossless_fk_join(ColumnRef("t2", "c2"),
                                             ColumnRef("t3", "c1"),
                                             frozenset({"t3"}))

    def test_heuristic8_skips_small_queries(self, running_example_catalog,
                                            running_example_query):
        settings = BfCboSettings.paper_defaults().with_overrides(
            use_heuristic8=True, heuristic8_min_total_join_input=1e18)
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query, settings)
        plan_lists = two_phase.optimize()
        assert two_phase.report.skipped_by_heuristic8
        # With candidates skipped, no Bloom filter sub-plans exist anywhere.
        for plan_list in plan_lists.values():
            assert not plan_list.bloom_plans()


class TestCostingPhase:
    def test_bloom_subplans_added_to_base_relations(self, running_example_catalog,
                                                    running_example_query):
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query)
        plan_lists = two_phase.optimize()
        t1_list = plan_lists[frozenset({"t1"})]
        assert t1_list.bloom_plans(), "t1 should have a Bloom filter scan sub-plan"
        assert t1_list.non_bloom_plans(), "the plain scan must be retained too"

    def test_heuristic6_selectivity_threshold(self, running_example_catalog,
                                              running_example_query):
        settings = BfCboSettings.paper_defaults().with_overrides(
            max_selectivity=1e-9)
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query, settings)
        two_phase.optimize()
        assert two_phase.report.subplans_pruned_heuristic6 > 0
        assert two_phase.report.bloom_subplans_retained == 0

    def test_heuristic5_size_threshold(self, running_example_catalog,
                                       running_example_query):
        settings = BfCboSettings.paper_defaults().with_overrides(max_build_ndv=1.0)
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query, settings)
        two_phase.optimize()
        assert two_phase.report.subplans_pruned_heuristic5 > 0
        assert two_phase.report.bloom_subplans_retained == 0

    def test_disabled_settings_produce_no_bloom_plans(self, running_example_catalog,
                                                      running_example_query):
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query,
                                   BfCboSettings.disabled())
        plan_lists = two_phase.optimize()
        for plan_list in plan_lists.values():
            assert not plan_list.bloom_plans()

    def test_heuristic7_limits_subplans(self, running_example_catalog,
                                        running_example_query):
        settings = BfCboSettings.with_heuristic7().with_overrides(
            heuristic7_max_subplans=0)
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query, settings)
        plan_lists = two_phase.optimize()
        for rel_set, plan_list in plan_lists.items():
            if len(rel_set) == 1:
                assert len(plan_list.bloom_plans()) <= 1

    def test_report_specs_recorded(self, running_example_catalog,
                                   running_example_query):
        two_phase = make_two_phase(running_example_catalog,
                                   running_example_query)
        two_phase.optimize()
        assert two_phase.report.specs
        assert two_phase.report.bloom_subplans_created >= \
            two_phase.report.bloom_subplans_retained
