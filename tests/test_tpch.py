"""Tests for the TPC-H schema, data generator, queries and workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.types import date_to_int
from repro.tpch import (
    ANALYZED_QUERIES,
    OMITTED_QUERIES,
    TpchDataGenerator,
    TpchWorkload,
    query_text,
    scaled_row_count,
    statistics_only_catalog,
    tpch_schemas,
)


class TestSchema:
    def test_all_tables_present(self):
        schemas = tpch_schemas()
        assert set(schemas) == {"region", "nation", "supplier", "customer",
                                "part", "partsupp", "orders", "lineitem"}

    def test_primary_keys(self):
        schemas = tpch_schemas()
        assert schemas["orders"].is_primary_key_column("o_orderkey")
        assert schemas["customer"].is_primary_key_column("c_custkey")
        assert not schemas["lineitem"].is_primary_key_column("l_orderkey")

    def test_foreign_keys(self):
        schemas = tpch_schemas()
        fk = schemas["lineitem"].foreign_key_for("l_orderkey")
        assert fk.ref_table == "orders" and fk.ref_column == "o_orderkey"
        fk = schemas["orders"].foreign_key_for("o_custkey")
        assert fk.ref_table == "customer" and fk.ref_column == "c_custkey"

    def test_scaled_row_counts(self):
        assert scaled_row_count("nation", 100.0) == 25
        assert scaled_row_count("region", 0.01) == 5
        assert scaled_row_count("lineitem", 0.01) == 60_000
        assert scaled_row_count("orders", 1.0) == 1_500_000


class TestDataGenerator:
    def test_row_counts_match_scale(self, tpch_catalog):
        from tests.conftest import TEST_SCALE_FACTOR
        lineitem = tpch_catalog.table("lineitem")
        expected = scaled_row_count("lineitem", TEST_SCALE_FACTOR)
        assert abs(lineitem.num_rows - expected) / expected < 0.15
        assert tpch_catalog.table("nation").num_rows == 25

    def test_foreign_keys_reference_existing_rows(self, tpch_catalog):
        orders = tpch_catalog.table("orders")
        customers = tpch_catalog.table("customer")
        assert set(np.unique(orders.column("o_custkey"))) <= \
            set(customers.column("c_custkey"))
        lineitem = tpch_catalog.table("lineitem")
        assert set(np.unique(lineitem.column("l_orderkey"))) <= \
            set(orders.column("o_orderkey"))

    def test_dates_within_spec_range(self, tpch_catalog):
        orders = tpch_catalog.table("orders")
        dates = orders.column("o_orderdate")
        assert dates.min() >= date_to_int(1992, 1, 1)
        assert dates.max() <= date_to_int(1998, 8, 2)
        lineitem = tpch_catalog.table("lineitem")
        assert bool((lineitem.column("l_shipdate")
                     < lineitem.column("l_receiptdate")).all())

    def test_determinism(self):
        first = TpchDataGenerator(0.001, seed=1).generate()
        second = TpchDataGenerator(0.001, seed=1).generate()
        assert np.array_equal(first["orders"].column("o_custkey"),
                              second["orders"].column("o_custkey"))

    def test_different_seed_differs(self):
        first = TpchDataGenerator(0.001, seed=1).generate()
        second = TpchDataGenerator(0.001, seed=2).generate()
        assert not np.array_equal(first["orders"].column("o_custkey"),
                                  second["orders"].column("o_custkey"))

    def test_statistics_collected(self, tpch_catalog):
        stats = tpch_catalog.statistics("lineitem")
        assert stats.column("l_shipmode").ndv == 7
        assert stats.column("l_returnflag").ndv == 3
        nation_stats = tpch_catalog.statistics("nation")
        assert nation_stats.column("n_name").ndv == 25


class TestStatisticsOnlyCatalog:
    def test_sf100_row_counts(self):
        catalog = statistics_only_catalog(100.0)
        assert catalog.statistics("lineitem").num_rows == 600_000_000
        assert catalog.statistics("orders").num_rows == 150_000_000
        assert not catalog.has_data("lineitem")

    def test_key_ndvs(self):
        catalog = statistics_only_catalog(100.0)
        assert catalog.statistics("orders").column("o_orderkey").ndv == 150_000_000
        # Only two thirds of customers have orders.
        assert catalog.statistics("orders").column("o_custkey").ndv == \
            pytest.approx(10_000_000, rel=0.01)


class TestQueriesAndWorkload:
    def test_analyzed_query_set_matches_paper(self):
        assert set(ANALYZED_QUERIES) == {2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 16,
                                         17, 18, 19, 20, 21}
        assert OMITTED_QUERIES == {1, 6, 13, 14, 15, 22}
        assert not (set(ANALYZED_QUERIES) & OMITTED_QUERIES)

    def test_query_text_lookup(self):
        assert "lineitem" in query_text(12)
        with pytest.raises(KeyError):
            query_text(6)

    def test_all_queries_bind(self, tpch_workload):
        assert sorted(tpch_workload.queries) == ANALYZED_QUERIES
        for number, query in tpch_workload.queries.items():
            assert query.relations, "Q%d has no relations" % number
            assert query.join_clauses, "Q%d has no join clauses" % number

    def test_q7_structure(self, tpch_workload):
        q7 = tpch_workload.query(7)
        assert len(q7.relations) == 6
        aliases = {rel.alias for rel in q7.relations}
        assert {"n1", "n2"} <= aliases
        assert q7.residual_predicates, "the nation-pair OR must be residual"

    def test_q12_structure(self, tpch_workload):
        q12 = tpch_workload.query(12)
        assert {rel.table_name for rel in q12.relations} == {"orders", "lineitem"}
        assert len(q12.predicates_for("lineitem")) >= 3

    def test_statistics_only_workload(self):
        workload = TpchWorkload.statistics_only(100.0, query_numbers=[12])
        assert not workload.has_data
        assert workload.query(12).name == "Q12"
