"""Plan-contract verifier tests (:mod:`repro.analysis.contracts`).

Each contract in the catalogue gets at least one hand-built malformed plan
proving the verifier fires and names the offending node, plus a clean-plan
test proving it stays silent on well-formed trees.  The golden corpus test
pins the headline acceptance criterion: every TPC-H plan the optimizer emits
under every configuration verifies with zero violations.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import (
    PlanContractVerifier,
    check_plan,
    verify_plan,
    verify_plans_default,
)
from repro.analysis.verify import verify_golden_corpus
from repro.core.candidates import BloomFilterSpec
from repro.core.cardinality import BloomEstimate
from repro.core.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
)
from repro.core.plans import (
    AggregateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.properties import PlanProperties
from repro.core.query import (
    BaseRelation,
    JoinClause,
    OrderItem,
    OutputItem,
    QueryBlock,
)
from repro.errors import PlanContractError, PlanningError, ReproError
from repro.storage import Catalog, FLOAT64, INT64, STRING, make_schema


@pytest.fixture()
def catalog() -> Catalog:
    """Two small tables covering every dtype/nullability case the tests need."""
    cat = Catalog()
    cat.register_schema(make_schema("t", [
        ("a", INT64), ("s", STRING), ("n", INT64, True)]))
    cat.register_schema(make_schema("u", [
        ("b", INT64), ("c", FLOAT64)]))
    cat.register_schema(make_schema("v", [("d", INT64)]))
    return cat


def scan(alias: str, table: str, rows: float = 100.0, **kwargs) -> ScanNode:
    return ScanNode(rows=rows, alias=alias, table_name=table, **kwargs)


def join(outer: PlanNode, inner: PlanNode, left: ColumnRef, right: ColumnRef,
         rows: float = 100.0, **kwargs) -> JoinNode:
    return JoinNode(rows=rows, outer=outer, inner=inner,
                    clauses=(JoinClause(left, right),), **kwargs)


def spec(filter_id: str = "bf1",
         apply_column: ColumnRef = ColumnRef("t", "a"),
         build_column: ColumnRef = ColumnRef("u", "b")) -> BloomFilterSpec:
    return BloomFilterSpec(
        filter_id=filter_id, apply_column=apply_column,
        build_column=build_column,
        delta=frozenset({build_column.relation}),
        estimate=BloomEstimate(selectivity=0.1, false_positive_rate=0.01,
                               build_ndv=1000.0))


def contracts_of(violations) -> set:
    return {violation.contract for violation in violations}


# ---------------------------------------------------------------------------
# Clean plans stay silent
# ---------------------------------------------------------------------------


class TestCleanPlans:
    def test_simple_join_plan_is_clean(self, catalog):
        plan = join(scan("t", "t"), scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"))
        assert check_plan(plan, catalog) == []

    def test_bloom_pair_is_clean(self, catalog):
        bf = spec()
        consumer = scan("t", "t", rows=10.0, bloom_filters=(bf,),
                        pre_bloom_rows=100.0)
        plan = join(consumer, scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"),
                    built_filters=(bf,))
        assert check_plan(plan, catalog) == []

    def test_verify_plan_passes_silently(self, catalog):
        verify_plan(join(scan("t", "t"), scan("u", "u"),
                         ColumnRef("t", "a"), ColumnRef("u", "b")), catalog)


# ---------------------------------------------------------------------------
# column-resolution
# ---------------------------------------------------------------------------


class TestColumnResolution:
    def test_dangling_scan_predicate(self, catalog):
        plan = scan("t", "t", predicates=(
            Comparison(ComparisonOp.EQ, ColumnRef("t", "nope"), Literal(1)),))
        violations = check_plan(plan, catalog)
        assert contracts_of(violations) == {"column-resolution"}
        assert "t.nope" in violations[0].message

    def test_unknown_table(self, catalog):
        violations = check_plan(scan("x", "missing"), catalog)
        assert contracts_of(violations) == {"column-resolution"}

    def test_dangling_join_key(self, catalog):
        plan = join(scan("t", "t"), scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "ghost"))
        violations = check_plan(plan, catalog)
        assert any(v.contract == "column-resolution"
                   and "u.ghost" in v.message for v in violations)

    def test_violation_names_offending_node(self, catalog):
        plan = join(scan("t", "t"),
                    scan("u", "u", predicates=(
                        Comparison(ComparisonOp.EQ, ColumnRef("u", "zzz"),
                                   Literal(0)),)),
                    ColumnRef("t", "a"), ColumnRef("u", "b"))
        (violation,) = check_plan(plan, catalog)
        assert "ScanNode(u)" in violation.node_path

    def test_foreign_column_in_scan_predicate(self, catalog):
        plan = scan("t", "t", predicates=(
            Comparison(ComparisonOp.EQ, ColumnRef("u", "b"), Literal(1)),))
        violations = check_plan(plan, catalog)
        assert any("foreign column" in v.message for v in violations)


# ---------------------------------------------------------------------------
# join-key-dtype
# ---------------------------------------------------------------------------


class TestJoinKeyDtype:
    def test_string_int_join_rejected(self, catalog):
        plan = join(scan("t", "t"), scan("u", "u"),
                    ColumnRef("t", "s"), ColumnRef("u", "b"))
        violations = check_plan(plan, catalog)
        assert contracts_of(violations) == {"join-key-dtype"}
        assert "incompatible" in violations[0].message

    def test_int_float_join_allowed(self, catalog):
        plan = join(scan("t", "t"), scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "c"))
        assert check_plan(plan, catalog) == []

    def test_both_keys_on_one_side(self, catalog):
        # Both clause columns resolve on the (t ⨝ u) probe side; nothing
        # binds the v build side, so the hash tables never line up.
        lower = join(scan("t", "t"), scan("u", "u"),
                     ColumnRef("t", "a"), ColumnRef("u", "b"))
        plan = join(lower, scan("v", "v"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"))
        violations = check_plan(plan, catalog)
        assert any("both sides" in v.message for v in violations)


# ---------------------------------------------------------------------------
# bloom-barrier
# ---------------------------------------------------------------------------


class TestBloomBarrier:
    def test_consumer_without_producer(self, catalog):
        bf = spec()
        plan = join(scan("t", "t", bloom_filters=(bf,), pre_bloom_rows=100.0),
                    scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"))
        violations = check_plan(plan, catalog)
        assert contracts_of(violations) == {"bloom-barrier"}
        assert "no join builds it" in violations[0].message

    def test_consumer_on_build_side(self, catalog):
        # The consuming scan sits on the *inner* (build) side of its own
        # producer: the probe would run before the build completes.
        bf = spec(apply_column=ColumnRef("u", "b"),
                  build_column=ColumnRef("u", "b"))
        plan = join(scan("t", "t"),
                    scan("u", "u", rows=10.0, bloom_filters=(bf,),
                         pre_bloom_rows=100.0),
                    ColumnRef("t", "a"), ColumnRef("u", "b"),
                    built_filters=(bf,))
        violations = check_plan(plan, catalog)
        assert any("probe" in v.message and v.contract == "bloom-barrier"
                   for v in violations)

    def test_build_alias_not_on_inner_side(self, catalog):
        bf = spec(build_column=ColumnRef("t", "a"))  # t is the outer side
        consumer = scan("t", "t", rows=10.0, bloom_filters=(bf,),
                        pre_bloom_rows=100.0)
        plan = join(consumer, scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"),
                    built_filters=(bf,))
        violations = check_plan(plan, catalog)
        assert any("build (inner) side" in v.message for v in violations)

    def test_built_but_unconsumed(self, catalog):
        plan = join(scan("t", "t"), scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"),
                    built_filters=(spec(),))
        violations = check_plan(plan, catalog)
        assert any("no scan consumes it" in v.message for v in violations)

    def test_pending_blooms_at_root(self, catalog):
        node = scan("t", "t")
        node.properties = PlanProperties(
            pending_blooms=frozenset({spec()}))
        violations = check_plan(node, catalog)
        assert any("pending Bloom specs" in v.message for v in violations)


# ---------------------------------------------------------------------------
# hidden-sort-keys
# ---------------------------------------------------------------------------


def sorted_over_project(drop_keys, items=None, order=None) -> SortNode:
    base = scan("t", "t")
    project = ProjectNode(rows=100.0, child=base, items=tuple(
        items or (OutputItem(ColumnRef("t", "a"), "a"),
                  OutputItem(ColumnRef("t", "s"), "hidden"))))
    return SortNode(rows=100.0, child=project,
                    order_by=tuple(order
                                   or (OrderItem(ColumnRef("", "hidden")),)),
                    drop_keys=tuple(drop_keys))


class TestHiddenSortKeys:
    def test_carried_key_dropped_once_is_clean(self, catalog):
        assert check_plan(sorted_over_project(["hidden"]), catalog) == []

    def test_key_dropped_twice_in_one_sort(self, catalog):
        violations = check_plan(sorted_over_project(["hidden", "hidden"]),
                                catalog)
        assert any("dropped twice" in v.message for v in violations)

    def test_key_dropped_by_two_sorts(self, catalog):
        inner = sorted_over_project(["hidden"])
        outer = SortNode(rows=100.0, child=inner,
                         order_by=(OrderItem(ColumnRef("", "a")),),
                         drop_keys=("hidden",))
        query = QueryBlock(relations=[BaseRelation("t", "t")],
                           output=[OutputItem(ColumnRef("t", "a"), "a")])
        violations = check_plan(outer, catalog, query)
        # The second drop has nothing to drop, and the whole-plan check sees
        # the key dropped by two different sort nodes.
        assert any("already dropped, or never carried" in v.message
                   for v in violations)
        assert any("2 sort nodes" in v.message for v in violations)

    def test_drop_key_shadowing_visible_output(self, catalog):
        query = QueryBlock(relations=[BaseRelation("t", "t")],
                           output=[OutputItem(ColumnRef("t", "a"), "a"),
                                   OutputItem(ColumnRef("t", "s"), "hidden")])
        violations = check_plan(sorted_over_project(["hidden"]), catalog,
                                query)
        assert any("visible output column" in v.message for v in violations)

    def test_sort_key_resolution_is_tolerant(self, catalog):
        # Rewritten order items reference the bare output name — the verifier
        # must accept exactly what the executor's tolerant lookup accepts.
        plan = sorted_over_project(
            ["hidden"], order=(OrderItem(ColumnRef("", "hidden")),
                               OrderItem(ColumnRef("", "a"))))
        assert check_plan(plan, catalog) == []


# ---------------------------------------------------------------------------
# cardinality
# ---------------------------------------------------------------------------


class TestCardinality:
    def test_negative_rows(self, catalog):
        violations = check_plan(scan("t", "t", rows=-5.0), catalog)
        assert contracts_of(violations) == {"cardinality"}

    def test_bloom_scan_growing_rows(self, catalog):
        bf = spec()
        consumer = scan("t", "t", rows=500.0, bloom_filters=(bf,),
                        pre_bloom_rows=100.0)
        plan = join(consumer, scan("u", "u"),
                    ColumnRef("t", "a"), ColumnRef("u", "b"),
                    built_filters=(bf,))
        violations = check_plan(plan, catalog)
        assert any("grows its input" in v.message for v in violations)

    def test_limit_exceeding_bound(self, catalog):
        plan = LimitNode(rows=50.0, child=scan("t", "t", rows=100.0),
                         limit=10)
        violations = check_plan(plan, catalog)
        assert any("not monotone under selection" in v.message
                   for v in violations)

    def test_aggregate_exceeding_input(self, catalog):
        plan = AggregateNode(
            rows=1000.0, child=scan("t", "t", rows=100.0),
            group_by=(ColumnRef("t", "a"),),
            aggregates=(OutputItem(ColumnRef("t", "a"), "a"),))
        violations = check_plan(plan, catalog)
        assert any(v.contract == "cardinality" for v in violations)

    def test_row_preserving_operator_changing_rows(self, catalog):
        plan = SortNode(rows=7.0, child=scan("t", "t", rows=100.0),
                        order_by=(OrderItem(ColumnRef("t", "a")),))
        violations = check_plan(plan, catalog)
        assert any("row-preserving" in v.message for v in violations)


# ---------------------------------------------------------------------------
# mask-closure
# ---------------------------------------------------------------------------


class _UnregisteredOp(PlanNode):
    """A hypothetical operator nobody taught about null masks."""

    def __init__(self, child: PlanNode) -> None:
        super().__init__(rows=child.rows)
        self._child = child

    @property
    def children(self):
        return [self._child]


class TestMaskClosure:
    def test_unregistered_operator_over_nullable_input(self, catalog):
        violations = check_plan(_UnregisteredOp(scan("t", "t")), catalog)
        assert contracts_of(violations) == {"mask-closure"}
        assert "t.n" in violations[0].message  # names the maskable column

    def test_unregistered_operator_over_non_nullable_input(self, catalog):
        assert check_plan(_UnregisteredOp(scan("u", "u")), catalog) == []


# ---------------------------------------------------------------------------
# The typed error
# ---------------------------------------------------------------------------


class TestPlanContractError:
    def test_verify_raises_typed_error_with_violations(self, catalog):
        plan = scan("t", "t", predicates=(
            Comparison(ComparisonOp.EQ, ColumnRef("t", "nope"), Literal(1)),))
        with pytest.raises(PlanContractError) as excinfo:
            verify_plan(plan, catalog)
        error = excinfo.value
        assert isinstance(error, PlanningError)
        assert isinstance(error, ReproError)
        assert len(error.violations) == 1
        assert error.violations[0].contract == "column-resolution"
        assert "ScanNode" in str(error)

    def test_error_message_carries_query_name(self, catalog):
        query = QueryBlock(relations=[BaseRelation("t", "t")], name="Q99")
        plan = scan("t", "t", rows=-1.0)
        with pytest.raises(PlanContractError, match="Q99"):
            PlanContractVerifier(catalog, query).verify(plan)

    def test_check_is_reusable_and_side_effect_free(self, catalog):
        verifier = PlanContractVerifier(catalog)
        bad = scan("t", "t", rows=-1.0)
        good = scan("t", "t")
        assert verifier.check(bad)
        assert verifier.check(good) == []
        assert verifier.check(bad)  # state fully reset between plans


# ---------------------------------------------------------------------------
# Knob wiring
# ---------------------------------------------------------------------------


class TestKnobWiring:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert verify_plans_default() is False
        for value in ("1", "true", "ON", "yes"):
            monkeypatch.setenv("REPRO_VERIFY_PLANS", value)
            assert verify_plans_default() is True
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        assert verify_plans_default() is False

    def test_database_kwarg_overrides_env(self, monkeypatch, tpch_catalog):
        from repro.api import Database

        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert Database(tpch_catalog).verify_plans is True
        assert Database(tpch_catalog, verify_plans=False).verify_plans is False
        monkeypatch.delenv("REPRO_VERIFY_PLANS")
        assert Database(tpch_catalog).verify_plans is False
        assert Database(tpch_catalog, verify_plans=True).verify_plans is True

    def test_session_override_wins(self, tpch_catalog):
        from repro.api import Database

        db = Database(tpch_catalog, verify_plans=False)
        session = db.connect(verify_plans=True)
        assert session.verify_plans is True
        # A session with no opinion inherits the database default at plan
        # time (None means "defer").
        assert db.connect().verify_plans is None

    def test_end_to_end_verified_execution(self, tpch_catalog):
        from repro.api import Database

        db = Database(tpch_catalog, verify_plans=True)
        result = db.connect().execute(
            "SELECT o_orderpriority FROM orders WHERE o_orderkey < 100")
        assert result.num_rows >= 0


# ---------------------------------------------------------------------------
# The acceptance criterion: the golden corpus verifies clean
# ---------------------------------------------------------------------------


def test_golden_corpus_verifies_clean():
    failures = verify_golden_corpus(scale_factor=100.0)
    assert failures == [], "\n".join(
        "%s/%s: %s" % failure for failure in failures)


def test_suite_runs_with_verification_on():
    # conftest.py exports REPRO_VERIFY_PLANS=1 so *every* plan produced by
    # any test in this suite is contract-checked, not just the ones here.
    assert os.environ.get("REPRO_VERIFY_PLANS") == "1"
