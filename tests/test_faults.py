"""Chaos suite: fault injection, recovery, and exact failure accounting.

The robustness contract (``docs/robustness.md``) is that every induced
failure either *recovers bit-identically* (worker-crash supervision,
shared-memory degradation, serving retries, dequeue re-picks, result-cache
degradation) or *fails with the right type* (``TransientError`` and its
subclasses for retryable faults, permanent errors untouched) — and that
every injection is visible in a counter, so silent swallowing is
structurally impossible.  Faults come from seeded
:class:`~repro.faults.FaultPlan` scripts, which makes each scenario exactly
reproducible: the assertions below pin exact counter values, not "at least
something happened".

``REPRO_CHAOS_BACKEND`` (space-separated, default ``"thread process"``)
selects which executor backends the backend-parametrized scenarios run
under — ``make chaos`` runs the suite once per backend.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.api import Database
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    ReproError,
    ShmPressureError,
    TransientError,
    WorkerCrashError,
)
from repro.executor import CircuitBreaker, MorselPools, live_segment_names
from repro.executor.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.executor.cancel import CancelToken
from repro.executor.shm import ShmArena
from repro.faults import (
    FaultPlan,
    FaultSpec,
    SITE_ADMISSION_DEQUEUE,
    SITE_MEMORY_PRESSURE,
    SITE_MORSEL_DISPATCH,
    SITE_POOL_SUBMIT,
    SITE_RESULT_CACHE_GET,
    SITE_RESULT_CACHE_PUT,
    SITE_SHM_ALLOCATE,
    SITE_SHM_ATTACH,
)
from repro.serving import AsyncDatabase, RetryPolicy
from repro.sql.errors import SqlError

#: Backends the backend-parametrized chaos scenarios run under.
BACKENDS = tuple(os.environ.get("REPRO_CHAOS_BACKEND",
                                "thread process").split())

#: The TPC-H queries the recovery scenarios replay (join + aggregate + sort
#: and a two-way aggregate — both exercise every parallel operator).
QUERIES = (3, 12)


def assert_batches_identical(expected, actual) -> None:
    """Bitwise equality: keys, order, dtypes, values and null masks."""
    assert expected.keys == actual.keys
    assert expected.num_rows == actual.num_rows
    for key in expected.keys:
        want, got = expected.column(key), actual.column(key)
        assert want.dtype == got.dtype, key
        assert np.array_equal(want, got), key
        want_mask = expected.null_mask(key)
        got_mask = actual.null_mask(key)
        assert (want_mask is None) == (got_mask is None), key
        if want_mask is not None:
            assert np.array_equal(want_mask, got_mask), key


@pytest.fixture(scope="module")
def serial_results(tpch_workload):
    """Undisturbed serial executions — the ground truth every recovery
    scenario must reproduce bit-for-bit."""
    database = Database(tpch_workload.catalog)
    session = database.connect(history_limit=0)
    results = {number: session.execute(tpch_workload.query(number))
               for number in QUERIES}
    yield results
    session.close()


def chaos_session(tpch_workload, plan, backend, **overrides):
    """A parallel session over the shared TPC-H catalog with ``plan``."""
    database = Database(tpch_workload.catalog, fault_plan=plan,
                        **{k: v for k, v in overrides.items()
                           if k == "result_cache_size"})
    overrides.pop("result_cache_size", None)
    overrides.setdefault("executor_workers", 2)
    overrides.setdefault("morsel_size", 512)
    session = database.connect(history_limit=0, executor_backend=backend,
                               **overrides)
    return database, session


# ---------------------------------------------------------------------------
# FaultPlan: the injection engine itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_fires_on_exact_ordinals(self):
        plan = FaultPlan([FaultSpec(SITE_MORSEL_DISPATCH, times=2, after=1)])
        fired = [plan.fire(SITE_MORSEL_DISPATCH) is not None
                 for _ in range(5)]
        assert fired == [False, True, True, False, False]
        assert plan.counters() == {SITE_MORSEL_DISPATCH: 2}
        assert plan.hit_counts() == {SITE_MORSEL_DISPATCH: 5}
        assert plan.total_injected == 2

    def test_unlimited_times(self):
        plan = FaultPlan([FaultSpec(SITE_SHM_ALLOCATE, kind="shm-enospc",
                                    times=0)])
        assert all(plan.fire(SITE_SHM_ALLOCATE) is not None
                   for _ in range(10))

    def test_unscripted_site_never_fires(self):
        plan = FaultPlan([FaultSpec(SITE_POOL_SUBMIT)])
        assert plan.fire(SITE_SHM_ALLOCATE) is None
        assert SITE_SHM_ALLOCATE not in plan.hit_counts()

    def test_probability_stream_is_seed_deterministic(self):
        def draws(seed):
            plan = FaultPlan([FaultSpec(SITE_POOL_SUBMIT, times=0,
                                        probability=0.5)], seed=seed)
            return [plan.fire(SITE_POOL_SUBMIT) is not None
                    for _ in range(64)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7)) and not all(draws(7))

    def test_check_raises_typed_errors(self):
        from concurrent.futures.process import BrokenProcessPool

        plan = FaultPlan([
            FaultSpec(SITE_MORSEL_DISPATCH, kind="transient"),
            FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash"),
            FaultSpec(SITE_SHM_ALLOCATE, kind="shm-enospc"),
        ])
        with pytest.raises(TransientError):
            plan.check(SITE_MORSEL_DISPATCH)
        with pytest.raises(BrokenProcessPool):
            plan.check(SITE_POOL_SUBMIT)
        with pytest.raises(OSError) as info:
            plan.check(SITE_SHM_ALLOCATE)
        import errno
        assert info.value.errno == errno.ENOSPC

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("no-such-site")
        with pytest.raises(ValueError):
            FaultSpec(SITE_POOL_SUBMIT, kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(SITE_POOL_SUBMIT, after=-1)
        with pytest.raises(ValueError):
            FaultSpec(SITE_POOL_SUBMIT, probability=0.0)


# ---------------------------------------------------------------------------
# The error taxonomy (docs/robustness.md)
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_transient_errors_are_execution_errors(self):
        assert issubclass(TransientError, ExecutionError)
        assert issubclass(TransientError, ReproError)
        assert issubclass(WorkerCrashError, TransientError)
        assert issubclass(ShmPressureError, TransientError)

    def test_cancellation_is_not_transient(self):
        # Retrying a cancelled query would defeat the cancellation.
        assert not issubclass(QueryCancelledError, TransientError)

    def test_permanent_errors_are_not_transient(self):
        from repro.errors import PlanningError

        assert not issubclass(SqlError, TransientError)
        assert not issubclass(PlanningError, TransientError)


# ---------------------------------------------------------------------------
# Circuit breaker (unit)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_cycle(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # 1 < threshold
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        # Cooldown: two dispatch decisions degrade to threads.
        assert not breaker.allow()
        assert not breaker.allow()
        # Cooldown spent: next decision is the half-open probe.
        assert breaker.allow()
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        stats = breaker.stats()
        assert stats["trips"] == 1
        assert stats["probes"] == 1
        assert stats["recoveries"] == 1
        assert stats["degraded_dispatches"] == 2

    def test_half_open_failure_re_trips(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.allow()  # the probe
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.stats()["trips"] == 2

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED


# ---------------------------------------------------------------------------
# Retry policy (unit)
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.01, multiplier=2.0,
                             jitter=0.5, seed=3)
        first = policy.delay(1, key="q")
        again = RetryPolicy(backoff_base_s=0.01, multiplier=2.0,
                            jitter=0.5, seed=3).delay(1, key="q")
        assert first == again
        assert policy.delay(1, key="q") != policy.delay(1, key="other")
        for attempt in (1, 2, 3):
            base = 0.01 * 2.0 ** (attempt - 1)
            delay = policy.delay(attempt, key="q")
            assert base <= delay < base * 1.5

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base_s=0.02, multiplier=3.0, jitter=0.0)
        assert policy.delay(1) == 0.02
        assert policy.delay(2) == 0.06

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(tenant_retry_budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


# ---------------------------------------------------------------------------
# Shared-memory degradation and the leak guarantee
# ---------------------------------------------------------------------------


class TestShmDegradation:
    def test_allocate_fault_falls_back_inline(self):
        plan = FaultPlan([FaultSpec(SITE_SHM_ALLOCATE, kind="shm-enospc",
                                    times=1)])
        with ShmArena(faults=plan) as arena:
            degraded = arena.export(np.arange(100))
            assert degraded.shm_name is None
            assert degraded.inline is not None
            assert arena.fallback_count == 1
            healthy = arena.export(np.arange(50, dtype=np.float64))
            assert healthy.zero_copy
            assert len(arena.segment_names) == 1
        assert plan.counters() == {SITE_SHM_ALLOCATE: 1}

    def test_attach_fault_unlinks_segment_and_falls_back(self):
        plan = FaultPlan([FaultSpec(SITE_SHM_ATTACH, kind="shm-enospc",
                                    times=1)])
        with ShmArena(faults=plan) as arena:
            ref = arena.export(np.arange(100))
            assert ref.shm_name is None  # degraded after the failed hand-off
            assert arena.fallback_count == 1
            assert arena.segment_names == []  # the segment was unlinked
        assert plan.counters() == {SITE_SHM_ATTACH: 1}

    def test_degraded_refs_reconstruct_identically(self):
        from repro.executor.shm import attach_array

        plan = FaultPlan([FaultSpec(SITE_SHM_ALLOCATE, kind="shm-enospc",
                                    times=0)])
        array = np.arange(1000, dtype=np.int64)
        with ShmArena(faults=plan) as arena:
            assert np.array_equal(attach_array(arena.export(array)), array)

    @pytest.mark.skipif("process" not in BACKENDS,
                        reason="process backend excluded by "
                               "REPRO_CHAOS_BACKEND")
    def test_no_dev_shm_residue_after_faulted_query(self, tpch_workload,
                                                    serial_results):
        """The leak regression: induced shm + crash faults must leave no
        segment behind — neither tracked by an arena nor in /dev/shm."""
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir(shm_dir))
        plan = FaultPlan([
            FaultSpec(SITE_SHM_ATTACH, kind="shm-enospc", times=2),
            FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash", times=2),
        ])
        database, session = chaos_session(tpch_workload, plan, "process")
        try:
            # The double pool break makes this query *fail* — the leak
            # guarantee must hold on the failure path, not just success.
            with pytest.raises(WorkerCrashError):
                session.execute(tpch_workload.query(3))
            recovered = session.execute(tpch_workload.query(12))
            assert_batches_identical(serial_results[12].execution.batch,
                                     recovered.execution.batch)
        finally:
            session.close()
        assert live_segment_names() == []
        assert set(os.listdir(shm_dir)) - before == set()


# ---------------------------------------------------------------------------
# Worker-crash supervision (process backend)
# ---------------------------------------------------------------------------


process_only = pytest.mark.skipif(
    "process" not in BACKENDS,
    reason="process backend excluded by REPRO_CHAOS_BACKEND")


@process_only
class TestWorkerCrashRecovery:
    def test_injected_crash_recovers_bit_identical(self, tpch_workload,
                                                   serial_results):
        plan = FaultPlan([FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash",
                                    times=1)])
        database, session = chaos_session(tpch_workload, plan, "process")
        try:
            for number in QUERIES:
                got = session.execute(tpch_workload.query(number))
                assert_batches_identical(serial_results[number]
                                         .execution.batch,
                                         got.execution.batch)
            stats = session.executor_stats()
            assert stats["worker_crashes"] == 1
            assert stats["process_pool_rebuilds"] == 1
            assert stats["morsel_retries"] >= 1
            # Supervision absorbed the crash: the breaker never saw it.
            assert stats["circuit_breaker"]["state"] == STATE_CLOSED
            assert stats["circuit_breaker"]["trips"] == 0
            assert plan.counters() == {SITE_POOL_SUBMIT: 1}
        finally:
            session.close()

    def test_double_break_raises_worker_crash_error(self, tpch_workload):
        plan = FaultPlan([FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash",
                                    times=2)])
        database, session = chaos_session(tpch_workload, plan, "process")
        try:
            with pytest.raises(WorkerCrashError):
                session.execute(tpch_workload.query(3))
            stats = session.executor_stats()
            assert stats["worker_crashes"] == 2
            assert stats["process_pool_rebuilds"] == 1
            # The escaped transient registered with the breaker.
            assert stats["circuit_breaker"]["consecutive_failures"] == 1
        finally:
            session.close()

    def test_real_worker_death_recovers(self, tmp_path):
        """Not a simulation: a worker genuinely dies (``os._exit``) and the
        supervision path recovers against the stdlib's BrokenProcessPool."""
        pools = MorselPools()
        latch = str(tmp_path / "crash-latch")
        args = [(latch, index) for index in range(8)]
        try:
            results = pools.process_map("repro.faults.chaos:kill_worker_once",
                                        args, None, 2)
            assert results == list(range(8))
            stats = pools.stats()
            assert stats["worker_crashes"] == 1
            assert stats["process_pool_rebuilds"] == 1
            assert stats["morsel_retries"] >= 1
        finally:
            pools.close()

    def test_breaker_trips_then_recovers(self, tpch_workload,
                                         serial_results):
        plan = FaultPlan([FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash",
                                    times=2)])
        database, session = chaos_session(tpch_workload, plan, "process")
        session.context.breaker = CircuitBreaker(failure_threshold=1,
                                                 cooldown=1)
        try:
            with pytest.raises(WorkerCrashError):
                session.execute(tpch_workload.query(3))
            assert session.context.breaker.state == STATE_OPEN
            # The next query starts on threads (cooldown), half-open probes
            # mid-query, and the probe's success closes the breaker — all
            # without changing a single output bit.
            got = session.execute(tpch_workload.query(3))
            assert_batches_identical(serial_results[3].execution.batch,
                                     got.execution.batch)
            stats = session.context.breaker.stats()
            assert stats["state"] == STATE_CLOSED
            assert stats["trips"] == 1
            assert stats["degraded_dispatches"] >= 1
            assert stats["probes"] >= 1
            assert stats["recoveries"] >= 1
        finally:
            session.close()


# ---------------------------------------------------------------------------
# The chaos matrix: seeded multi-site plans, results must not change
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_chaos_matrix_bit_identical(tpch_workload, serial_results, backend):
    specs = [
        FaultSpec(SITE_SHM_ALLOCATE, kind="shm-enospc", times=0, after=2),
        FaultSpec(SITE_SHM_ATTACH, kind="shm-enospc", times=2),
        FaultSpec(SITE_RESULT_CACHE_GET, times=1, after=1),
        FaultSpec(SITE_RESULT_CACHE_PUT, times=1),
        FaultSpec(SITE_MEMORY_PRESSURE, times=2),
    ]
    if backend == "process":
        specs.append(FaultSpec(SITE_POOL_SUBMIT, kind="worker-crash",
                               times=1))
    plan = FaultPlan(specs, seed=42)
    database, session = chaos_session(tpch_workload, plan, backend,
                                      result_cache_size=32)
    try:
        for _round in range(2):
            for number in QUERIES:
                got = session.execute(tpch_workload.query(number))
                assert_batches_identical(serial_results[number]
                                         .execution.batch,
                                         got.execution.batch)
        counters = plan.counters()
        cache = database.cache_stats()
        assert cache.result_get_degraded == 1 == counters[
            SITE_RESULT_CACHE_GET]
        assert cache.result_put_degraded == 1 == counters[
            SITE_RESULT_CACHE_PUT]
        stats = session.executor_stats()
        assert stats["circuit_breaker"]["state"] == STATE_CLOSED
        # Injected memory pressure forced exactly two operators down their
        # spill paths; the results above already proved bit-identity.
        memory = stats["memory"]
        assert memory["pressure_faults"] == 2 == counters[
            SITE_MEMORY_PRESSURE]
        assert (memory["join_spills"] + memory["aggregate_spills"]
                + memory["sort_spills"]) == 2
        # Zero residue: every grant, spill file and shm segment is gone.
        assert memory["reserved_bytes"] == 0
        assert memory["governor"]["granted_bytes"] == 0
        assert memory["shm"] == {"live_segments": 0, "resident_bytes": 0}
        if backend == "process":
            assert counters[SITE_POOL_SUBMIT] == 1
            assert stats["worker_crashes"] == 1
            assert stats["process_pool_rebuilds"] == 1
            assert stats["shm_fallbacks"] >= 2
            assert stats["shm_fallbacks"] == (counters[SITE_SHM_ALLOCATE]
                                              + counters[SITE_SHM_ATTACH])
        else:
            # Threads never touch shared memory: those sites stay silent.
            assert counters[SITE_SHM_ALLOCATE] == 0
            assert counters[SITE_SHM_ATTACH] == 0
    finally:
        session.close()
    assert live_segment_names() == []


# ---------------------------------------------------------------------------
# Serving retries
# ---------------------------------------------------------------------------


FILTERED_COUNT = "SELECT count(*) AS n FROM lineitem WHERE l_quantity < 30"


class TestServingRetries:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_retry_absorbs_transient_fault(self, tpch_workload, backend):
        plan = FaultPlan([FaultSpec(SITE_MORSEL_DISPATCH, kind="transient",
                                    times=1)])
        database = Database(tpch_workload.catalog, fault_plan=plan)
        slept = []
        serving = AsyncDatabase(
            database, workers=2,
            retry_policy=RetryPolicy(max_attempts=3, seed=7),
            retry_sleep=slept.append,
            executor_workers=2, morsel_size=512, executor_backend=backend)

        async def scenario():
            return await serving.execute_async(FILTERED_COUNT, name="q")

        try:
            result = asyncio.run(scenario())
            baseline = Database(tpch_workload.catalog) \
                .connect(history_limit=0).execute(FILTERED_COUNT)
            assert result.to_pylist() == baseline.to_pylist()
            snap = serving.snapshot()
            assert snap.retries == 1
            assert snap.retries_denied == 0
            assert snap.completed == 1 and snap.failed == 0
            # The backoff schedule is the policy's deterministic one.
            assert slept == [RetryPolicy(max_attempts=3, seed=7)
                             .delay(1, key="q")]
            assert plan.counters() == {SITE_MORSEL_DISPATCH: 1}
        finally:
            serving.close()

    def test_budget_exhaustion_fails_fast(self, tpch_workload):
        plan = FaultPlan([FaultSpec(SITE_MORSEL_DISPATCH, kind="transient",
                                    times=3)])
        database = Database(tpch_workload.catalog, fault_plan=plan)
        serving = AsyncDatabase(
            database, workers=1,
            retry_policy=RetryPolicy(max_attempts=5, tenant_retry_budget=1),
            retry_sleep=lambda _s: None,
            executor_workers=2, morsel_size=512)

        async def scenario():
            await serving.execute_async(FILTERED_COUNT)

        try:
            with pytest.raises(TransientError):
                asyncio.run(scenario())
            snap = serving.snapshot()
            assert snap.retries == 1
            assert snap.retries_denied == 1
            assert snap.failed == 1
        finally:
            serving.close()

    def test_attempt_cap_counts_denial(self, tpch_workload):
        plan = FaultPlan([FaultSpec(SITE_MORSEL_DISPATCH, kind="transient",
                                    times=0)])
        database = Database(tpch_workload.catalog, fault_plan=plan)
        serving = AsyncDatabase(
            database, workers=1,
            retry_policy=RetryPolicy(max_attempts=2),
            retry_sleep=lambda _s: None,
            executor_workers=2, morsel_size=512)

        async def scenario():
            await serving.execute_async(FILTERED_COUNT)

        try:
            with pytest.raises(TransientError):
                asyncio.run(scenario())
            snap = serving.snapshot()
            assert snap.retries == 1  # attempt 1 -> retry -> cap
            assert snap.retries_denied == 1
        finally:
            serving.close()

    def test_permanent_errors_never_retry(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        serving = AsyncDatabase(database, workers=1,
                                retry_policy=RetryPolicy(max_attempts=5))

        async def scenario():
            await serving.execute_async("SELEKT broken")

        try:
            with pytest.raises(SqlError):
                asyncio.run(scenario())
            snap = serving.snapshot()
            assert snap.retries == 0
            assert snap.retries_denied == 0
            assert snap.failed == 1
        finally:
            serving.close()

    def test_cancellation_never_retries(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        serving = AsyncDatabase(database, workers=1,
                                retry_policy=RetryPolicy(max_attempts=5))
        token = CancelToken()
        token.cancel("client gave up")

        async def scenario():
            await serving.execute_async(FILTERED_COUNT, cancel=token)

        try:
            with pytest.raises(QueryCancelledError):
                asyncio.run(scenario())
            snap = serving.snapshot()
            assert snap.retries == 0
            assert snap.cancelled >= 1
        finally:
            serving.close()

    def test_dequeue_fault_re_picks_request(self, tpch_workload):
        plan = FaultPlan([FaultSpec(SITE_ADMISSION_DEQUEUE,
                                    kind="transient", times=2)])
        database = Database(tpch_workload.catalog, fault_plan=plan)
        serving = AsyncDatabase(database, workers=1)

        async def scenario():
            return await serving.execute_async(FILTERED_COUNT)

        try:
            result = asyncio.run(scenario())
            assert result.to_pylist()
            assert serving.queue.dequeue_faults == 2
            assert plan.counters() == {SITE_ADMISSION_DEQUEUE: 2}
            assert serving.snapshot().completed == 1
        finally:
            serving.close()

    def test_async_execute_many_partial_failure(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        serving = AsyncDatabase(database, workers=2)

        async def scenario():
            return await serving.execute_many(
                [FILTERED_COUNT, "SELEKT nope", FILTERED_COUNT],
                name="batch")

        async def strict():
            await serving.execute_many([FILTERED_COUNT, "SELEKT nope"],
                                       return_errors=False)

        try:
            outcomes = asyncio.run(scenario())
            assert len(outcomes) == 3
            assert outcomes[0].to_pylist() == outcomes[2].to_pylist()
            assert isinstance(outcomes[1], SqlError)
            with pytest.raises(SqlError):
                asyncio.run(strict())
        finally:
            serving.close()


# ---------------------------------------------------------------------------
# Result-cache degradation (sync API)
# ---------------------------------------------------------------------------


def test_result_cache_faults_degrade_not_fail(tpch_workload):
    plan = FaultPlan([
        FaultSpec(SITE_RESULT_CACHE_PUT, times=1),
        FaultSpec(SITE_RESULT_CACHE_GET, times=1, after=1),
    ])
    database = Database(tpch_workload.catalog, result_cache_size=8,
                        fault_plan=plan)
    session = database.connect(history_limit=0)
    try:
        first = session.execute(FILTERED_COUNT)   # put fault: not stored
        second = session.execute(FILTERED_COUNT)  # get fault: forced miss
        third = session.execute(FILTERED_COUNT)   # stored by #2: real hit
        assert not first.from_result_cache
        assert not second.from_result_cache
        assert third.from_result_cache
        assert first.to_pylist() == second.to_pylist() == third.to_pylist()
        stats = database.cache_stats()
        assert stats.result_put_degraded == 1
        assert stats.result_get_degraded == 1
        assert plan.counters() == {SITE_RESULT_CACHE_PUT: 1,
                                   SITE_RESULT_CACHE_GET: 1}
    finally:
        session.close()


# ---------------------------------------------------------------------------
# execute_many partial-failure semantics (sync API)
# ---------------------------------------------------------------------------


class TestExecuteManyPartialFailure:
    @pytest.fixture()
    def mixed_db(self):
        from repro.storage import Catalog

        database = Database(Catalog())
        database.register_table("a", {"k": np.arange(50)})
        database.register_table("b", {"k": np.arange(50)})
        return database

    def test_partial_failure_slots(self, mixed_db):
        session = mixed_db.connect(max_cross_join_rows=100)
        results = session.execute_many(
            ["select a.k from a", "select a.k from a, b",
             "select b.k from b"],
            return_errors=True)
        assert [r.failed for r in results] == [False, True, False]
        assert isinstance(results[1].error, ExecutionError)
        assert results[0].to_pylist() and results[2].to_pylist()
        with pytest.raises(ExecutionError):
            results[1].to_pylist()

    def test_default_still_raises_first_error(self, mixed_db):
        session = mixed_db.connect(max_cross_join_rows=100)
        with pytest.raises(ExecutionError):
            session.execute_many(["select a.k from a",
                                  "select a.k from a, b"])

    def test_deduplicated_slots_share_the_error(self, mixed_db):
        session = mixed_db.connect(max_cross_join_rows=100)
        results = session.execute_many(
            ["select a.k from a, b", "select a.k from a, b"],
            return_errors=True)
        assert all(r.failed for r in results)
        assert results[0].error is results[1].error
