"""End-to-end correctness: Bloom filters must never change query results.

The single most important invariant of the whole system is that the three
optimizer modes — No-BF, BF-Post and BF-CBO — produce *identical query
results*; Bloom filters are a pure performance optimisation (they may only
remove rows that the join would have removed anyway).  These tests execute a
selection of TPC-H queries under all three modes on the same generated data
and compare result sets, and additionally verify one query against a
hand-written brute-force computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Optimizer, OptimizerMode
from repro.executor import ExecutionContext, Executor
from repro.sql import bind_sql

#: Queries covering 2-way to 6-way joins, aggregates, residuals and limits.
CHECKED_QUERIES = [3, 4, 5, 7, 10, 11, 12, 16, 17, 19, 21]


def result_signature(batch):
    """An order-insensitive, rounded signature of a result batch."""
    if batch.num_rows == 0:
        return ("empty", tuple(sorted(batch.keys)))
    rows = []
    keys = sorted(batch.keys)
    columns = [batch.column(k) for k in keys]
    for i in range(batch.num_rows):
        row = []
        for column in columns:
            value = column[i]
            if isinstance(value, (float, np.floating)):
                row.append(round(float(value), 4))
            else:
                row.append(value if not isinstance(value, np.generic)
                           else value.item())
        rows.append(tuple(row))
    return tuple(sorted(map(repr, rows)))


@pytest.fixture(scope="module")
def runners(tpch_workload):
    optimizer = Optimizer(tpch_workload.catalog)
    context = ExecutionContext.for_catalog(tpch_workload.catalog)
    return optimizer, context


@pytest.mark.parametrize("query_number", CHECKED_QUERIES)
def test_modes_produce_identical_results(tpch_workload, runners, query_number):
    optimizer, context = runners
    query = tpch_workload.query(query_number)
    signatures = {}
    for mode in OptimizerMode:
        result = optimizer.optimize(query, mode)
        execution = Executor(context).execute(result.plan)
        signatures[mode] = result_signature(execution.batch)
    assert signatures[OptimizerMode.BF_POST] == signatures[OptimizerMode.NO_BF]
    assert signatures[OptimizerMode.BF_CBO] == signatures[OptimizerMode.NO_BF]


def test_q12_matches_brute_force(tpch_workload, runners):
    """Verify the executor against a direct numpy computation of Q12."""
    optimizer, context = runners
    catalog = tpch_workload.catalog
    orders = catalog.table("orders")
    lineitem = catalog.table("lineitem")

    from repro.storage.types import date_to_int
    mask = (np.isin(lineitem.column("l_shipmode"), ["MAIL", "SHIP"])
            & (lineitem.column("l_commitdate") < lineitem.column("l_receiptdate"))
            & (lineitem.column("l_shipdate") < lineitem.column("l_commitdate"))
            & (lineitem.column("l_receiptdate") >= date_to_int(1994, 1, 1))
            & (lineitem.column("l_receiptdate") < date_to_int(1995, 1, 1)))
    filtered = lineitem.select_rows(mask)
    valid_orders = set(orders.column("o_orderkey"))
    keep = np.isin(filtered.column("l_orderkey"), list(valid_orders))
    expected = {}
    for shipmode in filtered.select_rows(keep).column("l_shipmode"):
        expected[shipmode] = expected.get(shipmode, 0) + 1

    query = tpch_workload.query(12)
    result = optimizer.optimize(query, OptimizerMode.BF_CBO)
    execution = Executor(context).execute(result.plan)
    observed = dict(zip(execution.batch.column("l_shipmode"),
                        execution.batch.column("line_count")))
    assert {k: float(v) for k, v in expected.items()} == \
        {k: float(v) for k, v in observed.items()}


def test_bloom_filters_only_remove_nonmatching_rows(tpch_workload, runners):
    """A Bloom-filtered scan returns a superset of the semi-join result."""
    optimizer, context = runners
    query = bind_sql(tpch_workload.catalog, """
        select count(*) as cnt from orders, customer
        where o_custkey = c_custkey and c_mktsegment = 'BUILDING'
    """, name="bloom-superset")
    bf_result = optimizer.optimize(query, OptimizerMode.BF_CBO)
    no_result = optimizer.optimize(query, OptimizerMode.NO_BF)
    bf_exec = Executor(context).execute(bf_result.plan)
    no_exec = Executor(context).execute(no_result.plan)
    assert bf_exec.batch.column("cnt")[0] == no_exec.batch.column("cnt")[0]


def test_metrics_track_bloom_activity(tpch_workload, runners):
    optimizer, context = runners
    query = tpch_workload.query(12)
    result = optimizer.optimize(query, OptimizerMode.BF_CBO)
    execution = Executor(context).execute(result.plan)
    if result.num_bloom_filters:
        assert execution.metrics.bloom_filters_built >= 1
        assert execution.metrics.bloom_filters_applied >= 1
        assert execution.metrics.bloom_probes > 0
    assert execution.metrics.rows_scanned > 0
    assert execution.metrics.total_work_units > 0


def test_simulated_latency_improves_with_filters(tpch_workload, runners):
    """Across the checked queries, Bloom filters should not hurt in aggregate
    and BF-CBO should be at least as good as BF-Post (the paper's headline)."""
    optimizer, context = runners
    totals = {mode: 0.0 for mode in OptimizerMode}
    for number in (3, 5, 7, 12):
        query = tpch_workload.query(number)
        for mode in OptimizerMode:
            result = optimizer.optimize(query, mode)
            execution = Executor(context).execute(result.plan)
            totals[mode] += execution.simulated_latency
    assert totals[OptimizerMode.BF_POST] <= totals[OptimizerMode.NO_BF] * 1.02
    assert totals[OptimizerMode.BF_CBO] <= totals[OptimizerMode.BF_POST] * 1.02
