"""NULL semantics end to end: three-valued logic, IS [NOT] NULL, null-aware
storage, mask-driven outer-join padding and null-skipping aggregates.

The outer-join round-trips double as the regression suite for the seed's
sentinel-collision bug: padding used ``-1`` / NaN / ``""`` literals, so a
legitimate ``-1`` key or empty string in the data was indistinguishable from
"no match"."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Database
from repro.core import (
    AggregateCall,
    AggregateFunction,
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    IsNotNull,
    IsNull,
    JoinClause,
    JoinType,
    Literal,
    Not,
    Or,
    OutputItem,
)
from repro.core.expressions import Arithmetic, ArithmeticOp, InList
from repro.executor import Batch, aggregate_batch, equi_join, join_indices
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.storage import Catalog, Table, make_schema
from repro.storage.column import ColumnData, ColumnDef
from repro.storage.statistics import collect_statistics
from repro.storage.types import FLOAT64, INT64, STRING


def masked_resolver(columns):
    """Resolver over ``{name: (values, mask)}`` dicts for expression tests."""

    def resolve(ref):
        values, mask = columns[ref.column]
        return np.asarray(values), (None if mask is None
                                    else np.asarray(mask, dtype=bool))

    return resolve


class TestThreeValuedLogic:
    """Kleene truth tables.  Encoding: (value, null) with null dominant."""

    # Rows: a over [T, F, N]; columns the same for b.  The resolver holds a
    # and b as int columns with masks marking the N positions.
    TRUTH = {
        "a": (np.asarray([1, 1, 1, 0, 0, 0, 0, 0, 0]),
              np.asarray([0, 0, 0, 0, 0, 0, 1, 1, 1], dtype=bool)),
        "b": (np.asarray([1, 0, 0, 1, 0, 0, 1, 0, 0]),
              np.asarray([0, 0, 1, 0, 0, 1, 0, 0, 1], dtype=bool)),
    }

    def _eval(self, predicate):
        resolve = masked_resolver(self.TRUTH)
        is_true, null = predicate.evaluate_masked(resolve)
        null = np.zeros(9, dtype=bool) if null is None else null
        out = []
        for t, n in zip(is_true, null):
            out.append("N" if n else ("T" if t else "F"))
        return out

    def _pred(self, name):
        return Comparison(ComparisonOp.EQ, ColumnRef("t", name), Literal(1))

    def test_and_truth_table(self):
        result = self._eval(And((self._pred("a"), self._pred("b"))))
        #      a=T:          a=F:          a=N:
        assert result == ["T", "F", "N", "F", "F", "F", "N", "F", "N"]

    def test_or_truth_table(self):
        result = self._eval(Or((self._pred("a"), self._pred("b"))))
        assert result == ["T", "T", "T", "T", "F", "N", "T", "N", "N"]

    def test_not_truth_table(self):
        result = self._eval(Not(self._pred("a")))
        assert result == ["F", "F", "F", "T", "T", "T", "N", "N", "N"]

    def test_is_null_never_unknown(self):
        is_true, null = IsNull(ColumnRef("t", "a")).evaluate_masked(
            masked_resolver(self.TRUTH))
        assert null is None
        assert list(is_true) == [False] * 6 + [True] * 3
        is_true, null = IsNotNull(ColumnRef("t", "a")).evaluate_masked(
            masked_resolver(self.TRUTH))
        assert null is None
        assert list(is_true) == [True] * 6 + [False] * 3


class TestScalarNullPropagation:
    COLUMNS = {
        "x": (np.asarray([1.0, 2.0, 0.0]), np.asarray([0, 0, 1], dtype=bool)),
        "y": (np.asarray([10.0, 0.0, 30.0]), np.asarray([0, 1, 0], dtype=bool)),
        "s": (np.asarray(["ab", "", "cd"]), np.asarray([0, 1, 0], dtype=bool)),
    }

    def test_arithmetic_propagates_null(self):
        expr = Arithmetic(ArithmeticOp.ADD, ColumnRef("t", "x"),
                          ColumnRef("t", "y"))
        values, mask = expr.evaluate_masked(masked_resolver(self.COLUMNS))
        assert values[0] == 11.0
        assert list(mask) == [False, True, True]

    def test_comparison_with_null_literal_is_unknown(self):
        pred = Comparison(ComparisonOp.EQ, ColumnRef("t", "x"), Literal(None))
        is_true, null = pred.evaluate_masked(masked_resolver(self.COLUMNS))
        assert not is_true.any()
        assert null.all()
        # Also for a string column with an incomparable operator.
        pred = Comparison(ComparisonOp.LT, ColumnRef("t", "s"), Literal(None))
        is_true, null = pred.evaluate_masked(masked_resolver(self.COLUMNS))
        assert not is_true.any() and null.all()

    def test_comparison_propagates_operand_null(self):
        pred = Comparison(ComparisonOp.GT, ColumnRef("t", "x"), Literal(1.5))
        is_true, null = pred.evaluate_masked(masked_resolver(self.COLUMNS))
        assert list(is_true) == [False, True, False]
        assert list(null) == [False, False, True]

    def test_in_list_with_null_element(self):
        pred = InList(ColumnRef("t", "x"), (1.0, None))
        is_true, null = pred.evaluate_masked(masked_resolver(self.COLUMNS))
        # x=1 matches; x=2 is UNKNOWN (could equal the NULL element); x=NULL
        # is UNKNOWN.
        assert list(is_true) == [True, False, False]
        assert list(null) == [False, True, True]

    def test_legacy_values_only_evaluate_still_works(self):
        resolve = lambda ref: np.asarray([1.0, 2.0, 3.0])
        pred = Comparison(ComparisonOp.LE, ColumnRef("t", "x"), Literal(2.0))
        assert list(pred.evaluate(resolve)) == [True, True, False]


class TestSqlFrontend:
    def test_parse_is_null(self):
        stmt = parse_select("select a from t where a is null")
        assert stmt.where == ast.IsNullExpr(operand=ast.ColumnName("a"),
                                            negated=False)

    def test_parse_is_not_null(self):
        stmt = parse_select("select a from t where a is not null")
        assert stmt.where == ast.IsNullExpr(operand=ast.ColumnName("a"),
                                            negated=True)

    def test_parse_null_literal(self):
        stmt = parse_select("select a from t where a = null")
        assert stmt.where == ast.ComparisonExpr(
            op="=", left=ast.ColumnName("a"), right=ast.NullLiteral())

    def test_bind_is_null_roundtrip(self):
        db = Database(Catalog())
        db.register_table("t", {"a": np.asarray([1.0, np.nan, 3.0])})
        block = db.bind("select a from t where a is null")
        [predicate] = block.predicates_for("t")
        assert isinstance(predicate, IsNull)
        assert str(predicate) == "t.a is null"
        block = db.bind("select a from t where a is not null")
        [predicate] = block.predicates_for("t")
        assert isinstance(predicate, IsNotNull)
        assert str(predicate) == "t.a is not null"

    def test_null_literal_folds_through_arithmetic(self):
        db = Database(Catalog())
        db.register_table("t", {"a": np.arange(3)})
        block = db.bind("select a from t where a < null + 1")
        [predicate] = block.predicates_for("t")
        assert predicate.right == Literal(None)


class TestStorageMasks:
    def test_non_nullable_mask_rejected(self):
        definition = ColumnDef("c", INT64, nullable=False)
        with pytest.raises(ValueError):
            ColumnData(definition, np.arange(3),
                       np.asarray([True, False, False]))

    def test_all_false_mask_normalised_away(self):
        definition = ColumnDef("c", INT64, nullable=False)
        data = ColumnData(definition, np.arange(3), np.zeros(3, dtype=bool))
        assert data.null_mask is None

    def test_table_infers_mask_for_nullable_float(self):
        schema = make_schema("t", [("v", FLOAT64, True)])
        table = Table(schema, {"v": np.asarray([1.0, np.nan, 3.0])})
        assert list(table.null_mask("v")) == [False, True, False]
        assert table.null_mask("v")[1]

    def test_from_rows_with_none_cells(self):
        schema = make_schema("t", [("k", INT64), ("v", FLOAT64, True),
                                   ("s", STRING, True)])
        table = Table.from_rows(schema, [(1, 2.5, "x"), (2, None, None)])
        assert table.null_mask("k") is None
        assert list(table.null_mask("v")) == [False, True]
        assert list(table.rows()) == [(1, 2.5, "x"), (2, None, None)]

    def test_statistics_exclude_nulls(self):
        schema = make_schema("t", [("v", FLOAT64, True)])
        table = Table(schema, {"v": np.asarray([1.0, np.nan, 3.0, np.nan])})
        stats = collect_statistics(table).column("v")
        assert stats.null_fraction == pytest.approx(0.5)
        assert stats.ndv == 2
        assert stats.min_value == 1.0 and stats.max_value == 3.0

    def test_selectivity_scales_by_valid_fraction(self):
        """Range/equality estimates on a 90%-NULL column must not pretend
        every row can match."""
        schema = make_schema("t", [("v", FLOAT64, True)])
        values = np.full(100, np.nan)
        values[:10] = np.arange(10, dtype=np.float64) + 100.0
        table = Table(schema, {"v": values})
        stats = collect_statistics(table).column("v")
        assert stats.valid_fraction == pytest.approx(0.1)
        # All valid values are >= 100, but 90% of rows are NULL.
        assert stats.range_selectivity(low=0.0, high=None) <= 0.1 + 1e-9
        assert stats.equality_selectivity() <= 0.1

    def test_select_rows_preserves_masks(self):
        schema = make_schema("t", [("v", FLOAT64, True)])
        table = Table(schema, {"v": np.asarray([1.0, np.nan, 3.0])})
        subset = table.select_rows(np.asarray([1, 2]))
        assert list(subset.null_mask("v")) == [True, False]


class TestRegisterTableInference:
    def test_nan_floats_become_nullable(self):
        db = Database(Catalog())
        table = db.register_table("t", {"v": np.asarray([1.0, np.nan, 3.0])})
        assert table.column_def("v").nullable
        assert list(table.null_mask("v")) == [False, True, False]

    def test_none_objects_become_nullable_strings(self):
        db = Database(Catalog())
        table = db.register_table(
            "t", {"s": np.asarray(["a", None, "c"], dtype=object)})
        assert table.column_def("s").nullable
        assert list(table.null_mask("s")) == [False, True, False]
        # The filler under the mask is not None (analysable by numpy).
        assert table.column("s")[1] == ""

    def test_explicit_null_masks(self):
        db = Database(Catalog())
        table = db.register_table(
            "t", {"k": np.asarray([7, -1, 9])},
            null_masks={"k": [False, True, False]})
        assert table.column_def("k").nullable
        assert list(table.null_mask("k")) == [False, True, False]

    def test_all_valid_stays_fast_path(self):
        db = Database(Catalog())
        table = db.register_table("t", {"v": np.asarray([1.0, 2.0])})
        assert not table.column_def("v").nullable
        assert table.null_mask("v") is None


class TestJoinNullSemantics:
    def test_null_keys_never_match(self):
        probe = np.asarray([1, 2, 3])
        build = np.asarray([1, 2, 3])
        probe_null = np.asarray([False, True, False])
        build_null = np.asarray([False, False, True])
        probe_idx, build_idx, counts = join_indices(probe, build,
                                                    probe_null, build_null)
        assert list(zip(probe_idx, build_idx)) == [(0, 0)]
        assert list(counts) == [1, 0, 0]

    def test_inner_join_drops_null_keys(self):
        probe = Batch({"p.k": np.asarray([1, 2])},
                      {"p.k": np.asarray([False, True])})
        build = Batch({"b.k": np.asarray([1, 2])},
                      {"b.k": np.asarray([False, True])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        joined = equi_join(probe, build, [clause], JoinType.INNER)
        assert joined.num_rows == 1
        assert joined.column("p.k")[0] == 1

    def test_semi_anti_with_null_probe_keys(self):
        probe = Batch({"p.k": np.asarray([1, 2])},
                      {"p.k": np.asarray([False, True])})
        build = Batch({"b.k": np.asarray([1, 2])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        semi = equi_join(probe, build, [clause], JoinType.SEMI)
        anti = equi_join(probe, build, [clause], JoinType.ANTI)
        assert semi.num_rows == 1 and semi.column("p.k")[0] == 1
        assert anti.num_rows == 1 and bool(anti.null_mask("p.k")[0])

    def test_left_join_null_key_rows_are_preserved_padded(self):
        probe = Batch({"p.k": np.asarray([1, 2]),
                       "p.v": np.asarray([10, 20])},
                      {"p.k": np.asarray([False, True])})
        build = Batch({"b.k": np.asarray([1, 2]),
                       "b.w": np.asarray([100, 200])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        joined = equi_join(probe, build, [clause], JoinType.LEFT)
        assert joined.num_rows == 2
        mask = joined.null_mask("b.w")
        assert mask is not None and int(mask.sum()) == 1
        padded = joined.filter(mask)
        assert padded.column("p.v")[0] == 20  # probe values survive intact

    def test_sentinel_collision_regression(self):
        """A legitimate -1 key and "" string survive outer-join padding."""
        probe = Batch({"p.k": np.asarray([-1, 5], dtype=np.int64),
                       "p.s": np.asarray(["", "hello"])})
        build = Batch({"b.k": np.asarray([-1, 7], dtype=np.int64),
                       "b.s": np.asarray(["", "world"])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        full = equi_join(probe, build, [clause], JoinType.FULL)
        # -1 = -1 matches (it is real data, not padding!); 5 and 7 pad out.
        assert full.num_rows == 3
        pk_mask = full.null_mask("p.k")
        bk_mask = full.null_mask("b.k")
        matched = (~pk_mask if pk_mask is not None else np.ones(3, bool)) \
            & (~bk_mask if bk_mask is not None else np.ones(3, bool))
        assert int(matched.sum()) == 1
        row = int(np.flatnonzero(matched)[0])
        assert full.column("p.k")[row] == -1
        assert full.column("b.s")[row] == ""  # empty string is data
        # The padded rows are flagged by mask, not by value.
        assert int(pk_mask.sum()) == 1 and int(bk_mask.sum()) == 1

    def test_composite_key_with_null_component_never_matches(self):
        probe = Batch({"p.a": np.asarray([1, 1]), "p.b": np.asarray([2, 2])},
                      {"p.b": np.asarray([False, True])})
        build = Batch({"b.a": np.asarray([1]), "b.b": np.asarray([2])})
        clauses = [JoinClause(ColumnRef("p", "a"), ColumnRef("b", "a")),
                   JoinClause(ColumnRef("p", "b"), ColumnRef("b", "b"))]
        joined = equi_join(probe, build, clauses, JoinType.INNER)
        assert joined.num_rows == 1


class TestAggregateNullSemantics:
    def _batch(self):
        return Batch(
            {"t.g": np.asarray([1, 1, 2, 2, 3]),
             "t.v": np.asarray([10.0, 0.0, 30.0, 40.0, 0.0])},
            {"t.v": np.asarray([False, True, False, False, True])})

    def test_count_star_vs_count_col(self):
        items = [
            OutputItem(AggregateCall(AggregateFunction.COUNT, None), "all"),
            OutputItem(AggregateCall(AggregateFunction.COUNT,
                                     ColumnRef("t", "v")), "valid"),
        ]
        result = aggregate_batch(self._batch(), [ColumnRef("t", "g")], items)
        assert sorted(zip(result.column("all"), result.column("valid"))) == \
            [(1.0, 0.0), (2.0, 1.0), (2.0, 2.0)]

    def test_sum_avg_min_max_skip_nulls(self):
        items = [
            OutputItem(ColumnRef("t", "g"), "g"),
            OutputItem(AggregateCall(AggregateFunction.SUM,
                                     ColumnRef("t", "v")), "s"),
            OutputItem(AggregateCall(AggregateFunction.AVG,
                                     ColumnRef("t", "v")), "a"),
            OutputItem(AggregateCall(AggregateFunction.MIN,
                                     ColumnRef("t", "v")), "lo"),
            OutputItem(AggregateCall(AggregateFunction.MAX,
                                     ColumnRef("t", "v")), "hi"),
        ]
        result = aggregate_batch(self._batch(), [ColumnRef("t", "g")], items)
        by_group = {g: i for i, g in enumerate(result.column("g"))}
        s, a = result.column("s"), result.column("a")
        assert s[by_group[1]] == 10.0 and a[by_group[1]] == 10.0
        assert s[by_group[2]] == 70.0 and a[by_group[2]] == 35.0
        # Group 3 has no valid input: every aggregate is NULL.
        for name in ("s", "a", "lo", "hi"):
            mask = result.null_mask(name)
            assert mask is not None
            assert bool(mask[by_group[3]])
            assert int(mask.sum()) == 1

    def test_group_by_null_is_its_own_group(self):
        batch = Batch(
            {"t.g": np.asarray([0.0, 1.0, 0.0, 1.0]),
             "t.v": np.asarray([1.0, 2.0, 3.0, 4.0])},
            {"t.g": np.asarray([True, False, True, False])})
        items = [
            OutputItem(ColumnRef("t", "g"), "g"),
            OutputItem(AggregateCall(AggregateFunction.SUM,
                                     ColumnRef("t", "v")), "s"),
        ]
        result = aggregate_batch(batch, [ColumnRef("t", "g")], items)
        assert result.num_rows == 2
        g_mask = result.null_mask("g")
        assert g_mask is not None and int(g_mask.sum()) == 1
        null_row = int(np.flatnonzero(g_mask)[0])
        assert result.column("s")[null_row] == 4.0  # both NULL rows together

    def test_group_by_nullable_object_column(self):
        """Regression: None filler in an object group key must not reach
        np.unique (sorting None against str raises)."""
        batch = Batch(
            {"t.s": np.asarray(["x", None, "", None], dtype=object),
             "t.v": np.asarray([1.0, 2.0, 3.0, 4.0])},
            {"t.s": np.asarray([False, True, False, True])})
        items = [
            OutputItem(ColumnRef("t", "s"), "s"),
            OutputItem(AggregateCall(AggregateFunction.SUM,
                                     ColumnRef("t", "v")), "sv"),
        ]
        result = aggregate_batch(batch, [ColumnRef("t", "s")], items)
        assert result.num_rows == 3  # "x", "" and the NULL group
        s_mask = result.null_mask("s")
        assert s_mask is not None and int(s_mask.sum()) == 1
        null_row = int(np.flatnonzero(s_mask)[0])
        assert result.column("sv")[null_row] == 6.0
        # The empty string is a real group, distinct from NULL.
        valid = {s: v for s, v, m in zip(result.column("s"),
                                         result.column("sv"), s_mask) if not m}
        assert valid == {"x": 1.0, "": 3.0}

    def test_global_aggregate_over_zero_rows(self):
        """SQL: scalar aggregates over an empty input yield one row with
        COUNT = 0 and NULL for SUM/AVG/MIN/MAX."""
        batch = Batch({"t.v": np.asarray([], dtype=np.float64)})
        items = [
            OutputItem(AggregateCall(AggregateFunction.COUNT, None), "n"),
            OutputItem(AggregateCall(AggregateFunction.COUNT,
                                     ColumnRef("t", "v")), "nv"),
            OutputItem(AggregateCall(AggregateFunction.SUM,
                                     ColumnRef("t", "v")), "s"),
            OutputItem(AggregateCall(AggregateFunction.MIN,
                                     ColumnRef("t", "v")), "lo"),
        ]
        result = aggregate_batch(batch, [], items)
        assert result.num_rows == 1
        assert result.column("n")[0] == 0.0
        assert result.column("nv")[0] == 0.0
        for name in ("s", "lo"):
            mask = result.null_mask(name)
            assert mask is not None and bool(mask[0])
        # With a GROUP BY, zero input rows still mean zero groups.
        grouped = aggregate_batch(batch, [ColumnRef("t", "v")], items)
        assert grouped.num_rows == 0

    def test_distinct_count_ignores_nulls(self):
        batch = Batch({"t.v": np.asarray([7.0, 7.0, 8.0, 0.0])},
                      {"t.v": np.asarray([False, False, False, True])})
        items = [OutputItem(AggregateCall(AggregateFunction.COUNT,
                                          ColumnRef("t", "v"), distinct=True),
                            "d")]
        result = aggregate_batch(batch, [], items)
        assert result.column("d")[0] == 2.0


class TestEndToEnd:
    def _database(self):
        db = Database(Catalog())
        db.register_table("users", {
            "id": np.arange(6, dtype=np.int64),
            "score": np.asarray([1.0, np.nan, 3.0, np.nan, 5.0, 6.0]),
            "name": np.asarray(["a", None, "c", "d", None, "f"], dtype=object),
        }, primary_key=["id"])
        return db

    def test_is_null_executes(self):
        session = self._database().connect()
        result = session.execute("select id from users where score is null")
        assert sorted(result.column("id")) == [1, 3]

    def test_is_not_null_executes(self):
        session = self._database().connect()
        result = session.execute(
            "select id from users where score is not null and name is not null")
        assert sorted(result.column("id")) == [0, 2, 5]

    def test_comparison_never_matches_nulls(self):
        session = self._database().connect()
        # NULL scores satisfy neither the predicate nor its negation.
        low = session.execute("select id from users where score < 4")
        high = session.execute("select id from users where not (score < 4)")
        assert sorted(low.column("id")) == [0, 2]
        assert sorted(high.column("id")) == [4, 5]

    def test_count_star_vs_count_col_sql(self):
        session = self._database().connect()
        result = session.execute(
            "select count(*) as rows, count(score) as scored, "
            "sum(score) as total from users")
        assert result.column("rows")[0] == 6.0
        assert result.column("scored")[0] == 4.0
        assert result.column("total")[0] == 15.0

    def test_order_by_puts_nulls_last(self):
        session = self._database().connect()
        result = session.execute(
            "select id, score from users order by score desc")
        ids = list(result.column("id"))
        assert ids[:4] == [5, 4, 2, 0]  # 6.0, 5.0, 3.0, 1.0
        assert sorted(ids[4:]) == [1, 3]
        mask = result.null_mask("score")
        assert mask is not None and list(mask[4:]) == [True, True]
        assert result.null_mask("id") is None

    def test_result_masks_reach_the_facade(self):
        """Regression: a NULL aggregate must be distinguishable from its
        0.0 filler at the QueryResult level, without touching internals."""
        session = self._database().connect()
        result = session.execute(
            "select name, sum(score) as total from users "
            "group by name order by name")
        mask = result.null_mask("total")
        assert mask is not None
        # The NULL-name group holds ids 1 and 4 with scores NaN and 5.0 →
        # total 5.0; group "d" (id 3) has only a NULL score → total NULL.
        rows = result.to_pylist()
        by_name = {row["name"]: row["total"] for row in rows}
        assert by_name["d"] is None
        assert by_name[None] == 5.0

    def test_ordering_predicate_on_null_padded_strings(self):
        """Regression: comparators must never order None filler against a
        string (object columns padded by outer joins / None input)."""
        db = Database(Catalog())
        db.register_table("t", {
            "s": np.asarray(["apple", None, "zebra"], dtype=object),
        })
        session = db.connect()
        result = session.execute("select s from t where s < 'm'")
        assert list(result.column("s")) == ["apple"]
        result = session.execute("select s from t where s in ('zebra')")
        assert list(result.column("s")) == ["zebra"]
        result = session.execute(
            "select s from t where s between 'a' and 'm'")
        assert list(result.column("s")) == ["apple"]

    def test_ordering_comparator_with_none_filler(self):
        """The None filler written by outer-join padding (object columns)
        must not reach the < comparator."""
        columns = {"s": (np.asarray(["apple", None, "zebra"], dtype=object),
                         np.asarray([False, True, False]))}
        pred = Comparison(ComparisonOp.LT, ColumnRef("t", "s"),
                          Literal("m"))
        is_true, null = pred.evaluate_masked(masked_resolver(columns))
        assert list(is_true) == [True, False, False]
        assert list(null) == [False, True, False]

    def test_join_skips_null_keys_end_to_end(self):
        db = Database(Catalog())
        db.register_table("l", {
            "k": np.asarray([1.0, np.nan, 3.0]),
            "lv": np.asarray([10, 20, 30], dtype=np.int64),
        })
        db.register_table("r", {
            "k": np.asarray([1.0, np.nan, 4.0]),
            "rv": np.asarray([100, 200, 400], dtype=np.int64),
        })
        result = db.connect().execute(
            "select lv, rv from l, r where l.k = r.k")
        assert result.num_rows == 1
        assert result.column("lv")[0] == 10 and result.column("rv")[0] == 100

    def test_is_not_null_restores_mask_free_results(self):
        """Once a filter drops every NULL, downstream results are mask-free
        (the kernels short-circuit on all-False masks)."""
        session = self._database().connect()
        result = session.execute(
            "select score, count(*) as c from users "
            "where score is not null group by score order by score")
        assert sorted(result.column("score")) == [1.0, 3.0, 5.0, 6.0]
        assert result.null_mask("score") is None
        assert result.null_mask("c") is None
        assert not result.execution.batch.has_masks()

    def test_tpch_stays_mask_free(self):
        """The all-valid fast path: no masks anywhere in a TPC-H result."""
        db = Database.from_tpch(scale_factor=0.001)
        session = db.connect()
        result = session.execute(db.tpch_query(12))
        assert result.execution is not None
        assert not result.execution.batch.has_masks()


class TestOrderByNullsModifiers:
    """NULLS FIRST / NULLS LAST through parser, binder and executor."""

    def _database(self):
        db = Database(Catalog())
        db.register_table("users", {
            "id": np.arange(6, dtype=np.int64),
            "score": np.asarray([1.0, np.nan, 3.0, np.nan, 5.0, 6.0]),
        }, primary_key=["id"])
        return db

    def test_parser_accepts_modifiers(self):
        statement = parse_select(
            "select a from t order by a desc nulls first, b nulls last, c")
        assert [item.nulls_first for item in statement.order_by] == \
            [True, False, None]
        assert [item.descending for item in statement.order_by] == \
            [True, False, False]

    def test_parser_rejects_bare_nulls(self):
        from repro.sql.errors import ParseError

        with pytest.raises(ParseError):
            parse_select("select a from t order by a nulls")

    def test_nulls_and_first_stay_usable_as_identifiers(self):
        # The modifier words are matched contextually, not lexed as
        # keywords, so columns/aliases may still use them.
        statement = parse_select("select nulls, first from last")
        assert statement.from_tables[0].table == "last"

    def test_nulls_first_executes(self):
        session = self._database().connect()
        result = session.execute(
            "select id, score from users order by score nulls first")
        ids = list(result.column("id"))
        assert sorted(ids[:2]) == [1, 3]           # the NULL scores lead
        assert ids[2:] == [0, 2, 4, 5]             # then ascending values
        mask = result.null_mask("score")
        assert mask is not None and list(mask[:2]) == [True, True]

    def test_nulls_first_with_desc(self):
        session = self._database().connect()
        result = session.execute(
            "select id, score from users order by score desc nulls first")
        ids = list(result.column("id"))
        assert sorted(ids[:2]) == [1, 3]
        assert ids[2:] == [5, 4, 2, 0]

    def test_explicit_nulls_last_matches_default(self):
        session = self._database().connect()
        explicit = session.execute(
            "select id, score from users order by score desc nulls last")
        default = session.execute(
            "select id, score from users order by score desc")
        assert list(explicit.column("id")) == list(default.column("id"))

    def test_desc_orders_strings(self):
        # Regression: DESC used to be silently dropped for non-numeric sort
        # keys (the old negation only handled numeric dtypes).
        db = Database(Catalog())
        db.register_table("t", {
            "id": np.arange(3, dtype=np.int64),
            "name": np.asarray(["a", "c", "b"], dtype=object),
        })
        result = db.connect().execute(
            "select id, name from t order by name desc")
        assert list(result.column("name")) == ["c", "b", "a"]
        assert list(result.column("id")) == [1, 2, 0]

    def test_desc_preserves_large_int_precision(self):
        # Regression: DESC keys used to round-trip through float64, which
        # collapses 2**53 and 2**53 + 1 onto the same key.
        db = Database(Catalog())
        db.register_table("t", {
            "id": np.arange(3, dtype=np.int64),
            "v": np.asarray([2**53, 2**53 + 1, 2**53 - 1], dtype=np.int64),
        })
        result = db.connect().execute("select id, v from t order by v desc")
        assert list(result.column("id")) == [1, 0, 2]

    def test_modifier_is_part_of_the_fingerprint(self):
        db = self._database()
        first = db.bind("select id from users order by score nulls first")
        last = db.bind("select id from users order by score nulls last")
        default = db.bind("select id from users order by score")
        assert first.fingerprint() != last.fingerprint()
        # Explicit NULLS LAST is the default: identical plans, shared cache.
        assert last.fingerprint() == default.fingerprint()


class TestDatetimeNaT:
    """NaT in datetime64 input must populate the null mask, not leak as a
    days-since-epoch sentinel."""

    def test_nat_becomes_nullable(self):
        db = Database(Catalog())
        table = db.register_table("events", {
            "id": np.arange(3, dtype=np.int64),
            "day": np.asarray(["2024-01-01", "NaT", "2024-03-01"],
                              dtype="datetime64[D]"),
        })
        assert table.column_def("day").nullable
        assert list(table.null_mask("day")) == [False, True, False]
        # The filler under the mask is the epoch, not int64-min.
        assert table.column("day")[1] == 0

    def test_nat_merges_with_explicit_mask(self):
        db = Database(Catalog())
        table = db.register_table("events", {
            "day": np.asarray(["2024-01-01", "NaT", "2024-03-01"],
                              dtype="datetime64[D]"),
        }, null_masks={"day": [True, False, False]})
        assert list(table.null_mask("day")) == [True, True, False]

    def test_nat_free_datetimes_stay_fast_path(self):
        db = Database(Catalog())
        table = db.register_table("events", {
            "day": np.asarray(["2024-01-01", "2024-02-01"],
                              dtype="datetime64[D]"),
        })
        assert not table.column_def("day").nullable
        assert table.null_mask("day") is None

    def test_nat_rows_behave_as_sql_nulls(self):
        db = Database(Catalog())
        db.register_table("events", {
            "id": np.arange(4, dtype=np.int64),
            "day": np.asarray(["2024-01-05", "NaT", "2024-03-01", "NaT"],
                              dtype="datetime64[D]"),
        }, primary_key=["id"])
        session = db.connect()
        null_days = session.execute("select id from events where day is null")
        assert sorted(null_days.column("id")) == [1, 3]
        counted = session.execute(
            "select count(*) as rows, count(day) as days from events")
        assert counted.column("rows")[0] == 4.0
        assert counted.column("days")[0] == 2.0


class TestCoalesceNullif:
    """COALESCE / NULLIF over the mask representation (docs/nulls.md)."""

    def _database(self):
        db = Database(Catalog())
        db.register_table("m", {
            "id": np.arange(5, dtype=np.int64),
            "a": np.asarray([1.0, np.nan, np.nan, 4.0, np.nan]),
            "b": np.asarray([np.nan, 2.0, np.nan, 40.0, np.nan]),
            "c": np.asarray([9, 9, 9, 9, 9], dtype=np.int64),
        }, primary_key=["id"])
        return db

    def test_coalesce_first_valid_wins(self):
        session = self._database().connect()
        result = session.execute("select coalesce(a, b, c) as v from m "
                                 "order by id")
        assert result.null_mask("v") is None
        assert list(result.column("v")) == [1.0, 2.0, 9.0, 4.0, 9.0]

    def test_coalesce_all_null_rows_stay_null(self):
        session = self._database().connect()
        result = session.execute("select coalesce(a, b) as v from m "
                                 "order by id")
        assert list(result.null_mask("v")) == [False, False, True, False, True]
        assert result.to_pylist()[2]["v"] is None

    def test_coalesce_mask_free_fast_path(self):
        session = self._database().connect()
        result = session.execute("select coalesce(c, id) as v from m")
        assert result.null_mask("v") is None
        assert list(result.column("v")) == [9] * 5

    def test_coalesce_in_where_and_group_by(self):
        session = self._database().connect()
        result = session.execute(
            "select coalesce(a, 0.0) as bucket, count(*) as n from m "
            "where coalesce(a, b, 0.0) >= 0.0 group by bucket "
            "order by bucket")
        assert list(result.column("bucket")) == [0.0, 1.0, 4.0]
        assert list(result.column("n")) == [3.0, 1.0, 1.0]

    def test_nullif_nulls_matching_rows_only(self):
        session = self._database().connect()
        result = session.execute("select nullif(c, 9) as v from m")
        assert list(result.null_mask("v")) == [True] * 5
        result = session.execute("select nullif(a, 1.0) as v from m "
                                 "order by id")
        # Row 0 matches (-> NULL); NULL inputs stay NULL; others unchanged.
        assert list(result.null_mask("v")) == [True, True, True, False, True]
        assert result.column("v")[3] == 4.0

    def test_nullif_against_null_literal_is_identity(self):
        session = self._database().connect()
        result = session.execute("select nullif(c, null) as v from m")
        assert result.null_mask("v") is None
        assert list(result.column("v")) == [9] * 5

    def test_nested_coalesce_nullif(self):
        session = self._database().connect()
        # nullif(c, 9) is NULL everywhere, so coalesce falls through to b.
        result = session.execute(
            "select coalesce(nullif(c, 9), b, -1.0) as v from m order by id")
        assert list(result.column("v")) == [-1.0, 2.0, -1.0, 40.0, -1.0]
        assert result.null_mask("v") is None
