"""Unit tests for Bloom filter sizing and FPR mathematics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import (
    bits_for_keys,
    bloom_filter_bytes,
    expected_fpr_for_build_ndv,
    false_positive_rate,
    optimal_num_bits,
)


class TestFalsePositiveRate:
    def test_empty_filter_has_zero_fpr(self):
        assert false_positive_rate(1024, 0) == 0.0

    def test_fpr_increases_with_keys(self):
        sparse = false_positive_rate(1024, 10)
        dense = false_positive_rate(1024, 500)
        assert dense > sparse

    def test_fpr_decreases_with_bits(self):
        small = false_positive_rate(256, 100)
        large = false_positive_rate(4096, 100)
        assert large < small

    def test_fpr_bounded_by_one(self):
        assert false_positive_rate(64, 10_000) <= 1.0

    def test_matches_closed_form(self):
        m, n, k = 2048, 200, 2
        expected = (1.0 - math.exp(-k * n / m)) ** k
        assert false_positive_rate(m, n, k) == pytest.approx(expected)

    def test_invalid_bits_raises(self):
        with pytest.raises(ValueError):
            false_positive_rate(0, 10)

    def test_negative_keys_raises(self):
        with pytest.raises(ValueError):
            false_positive_rate(64, -1)

    def test_invalid_hashes_raises(self):
        with pytest.raises(ValueError):
            false_positive_rate(64, 1, num_hashes=0)


class TestSizing:
    def test_bits_for_keys_is_power_of_two(self):
        for keys in (0, 1, 5, 100, 10_000, 1_000_000):
            bits = bits_for_keys(keys)
            assert bits & (bits - 1) == 0

    def test_bits_for_keys_minimum(self):
        assert bits_for_keys(0) == 64
        assert bits_for_keys(1) == 64

    def test_bits_for_keys_scales_with_keys(self):
        assert bits_for_keys(100_000) > bits_for_keys(1_000)

    def test_bits_for_keys_negative_raises(self):
        with pytest.raises(ValueError):
            bits_for_keys(-5)

    def test_optimal_num_bits_achieves_target(self):
        keys, target = 10_000, 0.05
        bits = optimal_num_bits(keys, target)
        assert false_positive_rate(bits, keys) <= target

    def test_optimal_num_bits_invalid_target(self):
        with pytest.raises(ValueError):
            optimal_num_bits(100, 1.5)

    def test_optimal_num_bits_zero_keys(self):
        assert optimal_num_bits(0, 0.01) == 64

    def test_optimal_num_bits_negative_keys_raises(self):
        with pytest.raises(ValueError):
            optimal_num_bits(-1, 0.01)

    def test_optimal_num_bits_hits_cap_for_impossible_targets(self):
        """An unachievable target stops doubling at the 1 << 40 cap instead of
        looping forever; the result is the first power of two past the cap."""
        bits = optimal_num_bits(1 << 50, 1e-12)
        assert bits == 1 << 41
        assert false_positive_rate(bits, 1 << 50) > 1e-12

    def test_optimal_num_bits_cap_not_hit_for_achievable_targets(self):
        bits = optimal_num_bits(2_000_000, 0.049)
        assert bits < 1 << 40

    def test_bloom_filter_bytes(self):
        assert bloom_filter_bytes(64) == 8
        assert bloom_filter_bytes(65) == 9
        assert bloom_filter_bytes(0) == 0

    def test_bloom_filter_bytes_negative(self):
        with pytest.raises(ValueError):
            bloom_filter_bytes(-1)


class TestExpectedFpr:
    def test_default_sizing_keeps_fpr_small(self):
        # Eight bits per key with two hashes should be well under 10% FPR.
        assert expected_fpr_for_build_ndv(100_000) < 0.1

    def test_zero_ndv(self):
        assert expected_fpr_for_build_ndv(0) == 0.0

    def test_negative_ndv_clamped_to_zero(self):
        assert expected_fpr_for_build_ndv(-7) == 0.0

    @given(st.integers(min_value=0, max_value=3_000_000))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_runtime_sized_filter(self, ndv):
        """The planning-time FPR must equal the analytical FPR of the filter
        the runtime would actually build for that distinct count (same
        ``bits_for_keys`` sizing, same key count)."""
        runtime_bits = bits_for_keys(ndv)
        assert expected_fpr_for_build_ndv(ndv) == pytest.approx(
            false_positive_rate(runtime_bits, ndv))

    @given(st.integers(min_value=1, max_value=5_000_000))
    @settings(max_examples=50, deadline=None)
    def test_fpr_always_a_probability(self, ndv):
        fpr = expected_fpr_for_build_ndv(ndv)
        assert 0.0 <= fpr <= 1.0

    @given(st.integers(min_value=64, max_value=1 << 22),
           st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_fpr_monotone_in_keys(self, bits, keys):
        bits = 1 << int(math.log2(bits))
        assert false_positive_rate(bits, keys) <= false_positive_rate(bits, keys + 10)
