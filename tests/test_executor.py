"""Tests for the execution engine: batches, join kernels, aggregation and the
plan interpreter (verified against brute-force computation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AggregateCall,
    AggregateFunction,
    ColumnRef,
    JoinClause,
    JoinType,
    Literal,
    OutputItem,
)
from repro.executor import (
    Batch,
    combine_key_columns,
    cross_join,
    equi_join,
    join_indices,
    aggregate_batch,
)
from repro.executor.aggregate import aggregate_batch as aggregate
from repro.core.expressions import Arithmetic, ArithmeticOp


class TestBatch:
    def test_from_columns_and_filter(self):
        batch = Batch({"t.a": np.arange(10), "t.b": np.arange(10) * 2})
        filtered = batch.filter(batch.column("t.a") < 3)
        assert filtered.num_rows == 3
        assert list(filtered.column("t.b")) == [0, 2, 4]

    def test_take_and_merge(self):
        left = Batch({"l.a": np.asarray([1, 2, 3])})
        right = Batch({"r.b": np.asarray([10, 20, 30])})
        merged = left.merge(right)
        assert merged.keys == ["l.a", "r.b"]
        taken = merged.take(np.asarray([2, 0]))
        assert list(taken.column("l.a")) == [3, 1]

    def test_merge_length_mismatch(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3)}).merge(Batch({"b": np.arange(4)}))

    def test_merge_duplicate_column(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3)}).merge(Batch({"a": np.arange(3)}))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3), "b": np.arange(4)})

    def test_resolver(self):
        batch = Batch({"t.a": np.asarray([5, 6])})
        assert list(batch.resolve(ColumnRef("t", "a"))) == [5, 6]
        with pytest.raises(KeyError):
            batch.resolve(ColumnRef("t", "zzz"))


class TestJoinKernels:
    def test_join_indices_with_duplicates(self):
        probe = np.asarray([1, 2, 3])
        build = np.asarray([2, 2, 3, 5])
        probe_idx, build_idx, counts = join_indices(probe, build)
        pairs = sorted(zip(probe[probe_idx], build[build_idx]))
        assert pairs == [(2, 2), (2, 2), (3, 3)]
        assert list(counts) == [0, 2, 1]

    def test_join_indices_empty(self):
        probe_idx, build_idx, counts = join_indices(np.asarray([1, 2]),
                                                    np.asarray([]))
        assert probe_idx.size == 0
        assert list(counts) == [0, 0]

    def test_combine_two_int_columns_exact(self):
        a = np.asarray([1, 1, 2], dtype=np.int64)
        b = np.asarray([7, 8, 7], dtype=np.int64)
        keys = combine_key_columns([a, b])
        assert len(np.unique(keys)) == 3

    def test_combine_object_columns(self):
        a = np.asarray(["x", "y"], dtype=object)
        b = np.asarray([1, 1], dtype=np.int64)
        keys = combine_key_columns([a, b])
        assert keys[0] != keys[1]

    def _batches(self):
        probe = Batch({"p.k": np.asarray([1, 2, 3, 4]),
                       "p.v": np.asarray([10, 20, 30, 40])})
        build = Batch({"b.k": np.asarray([2, 4, 4]),
                       "b.w": np.asarray([200, 400, 401])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        return probe, build, [clause]

    def test_inner_join(self):
        probe, build, clauses = self._batches()
        joined = equi_join(probe, build, clauses, JoinType.INNER)
        assert joined.num_rows == 3
        assert sorted(joined.column("b.w")) == [200, 400, 401]

    def test_semi_and_anti_join(self):
        probe, build, clauses = self._batches()
        semi = equi_join(probe, build, clauses, JoinType.SEMI)
        anti = equi_join(probe, build, clauses, JoinType.ANTI)
        assert sorted(semi.column("p.k")) == [2, 4]
        assert sorted(anti.column("p.k")) == [1, 3]
        assert semi.num_rows + anti.num_rows == probe.num_rows

    def test_left_join_pads_unmatched(self):
        probe, build, clauses = self._batches()
        left = equi_join(probe, build, clauses, JoinType.LEFT)
        assert left.num_rows == 5  # 3 matches + 2 unmatched probe rows
        assert sorted(left.column("p.k")) == [1, 2, 3, 4, 4]

    def test_full_join_preserves_both_sides(self):
        """Regression: FULL previously reused the LEFT path and silently
        dropped unmatched build rows."""
        probe = Batch({"p.k": np.asarray([1, 2, 3]),
                       "p.v": np.asarray([10, 20, 30])})
        build = Batch({"b.k": np.asarray([2, 2, 7, 9]),
                       "b.w": np.asarray([200, 201, 700, 900])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        full = equi_join(probe, build, [clause], JoinType.FULL)
        # 2 matches (k=2 twice) + 2 unmatched probe rows + 2 unmatched build.
        assert full.num_rows == 6
        bw_null = full.null_mask("b.w")
        pk_null = full.null_mask("p.k")
        assert bw_null is not None and int(bw_null.sum()) == 2
        assert pk_null is not None and int(pk_null.sum()) == 2
        assert sorted(full.column("b.w")[~bw_null]) == [200, 201, 700, 900]
        assert sorted(full.column("p.k")[~pk_null]) == [1, 2, 2, 3]
        # Every unmatched build row is padded on ALL probe columns.
        pv_null = full.null_mask("p.v")
        assert np.array_equal(pv_null, pk_null)
        assert sorted(full.column("b.w")[pk_null]) == [700, 900]

    def test_full_join_without_unmatched_build_rows(self):
        probe, build, clauses = self._batches()
        full = equi_join(probe, build, clauses, JoinType.FULL)
        left = equi_join(probe, build, clauses, JoinType.LEFT)
        assert full.num_rows == left.num_rows  # build side fully matched

    def test_full_join_matches_brute_force(self):
        rng = np.random.default_rng(1234)
        for _ in range(20):
            probe_keys = rng.integers(0, 8, size=rng.integers(0, 15))
            build_keys = rng.integers(0, 8, size=rng.integers(0, 15))
            probe = Batch({"p.k": probe_keys.astype(np.int64)})
            build = Batch({"b.k": build_keys.astype(np.int64)})
            clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
            if probe.num_rows == 0 or build.num_rows == 0:
                continue
            full = equi_join(probe, build, [clause], JoinType.FULL)
            matches = sum(list(build_keys).count(k) for k in probe_keys)
            unmatched_probe = sum(1 for k in probe_keys
                                  if k not in set(build_keys))
            unmatched_build = sum(1 for k in build_keys
                                  if k not in set(probe_keys))
            assert full.num_rows == matches + unmatched_probe + unmatched_build

    def test_outer_join_padding_keeps_dtypes(self):
        """Regression: string pads were built as dtype=object, silently
        promoting numpy string columns on the padded path."""
        probe = Batch({"p.k": np.asarray([1, 2], dtype=np.int64),
                       "p.s": np.asarray(["x", "y"]),
                       "p.o": np.asarray(["ox", "oy"], dtype=object)})
        build = Batch({"b.k": np.asarray([2, 7], dtype=np.int64),
                       "b.s": np.asarray(["bb", "cc"]),
                       "b.f": np.asarray([1.5, 2.5]),
                       "b.o": np.asarray(["bo", "co"], dtype=object)})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        for join_type in (JoinType.LEFT, JoinType.FULL):
            joined = equi_join(probe, build, [clause], join_type)
            assert joined.column("p.k").dtype == probe.column("p.k").dtype
            assert joined.column("b.k").dtype == build.column("b.k").dtype
            assert joined.column("p.s").dtype.kind == "U"
            assert joined.column("b.s").dtype.kind == "U"
            assert joined.column("b.f").dtype == np.dtype(np.float64)
            assert joined.column("p.o").dtype == np.dtype(object)
            assert joined.column("b.o").dtype == np.dtype(object)

    def test_cross_join(self):
        left = Batch({"l.a": np.asarray([1, 2])})
        right = Batch({"r.b": np.asarray([10, 20, 30])})
        assert cross_join(left, right).num_rows == 6

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=0,
                    max_size=50),
           st.lists(st.integers(min_value=0, max_value=4), min_size=0,
                    max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_join_indices_matches_nested_loop(self, probe_keys, build_keys):
        """Property test on duplicate-heavy keys (tiny domain → many dups):
        the sort/search kernel must produce exactly the nested-loop pairs and
        per-probe match counts."""
        probe = np.asarray(probe_keys, dtype=np.int64)
        build = np.asarray(build_keys, dtype=np.int64)
        probe_idx, build_idx, counts = join_indices(probe, build)
        kernel_pairs = sorted(zip(probe_idx.tolist(), build_idx.tolist()))
        brute_pairs = sorted((i, j) for i in range(len(probe_keys))
                             for j in range(len(build_keys))
                             if probe_keys[i] == build_keys[j])
        assert kernel_pairs == brute_pairs
        brute_counts = [build_keys.count(k) for k in probe_keys]
        assert counts.tolist() == brute_counts

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                    max_size=60),
           st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                    max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_inner_join_matches_brute_force(self, probe_keys, build_keys):
        probe = Batch({"p.k": np.asarray(probe_keys, dtype=np.int64)})
        build = Batch({"b.k": np.asarray(build_keys, dtype=np.int64)})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        joined = equi_join(probe, build, [clause])
        expected = sum(build_keys.count(k) for k in probe_keys)
        assert joined.num_rows == expected


class TestAggregation:
    def test_group_by_sum_count(self):
        batch = Batch({"t.g": np.asarray(["a", "b", "a", "a"], dtype=object),
                       "t.v": np.asarray([1.0, 2.0, 3.0, 4.0])})
        items = [
            OutputItem(ColumnRef("t", "g"), "g"),
            OutputItem(AggregateCall(AggregateFunction.SUM, ColumnRef("t", "v")), "s"),
            OutputItem(AggregateCall(AggregateFunction.COUNT, None), "c"),
        ]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        by_group = dict(zip(result.column("g"), zip(result.column("s"),
                                                    result.column("c"))))
        assert by_group["a"] == (8.0, 3.0)
        assert by_group["b"] == (2.0, 1.0)

    def test_min_max_avg(self):
        batch = Batch({"t.g": np.asarray([1, 1, 2]),
                       "t.v": np.asarray([5.0, 1.0, 7.0])})
        items = [
            OutputItem(AggregateCall(AggregateFunction.MIN, ColumnRef("t", "v")), "lo"),
            OutputItem(AggregateCall(AggregateFunction.MAX, ColumnRef("t", "v")), "hi"),
            OutputItem(AggregateCall(AggregateFunction.AVG, ColumnRef("t", "v")), "avg"),
        ]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert sorted(result.column("lo")) == [1.0, 7.0]
        assert sorted(result.column("hi")) == [5.0, 7.0]
        assert sorted(result.column("avg")) == [3.0, 7.0]

    def test_count_distinct(self):
        batch = Batch({"t.g": np.asarray([1, 1, 1, 2]),
                       "t.v": np.asarray([7, 7, 8, 9])})
        items = [OutputItem(AggregateCall(AggregateFunction.COUNT,
                                          ColumnRef("t", "v"), distinct=True),
                            "d")]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert sorted(result.column("d")) == [1.0, 2.0]

    def test_global_aggregate_without_group_by(self):
        batch = Batch({"t.v": np.asarray([1.0, 2.0, 3.0])})
        items = [OutputItem(AggregateCall(AggregateFunction.SUM,
                                          ColumnRef("t", "v")), "s")]
        result = aggregate(batch, [], items)
        assert result.num_rows == 1
        assert result.column("s")[0] == 6.0

    def test_aggregate_over_expression(self):
        batch = Batch({"t.p": np.asarray([10.0, 20.0]),
                       "t.d": np.asarray([0.1, 0.5])})
        expr = Arithmetic(ArithmeticOp.MUL, ColumnRef("t", "p"),
                          Arithmetic(ArithmeticOp.SUB, Literal(1.0),
                                     ColumnRef("t", "d")))
        items = [OutputItem(AggregateCall(AggregateFunction.SUM, expr), "rev")]
        result = aggregate(batch, [], items)
        assert result.column("rev")[0] == pytest.approx(9.0 + 10.0)

    def test_empty_input(self):
        batch = Batch({"t.g": np.asarray([]), "t.v": np.asarray([])})
        items = [OutputItem(AggregateCall(AggregateFunction.SUM,
                                          ColumnRef("t", "v")), "s")]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert result.num_rows == 0


class TestOrderByNonProjected:
    """ORDER BY on columns the projection drops: hidden sort-key carry."""

    def _database(self):
        from repro.api import Database
        from repro.storage import Catalog

        db = Database(Catalog())
        db.register_table("t", {
            "id": np.asarray([1, 2, 3, 4], dtype=np.int64),
            "score": np.asarray([30.0, 10.0, 40.0, 20.0]),
            "grp": np.asarray([1, 1, 2, 2], dtype=np.int64),
        }, primary_key=["id"])
        return db

    def test_sort_key_carried_and_dropped(self):
        session = self._database().connect()
        result = session.execute("select id from t order by score")
        assert result.columns == ["id"]
        assert list(result.column("id")) == [2, 4, 1, 3]

    def test_qualified_ref_to_aliased_projection_reused(self):
        session = self._database().connect()
        result = session.execute(
            "select t.score as points from t order by t.score desc")
        assert result.columns == ["points"]
        assert list(result.column("points")) == [40.0, 30.0, 20.0, 10.0]

    def test_aggregate_order_by_non_projected_aggregate(self):
        session = self._database().connect()
        result = session.execute(
            "select grp from t group by grp order by sum(score) desc")
        assert result.columns == ["grp"]
        assert list(result.column("grp")) == [2, 1]

    def test_order_by_output_aggregate_without_alias_ref(self):
        session = self._database().connect()
        result = session.execute(
            "select grp, count(*) as cnt from t group by grp "
            "order by count(*) desc, grp")
        assert list(result.column("grp")) == [1, 2]

    def test_hidden_keys_in_plan_not_in_result(self):
        session = self._database().connect()
        result = session.execute(
            "select id from t order by score desc, grp")
        from repro.core.plans import ProjectNode, SortNode

        sort = next(node for node in result.execution.plan.walk()
                    if isinstance(node, SortNode))
        assert set(sort.drop_keys) == {"t.score", "t.grp"}
        project = next(node for node in result.execution.plan.walk()
                       if isinstance(node, ProjectNode))
        assert [item.name for item in project.items] == \
            ["id", "t.score", "t.grp"]
        assert result.columns == ["id"]

    def test_covered_order_by_unchanged(self):
        session = self._database().connect()
        result = session.execute("select id, score from t order by score")
        sort = next(node for node in result.execution.plan.walk()
                    if type(node).__name__ == "SortNode")
        assert sort.drop_keys == ()
        assert list(result.column("id")) == [2, 4, 1, 3]

    def test_limit_above_pruned_sort(self):
        session = self._database().connect()
        result = session.execute(
            "select id from t order by score desc limit 2")
        assert list(result.column("id")) == [3, 1]

    def test_ungrouped_order_key_rejected_under_group_by(self):
        from repro.errors import PlanningError, ReproError

        session = self._database().connect()
        # score is neither grouped nor aggregated: no well-defined value
        # per group, so the carry must refuse instead of sorting by an
        # arbitrary representative row.
        with pytest.raises((PlanningError, ReproError)):
            session.execute("select grp from t group by grp order by score")
