"""Tests for the execution engine: batches, join kernels, aggregation and the
plan interpreter (verified against brute-force computation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AggregateCall,
    AggregateFunction,
    ColumnRef,
    JoinClause,
    JoinType,
    Literal,
    OutputItem,
)
from repro.executor import (
    Batch,
    combine_key_columns,
    cross_join,
    equi_join,
    join_indices,
    aggregate_batch,
)
from repro.executor.aggregate import aggregate_batch as aggregate
from repro.core.expressions import Arithmetic, ArithmeticOp


class TestBatch:
    def test_from_columns_and_filter(self):
        batch = Batch({"t.a": np.arange(10), "t.b": np.arange(10) * 2})
        filtered = batch.filter(batch.column("t.a") < 3)
        assert filtered.num_rows == 3
        assert list(filtered.column("t.b")) == [0, 2, 4]

    def test_take_and_merge(self):
        left = Batch({"l.a": np.asarray([1, 2, 3])})
        right = Batch({"r.b": np.asarray([10, 20, 30])})
        merged = left.merge(right)
        assert merged.keys == ["l.a", "r.b"]
        taken = merged.take(np.asarray([2, 0]))
        assert list(taken.column("l.a")) == [3, 1]

    def test_merge_length_mismatch(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3)}).merge(Batch({"b": np.arange(4)}))

    def test_merge_duplicate_column(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3)}).merge(Batch({"a": np.arange(3)}))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Batch({"a": np.arange(3), "b": np.arange(4)})

    def test_resolver(self):
        batch = Batch({"t.a": np.asarray([5, 6])})
        assert list(batch.resolve(ColumnRef("t", "a"))) == [5, 6]
        with pytest.raises(KeyError):
            batch.resolve(ColumnRef("t", "zzz"))


class TestJoinKernels:
    def test_join_indices_with_duplicates(self):
        probe = np.asarray([1, 2, 3])
        build = np.asarray([2, 2, 3, 5])
        probe_idx, build_idx, counts = join_indices(probe, build)
        pairs = sorted(zip(probe[probe_idx], build[build_idx]))
        assert pairs == [(2, 2), (2, 2), (3, 3)]
        assert list(counts) == [0, 2, 1]

    def test_join_indices_empty(self):
        probe_idx, build_idx, counts = join_indices(np.asarray([1, 2]),
                                                    np.asarray([]))
        assert probe_idx.size == 0
        assert list(counts) == [0, 0]

    def test_combine_two_int_columns_exact(self):
        a = np.asarray([1, 1, 2], dtype=np.int64)
        b = np.asarray([7, 8, 7], dtype=np.int64)
        keys = combine_key_columns([a, b])
        assert len(np.unique(keys)) == 3

    def test_combine_object_columns(self):
        a = np.asarray(["x", "y"], dtype=object)
        b = np.asarray([1, 1], dtype=np.int64)
        keys = combine_key_columns([a, b])
        assert keys[0] != keys[1]

    def _batches(self):
        probe = Batch({"p.k": np.asarray([1, 2, 3, 4]),
                       "p.v": np.asarray([10, 20, 30, 40])})
        build = Batch({"b.k": np.asarray([2, 4, 4]),
                       "b.w": np.asarray([200, 400, 401])})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        return probe, build, [clause]

    def test_inner_join(self):
        probe, build, clauses = self._batches()
        joined = equi_join(probe, build, clauses, JoinType.INNER)
        assert joined.num_rows == 3
        assert sorted(joined.column("b.w")) == [200, 400, 401]

    def test_semi_and_anti_join(self):
        probe, build, clauses = self._batches()
        semi = equi_join(probe, build, clauses, JoinType.SEMI)
        anti = equi_join(probe, build, clauses, JoinType.ANTI)
        assert sorted(semi.column("p.k")) == [2, 4]
        assert sorted(anti.column("p.k")) == [1, 3]
        assert semi.num_rows + anti.num_rows == probe.num_rows

    def test_left_join_pads_unmatched(self):
        probe, build, clauses = self._batches()
        left = equi_join(probe, build, clauses, JoinType.LEFT)
        assert left.num_rows == 5  # 3 matches + 2 unmatched probe rows
        assert sorted(left.column("p.k")) == [1, 2, 3, 4, 4]

    def test_cross_join(self):
        left = Batch({"l.a": np.asarray([1, 2])})
        right = Batch({"r.b": np.asarray([10, 20, 30])})
        assert cross_join(left, right).num_rows == 6

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                    max_size=60),
           st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                    max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_inner_join_matches_brute_force(self, probe_keys, build_keys):
        probe = Batch({"p.k": np.asarray(probe_keys, dtype=np.int64)})
        build = Batch({"b.k": np.asarray(build_keys, dtype=np.int64)})
        clause = JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))
        joined = equi_join(probe, build, [clause])
        expected = sum(build_keys.count(k) for k in probe_keys)
        assert joined.num_rows == expected


class TestAggregation:
    def test_group_by_sum_count(self):
        batch = Batch({"t.g": np.asarray(["a", "b", "a", "a"], dtype=object),
                       "t.v": np.asarray([1.0, 2.0, 3.0, 4.0])})
        items = [
            OutputItem(ColumnRef("t", "g"), "g"),
            OutputItem(AggregateCall(AggregateFunction.SUM, ColumnRef("t", "v")), "s"),
            OutputItem(AggregateCall(AggregateFunction.COUNT, None), "c"),
        ]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        by_group = dict(zip(result.column("g"), zip(result.column("s"),
                                                    result.column("c"))))
        assert by_group["a"] == (8.0, 3.0)
        assert by_group["b"] == (2.0, 1.0)

    def test_min_max_avg(self):
        batch = Batch({"t.g": np.asarray([1, 1, 2]),
                       "t.v": np.asarray([5.0, 1.0, 7.0])})
        items = [
            OutputItem(AggregateCall(AggregateFunction.MIN, ColumnRef("t", "v")), "lo"),
            OutputItem(AggregateCall(AggregateFunction.MAX, ColumnRef("t", "v")), "hi"),
            OutputItem(AggregateCall(AggregateFunction.AVG, ColumnRef("t", "v")), "avg"),
        ]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert sorted(result.column("lo")) == [1.0, 7.0]
        assert sorted(result.column("hi")) == [5.0, 7.0]
        assert sorted(result.column("avg")) == [3.0, 7.0]

    def test_count_distinct(self):
        batch = Batch({"t.g": np.asarray([1, 1, 1, 2]),
                       "t.v": np.asarray([7, 7, 8, 9])})
        items = [OutputItem(AggregateCall(AggregateFunction.COUNT,
                                          ColumnRef("t", "v"), distinct=True),
                            "d")]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert sorted(result.column("d")) == [1.0, 2.0]

    def test_global_aggregate_without_group_by(self):
        batch = Batch({"t.v": np.asarray([1.0, 2.0, 3.0])})
        items = [OutputItem(AggregateCall(AggregateFunction.SUM,
                                          ColumnRef("t", "v")), "s")]
        result = aggregate(batch, [], items)
        assert result.num_rows == 1
        assert result.column("s")[0] == 6.0

    def test_aggregate_over_expression(self):
        batch = Batch({"t.p": np.asarray([10.0, 20.0]),
                       "t.d": np.asarray([0.1, 0.5])})
        expr = Arithmetic(ArithmeticOp.MUL, ColumnRef("t", "p"),
                          Arithmetic(ArithmeticOp.SUB, Literal(1.0),
                                     ColumnRef("t", "d")))
        items = [OutputItem(AggregateCall(AggregateFunction.SUM, expr), "rev")]
        result = aggregate(batch, [], items)
        assert result.column("rev")[0] == pytest.approx(9.0 + 10.0)

    def test_empty_input(self):
        batch = Batch({"t.g": np.asarray([]), "t.v": np.asarray([])})
        items = [OutputItem(AggregateCall(AggregateFunction.SUM,
                                          ColumnRef("t", "v")), "s")]
        result = aggregate(batch, [ColumnRef("t", "g")], items)
        assert result.num_rows == 0
