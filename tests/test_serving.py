"""Serving-tier tests: cancellation, lifecycle, admission, caching, async.

Covers the acceptance criteria of the serving subsystem:

* a cancelled or deadline-expired query stops with a typed
  :class:`~repro.errors.QueryCancelledError` (sync and async paths);
* a saturated admission queue sheds load via
  :class:`~repro.errors.AdmissionError` and an over-quota tenant cannot
  starve others (weighted fair queueing);
* the shared result cache serves identical hot queries without re-executing,
  invalidates per table, and hands out frozen (read-only) batches so no
  caller can corrupt another's view — including ``execute_many`` collapsing;
* ``close()`` is deterministic and idempotent on sessions, databases and
  the async serving tier.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.api import (
    AdmissionError,
    CancelToken,
    Database,
    ExecutionError,
    QueryCancelledError,
    SessionClosedError,
)
from repro.errors import ReproError
from repro.executor.cancel import DEADLINE_REASON
from repro.serving import (
    AdmissionQueue,
    AsyncDatabase,
    LatencyRecorder,
    ServingMetrics,
    TenantQuota,
    percentile,
)
from repro.storage import Catalog


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


Q_ITEMS = "select count(*) as n from items"
Q_JOIN = ("select count(*) as n from items, groups "
          "where grp = gid and val < 150")
Q_GROUPS = "select count(*) as n from groups"


def make_db(**kwargs) -> Database:
    """A tiny two-table database (deterministic, no TPC-H generation)."""
    db = Database(Catalog(), **kwargs)
    db.register_table("items", {
        "id": np.arange(200, dtype=np.int64),
        "grp": np.arange(200, dtype=np.int64) % 10,
        "val": np.arange(200, dtype=np.float64),
    }, primary_key=["id"])
    db.register_table("groups", {
        "gid": np.arange(10, dtype=np.int64),
        "label": np.arange(10, dtype=np.int64) % 3,
    }, primary_key=["gid"])
    return db


@pytest.fixture()
def db():
    database = make_db()
    yield database
    database.close()


@pytest.fixture()
def cached_db():
    database = make_db(result_cache_size=32)
    yield database
    database.close()


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class GateToken(CancelToken):
    """A token whose poll blocks until a gate opens (worker-pinning)."""

    def __init__(self, gate: threading.Event) -> None:
        super().__init__()
        self.gate = gate
        self.polls = 0

    @property
    def cancelled(self) -> bool:
        self.polls += 1
        self.gate.wait(timeout=10.0)
        return CancelToken.cancelled.fget(self)


class TripAfter(CancelToken):
    """A token that trips itself after ``n`` cancellation polls."""

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = n
        self.polls = 0

    @property
    def cancelled(self) -> bool:
        self.polls += 1
        if self.polls > self.n:
            self.cancel("tripped")
        return CancelToken.cancelled.fget(self)


# ---------------------------------------------------------------------------
# CancelToken
# ---------------------------------------------------------------------------


class TestCancelToken:
    def test_fresh_token_is_not_cancelled(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        assert token.remaining() is None
        token.check()  # must not raise

    def test_cancel_sets_reason_and_first_reason_wins(self):
        token = CancelToken()
        token.cancel("client disconnected")
        token.cancel("second reason")
        assert token.cancelled
        assert token.reason == "client disconnected"
        with pytest.raises(QueryCancelledError) as info:
            token.check()
        assert info.value.reason == "client disconnected"
        assert "client disconnected" in str(info.value)

    def test_deadline_trips_lazily_on_the_clock(self):
        clock = FakeClock()
        token = CancelToken.with_timeout(5.0, clock=clock)
        assert not token.cancelled
        assert token.remaining() == pytest.approx(5.0)
        clock.now = 4.0
        assert token.remaining() == pytest.approx(1.0)
        clock.now = 5.5
        assert token.cancelled
        assert token.reason == DEADLINE_REASON
        assert token.remaining() == 0.0
        with pytest.raises(QueryCancelledError) as info:
            token.check()
        assert info.value.reason == DEADLINE_REASON

    def test_expire_in_only_tightens(self):
        clock = FakeClock()
        token = CancelToken.with_timeout(2.0, clock=clock)
        token.expire_in(10.0)  # looser: ignored
        assert token.remaining() == pytest.approx(2.0)
        token.expire_in(1.0)  # tighter: applied
        assert token.remaining() == pytest.approx(1.0)

    def test_cancelled_error_is_typed_execution_error(self):
        assert issubclass(QueryCancelledError, ExecutionError)
        assert issubclass(QueryCancelledError, ReproError)


# ---------------------------------------------------------------------------
# Executor cancellation (sync API)
# ---------------------------------------------------------------------------


class TestExecutorCancellation:
    def test_pre_cancelled_token_aborts_execute(self, db):
        session = db.connect()
        token = CancelToken()
        token.cancel("caller gave up")
        with pytest.raises(QueryCancelledError) as info:
            session.execute(Q_JOIN, cancel=token)
        assert info.value.reason == "caller gave up"

    def test_expired_deadline_aborts_with_deadline_reason(self, db):
        clock = FakeClock(now=100.0)
        token = CancelToken(deadline=99.0, clock=clock)
        with pytest.raises(QueryCancelledError) as info:
            db.connect().execute(Q_JOIN, cancel=token)
        assert info.value.reason == DEADLINE_REASON

    def test_token_is_polled_during_execution(self, db):
        # The token trips only after a few polls, so the abort proves the
        # executor re-checks at operator/morsel boundaries mid-query
        # rather than only once up front.
        token = TripAfter(2)
        with pytest.raises(QueryCancelledError) as info:
            db.connect().execute(Q_JOIN, cancel=token)
        assert info.value.reason == "tripped"
        assert token.polls > 2

    def test_context_default_token_cancels_without_per_call_arg(self, db):
        session = db.connect()
        session.context.cancel_token = CancelToken()
        session.context.cancel_token.cancel("session-wide stop")
        with pytest.raises(QueryCancelledError):
            session.execute(Q_ITEMS)

    def test_prepared_query_cancel_passthrough(self, db):
        session = db.connect()
        prepared = session.prepare(Q_ITEMS)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            prepared.execute(cancel=token)

    def test_uncancelled_token_changes_nothing(self, db):
        session = db.connect()
        token = CancelToken()
        result = session.execute(Q_JOIN, cancel=token)
        assert result.column("n")[0] == 150
        assert token.polls if hasattr(token, "polls") else True


# ---------------------------------------------------------------------------
# close() lifecycle
# ---------------------------------------------------------------------------


class TestCloseLifecycle:
    def test_session_close_is_idempotent_and_typed(self, db):
        session = db.connect()
        session.execute(Q_ITEMS)
        session.close()
        session.close()
        assert session.is_closed
        for call in (lambda: session.execute(Q_ITEMS),
                     lambda: session.plan(Q_ITEMS),
                     lambda: session.execute_many([Q_ITEMS])):
            with pytest.raises(SessionClosedError):
                call()

    def test_session_close_shuts_morsel_pool_down(self, db):
        # A small morsel size forces multiple morsels, so the lazy pool
        # actually gets built.
        session = db.connect(executor_workers=2, morsel_size=64)
        session.execute(Q_JOIN)
        assert session.context.executor_stats()["thread_pool_size"] == 2
        session.close()
        assert session.context.executor_stats()["thread_pool_size"] == 0

    def test_session_context_manager(self, db):
        with db.connect() as session:
            assert session.execute(Q_ITEMS).column("n")[0] == 200
        assert session.is_closed

    def test_closed_session_results_stay_usable(self, db):
        session = db.connect()
        result = session.execute(Q_ITEMS)
        session.close()
        assert result.column("n")[0] == 200

    def test_database_close_closes_sessions_and_refuses_new_work(self):
        db = make_db()
        session = db.connect()
        db.close()
        db.close()  # idempotent
        assert db.is_closed
        assert session.is_closed
        with pytest.raises(SessionClosedError):
            db.connect()
        with pytest.raises(SessionClosedError):
            db.execute_many([Q_ITEMS])

    def test_database_context_manager(self):
        with make_db() as db:
            assert db.connect().execute(Q_ITEMS).column("n")[0] == 200
        assert db.is_closed


# ---------------------------------------------------------------------------
# AdmissionQueue (unit)
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def test_fifo_within_one_tenant(self):
        queue = AdmissionQueue(max_depth=8)
        for i in range(3):
            queue.submit("t", i)
        assert [queue.next(timeout=0)[1] for _ in range(3)] == [0, 1, 2]

    def test_global_depth_sheds_with_admission_error(self):
        queue = AdmissionQueue(max_depth=2)
        queue.submit("a", 1)
        queue.submit("b", 2)
        with pytest.raises(AdmissionError, match="full"):
            queue.submit("c", 3)
        # Dequeueing frees depth again.
        assert queue.next(timeout=0) is not None
        queue.submit("c", 3)

    def test_per_tenant_backlog_cap(self):
        queue = AdmissionQueue(
            max_depth=16, quotas={"greedy": TenantQuota(max_queued=2)})
        queue.submit("greedy", 1)
        queue.submit("greedy", 2)
        with pytest.raises(AdmissionError, match="greedy"):
            queue.submit("greedy", 3)
        queue.submit("modest", 1)  # other tenants unaffected

    def test_closed_queue_sheds(self):
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(AdmissionError, match="closed"):
            queue.submit("t", 1)
        assert queue.next(timeout=0) is None

    def test_equal_weights_alternate(self):
        queue = AdmissionQueue()
        for i in range(3):
            queue.submit("a", "a%d" % i)
            queue.submit("b", "b%d" % i)
        order = [queue.next(timeout=0)[0] for _ in range(6)]
        for tenant in ("a", "b"):
            queue.release(tenant)  # appease release bookkeeping sanity
            queue.release(tenant)
            queue.release(tenant)
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_fairness_ratio(self):
        queue = AdmissionQueue(
            max_depth=64,
            quotas={"heavy": TenantQuota(weight=2.0, max_concurrency=64),
                    "light": TenantQuota(weight=1.0, max_concurrency=64)})
        for i in range(12):
            queue.submit("heavy", i)
            queue.submit("light", i)
        first_nine = [queue.next(timeout=0)[0] for _ in range(9)]
        # A weight-2 tenant drains twice as fast under contention.
        assert first_nine.count("heavy") == 6
        assert first_nine.count("light") == 3

    def test_over_quota_tenant_cannot_starve_others(self):
        queue = AdmissionQueue(
            max_depth=64,
            quotas={"hog": TenantQuota(max_concurrency=1)})
        for i in range(5):
            queue.submit("hog", "hog%d" % i)
        for i in range(3):
            queue.submit("meek", "meek%d" % i)
        # Without releases, the hog gets exactly its one concurrency slot
        # and every further dequeue serves the other tenant.
        served = [queue.next(timeout=0)[0] for _ in range(4)]
        assert served.count("hog") == 1
        assert served.count("meek") == 3
        assert queue.next(timeout=0) is None  # hog ineligible, meek drained
        queue.release("hog")  # slot freed: the hog becomes eligible again
        assert queue.next(timeout=0)[0] == "hog"

    def test_release_without_dequeue_raises(self):
        queue = AdmissionQueue()
        with pytest.raises(ValueError):
            queue.release("nobody")

    def test_close_returns_dropped_requests(self):
        queue = AdmissionQueue()
        queue.submit("a", "a0")
        queue.submit("b", "b0")
        dropped = queue.close()
        assert sorted(dropped) == [("a", "a0"), ("b", "b0")]
        assert queue.depth == 0


# ---------------------------------------------------------------------------
# The shared result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_hot_query_hits_and_is_marked(self, cached_db):
        session = cached_db.connect()
        cold = session.execute(Q_JOIN)
        hot = session.execute(Q_JOIN)
        assert not cold.from_result_cache
        assert hot.from_result_cache
        assert hot.execution is cold.execution
        assert hot.column("n")[0] == cold.column("n")[0] == 150
        stats = cached_db.cache_stats()
        assert stats.result_hits == 1
        assert stats.result_misses == 1
        assert stats.result_entries == 1
        assert stats.result_lookups == 2

    def test_hits_are_shared_across_sessions(self, cached_db):
        cached_db.connect().execute(Q_ITEMS)
        other = cached_db.connect().execute(Q_ITEMS)
        assert other.from_result_cache

    def test_cached_batches_are_frozen(self, cached_db):
        session = cached_db.connect()
        cold = session.execute(Q_ITEMS)
        hot = session.execute(Q_ITEMS)
        for result in (cold, hot):
            array = result.column("n")
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 99

    def test_disabled_by_default(self, db):
        session = db.connect()
        session.execute(Q_ITEMS)
        repeat = session.execute(Q_ITEMS)
        assert not repeat.from_result_cache
        stats = db.cache_stats()
        assert stats.result_lookups == 0
        assert stats.result_entries == 0
        # Uncached single-query results stay writable (no behaviour change).
        assert repeat.column("n").flags.writeable

    def test_reregistration_evicts_exactly_dependents(self, cached_db):
        session = cached_db.connect()
        session.execute(Q_ITEMS)
        session.execute(Q_GROUPS)
        assert cached_db.cache_stats().result_entries == 2
        # Re-register items: only its dependent entry must go.
        cached_db.register_table("items", {
            "id": np.arange(50, dtype=np.int64),
            "grp": np.arange(50, dtype=np.int64) % 10,
            "val": np.arange(50, dtype=np.float64),
        }, primary_key=["id"])
        stats = cached_db.cache_stats()
        assert stats.result_evictions == 1
        assert stats.result_entries == 1
        fresh = session.execute(Q_ITEMS)
        assert not fresh.from_result_cache
        assert fresh.column("n")[0] == 50  # new data, not the stale 200
        survivor = session.execute(Q_GROUPS)
        assert survivor.from_result_cache  # untouched table stayed hot

    def test_mode_is_part_of_the_key(self, cached_db):
        from repro.api import OptimizerMode

        session = cached_db.connect()
        session.execute(Q_JOIN, OptimizerMode.NO_BF)
        other_mode = session.execute(Q_JOIN, OptimizerMode.BF_CBO)
        assert not other_mode.from_result_cache

    def test_clear_caches_drops_results(self, cached_db):
        session = cached_db.connect()
        session.execute(Q_ITEMS)
        cached_db.clear_caches()
        assert cached_db.cache_stats().result_entries == 0
        assert not session.execute(Q_ITEMS).from_result_cache


# ---------------------------------------------------------------------------
# execute_many aliasing regression
# ---------------------------------------------------------------------------


class TestExecuteManyAliasing:
    def test_collapsed_results_share_one_frozen_execution(self, db):
        session = db.connect()
        results = session.execute_many([Q_JOIN, Q_JOIN, Q_ITEMS])
        assert results[0].execution is results[1].execution
        assert results[2].execution is not results[0].execution
        # Mutating one caller's view must raise, not silently corrupt the
        # other caller's arrays.
        with pytest.raises(ValueError):
            results[0].column("n")[0] = -1
        assert results[1].column("n")[0] == 150

    def test_shared_null_masks_are_frozen_too(self, db):
        sql = ("select sum(val) as s from items, groups "
               "where grp = gid and val < 0")
        results = db.connect().execute_many([sql, sql])
        mask = results[0].null_mask("s")
        assert mask is not None and mask[0]  # SUM over no rows is NULL
        with pytest.raises(ValueError):
            mask[0] = False

    def test_unshared_results_stay_writable(self, db):
        results = db.connect().execute_many([Q_ITEMS, Q_GROUPS])
        assert results[0].execution is not results[1].execution
        assert results[0].column("n").flags.writeable

    def test_deduplicate_off_keeps_separate_executions(self, db):
        results = db.connect().execute_many([Q_ITEMS, Q_ITEMS],
                                            deduplicate=False)
        assert results[0].execution is not results[1].execution


# ---------------------------------------------------------------------------
# The async serving tier
# ---------------------------------------------------------------------------


def run_async(coro):
    return asyncio.run(coro)


class TestAsyncServing:
    def test_execute_async_matches_sync(self, cached_db):
        async def main():
            async with AsyncDatabase(cached_db, workers=2) as serving:
                result = await serving.execute_async(Q_JOIN, tenant="t1")
                return result

        result = run_async(main())
        assert result.column("n")[0] == 150
        assert cached_db.connect().execute(Q_JOIN).column("n")[0] == 150

    def test_result_cache_hits_across_tenants(self, cached_db):
        async def main():
            async with AsyncDatabase(cached_db, workers=2) as serving:
                first = await serving.execute_async(Q_ITEMS, tenant="a")
                second = await serving.execute_async(Q_ITEMS, tenant="b")
                return first, second, serving.snapshot()

        first, second, snap = run_async(main())
        assert not first.from_result_cache
        assert second.from_result_cache
        assert snap.result_cache_hits == 1
        assert snap.completed == 2

    def test_saturated_queue_sheds_with_admission_error(self, db):
        gate = threading.Event()
        token = GateToken(gate)

        async def main():
            serving = AsyncDatabase(db, workers=1, max_queue_depth=1)
            try:
                # Pin the single worker inside query 1...
                running = asyncio.ensure_future(
                    serving.execute_async(Q_ITEMS, cancel=token))
                while serving.queue.in_flight("default") == 0:
                    await asyncio.sleep(0.005)
                # ...fill the queue with query 2...
                queued = asyncio.ensure_future(
                    serving.execute_async(Q_ITEMS, tenant="other"))
                while serving.queue.depth == 0:
                    await asyncio.sleep(0.005)
                # ...and watch query 3 shed immediately.
                with pytest.raises(AdmissionError):
                    await serving.execute_async(Q_ITEMS, tenant="third")
                gate.set()
                await running
                await queued
                return serving.snapshot()
            finally:
                gate.set()
                serving.close()

        snap = run_async(main())
        assert snap.rejected == 1
        assert snap.completed == 2

    def test_deadline_while_queued_is_cancelled_typed(self, db):
        gate = threading.Event()
        token = GateToken(gate)

        async def main():
            serving = AsyncDatabase(db, workers=1)
            try:
                running = asyncio.ensure_future(
                    serving.execute_async(Q_ITEMS, cancel=token))
                while serving.queue.in_flight("default") == 0:
                    await asyncio.sleep(0.005)
                with pytest.raises(QueryCancelledError) as info:
                    await serving.execute_async(Q_ITEMS, timeout=0.05)
                assert info.value.reason == DEADLINE_REASON
                gate.set()
                await running
                return serving.snapshot()
            finally:
                gate.set()
                serving.close()

        snap = run_async(main())
        assert snap.cancelled >= 1

    def test_client_disconnect_trips_the_token(self, db):
        gate = threading.Event()
        token = GateToken(gate)

        async def main():
            serving = AsyncDatabase(db, workers=1)
            try:
                task = asyncio.ensure_future(
                    serving.execute_async(Q_ITEMS, cancel=token))
                while token.polls == 0:
                    await asyncio.sleep(0.005)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                gate.set()
            finally:
                gate.set()
                serving.close()
            return token.reason

        assert run_async(main()) == "client disconnected"

    def test_async_session_binds_tenant(self, cached_db):
        async def main():
            async with AsyncDatabase(cached_db, workers=2) as serving:
                tenant = serving.session("dashboards")
                result = await tenant.execute(Q_GROUPS)
                return result, serving.snapshot()

        result, snap = run_async(main())
        assert result.column("n")[0] == 10
        assert "dashboards" in snap.tenants
        assert snap.tenants["dashboards"].count == 1

    def test_close_fails_queued_requests_and_refuses_new(self, db):
        gate = threading.Event()
        token = GateToken(gate)

        async def main():
            serving = AsyncDatabase(db, workers=1)
            running = asyncio.ensure_future(
                serving.execute_async(Q_ITEMS, cancel=token))
            while serving.queue.in_flight("default") == 0:
                await asyncio.sleep(0.005)
            queued = asyncio.ensure_future(serving.execute_async(Q_GROUPS))
            while serving.queue.depth == 0:
                await asyncio.sleep(0.005)
            # Close while the worker is still pinned inside query 1, so
            # query 2 is genuinely dropped from the queue...
            closing = asyncio.get_event_loop().run_in_executor(
                None, serving.close)
            with pytest.raises(AdmissionError):
                await queued
            with pytest.raises(SessionClosedError):
                await serving.execute_async(Q_ITEMS)
            # ...then release the worker and let close() finish joining.
            gate.set()
            await closing
            serving.close()  # idempotent
            return await running

        result = run_async(main())
        assert result.column("n")[0] == 200

    def test_engine_errors_surface_through_the_future(self, db):
        async def main():
            async with AsyncDatabase(db, workers=1) as serving:
                with pytest.raises(ReproError):
                    await serving.execute_async(
                        "select nope from missing_table")
                return serving.snapshot()

        snap = run_async(main())
        assert snap.failed == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 0) == 1.0
        assert percentile([7.0], 99) == 7.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_recorder_sliding_window(self):
        recorder = LatencyRecorder(reservoir=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.record(value)
        snap = recorder.snapshot()
        assert recorder.count == 4  # lifetime count survives the window
        assert snap.max_ms == 4.0
        assert snap.p50_ms == 3.0  # window holds [2, 3, 4]

    def test_empty_recorder_snapshots_zeros(self):
        snap = LatencyRecorder().snapshot()
        assert snap.count == 0
        assert snap.p99_ms == 0.0

    def test_unknown_counter_raises(self):
        with pytest.raises(KeyError):
            ServingMetrics().count("nonsense")

    def test_snapshot_shape(self):
        metrics = ServingMetrics()
        metrics.count("admitted")
        metrics.count("completed")
        metrics.record_latency("t1", 5.0)
        snap = metrics.snapshot()
        assert snap.in_flight_or_queued == 0
        assert snap.latency.count == 1
        assert snap.tenants["t1"].p50_ms == 5.0
        assert snap.latency.as_dict()["p50_ms"] == 5.0
