"""Tests for the bitmask DPccp enumeration core.

Three layers of guarantees:

* the :class:`JoinGraph` mask primitives (alias↔bit mapping, neighbor masks,
  mask connectivity, components) agree with their definitions;
* the DPccp (csg, cmp) walk emits exactly the valid connected pairs, and the
  ordered pair sequence of :meth:`JoinEnumerator.enumerate_join_pairs` is
  byte-identical to the seed enumerator's subset-scanning walk on every
  connected or two-component graph shape;
* disconnected queries (3+ components) are planned through explicit
  cross-product stitching — the seed enumerator produced no plan for them.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import CostModel, Optimizer, OptimizerMode
from repro.core.cardinality import CardinalityEstimator
from repro.core.enumerator import JoinEnumerator
from repro.core.expressions import ColumnRef
from repro.core.joingraph import JoinGraph
from repro.core.query import BaseRelation, JoinClause, QueryBlock
from repro.storage import Catalog, INT64, make_schema, synthetic_statistics


def make_query(num_relations, edges, name="g"):
    relations = [BaseRelation("t%02d" % i, "t%02d" % i)
                 for i in range(num_relations)]
    clauses = [JoinClause(ColumnRef("t%02d" % i, "c%d" % j),
                          ColumnRef("t%02d" % j, "c%d" % i))
               for i, j in edges]
    return QueryBlock(relations=relations, join_clauses=clauses, name=name)


def make_catalog(query, rows=10_000):
    catalog = Catalog()
    for relation in query.relations:
        columns = [("pk", INT64)]
        ndv = {"pk": rows}
        for clause in query.join_clauses:
            for side in (clause.left, clause.right):
                if side.relation == relation.alias:
                    columns.append((side.column, INT64))
                    ndv[side.column] = rows // 2
        schema = make_schema(relation.table_name, columns, primary_key=["pk"])
        catalog.register_schema(schema, synthetic_statistics(
            relation.table_name, rows, ndv))
    return catalog


def reference_pairs(query, graph):
    """The seed enumerator's pair walk: scan all 2^n subsets, filter for
    connectivity, split each union by scanning all 2^k subset masks."""
    aliases = query.aliases
    all_relations = frozenset(aliases)
    out = []
    for size in range(2, len(aliases) + 1):
        for combo in itertools.combinations(aliases, size):
            union = frozenset(combo)
            if not (graph.is_connected_set(union) or union == all_relations):
                continue
            members = sorted(union)
            connected_pairs, cross_pairs = [], []
            for mask in range(1, (1 << len(members)) - 1):
                outer = frozenset(members[i] for i in range(len(members))
                                  if mask & (1 << i))
                inner = union - outer
                if not (graph.is_connected_set(outer)
                        and graph.is_connected_set(inner)):
                    continue
                clauses = tuple(query.clauses_between(outer, inner))
                entry = (union, outer, inner, clauses)
                (connected_pairs if clauses else cross_pairs).append(entry)
            out.extend(connected_pairs if connected_pairs else cross_pairs)
    return out


def enumerator_for(query):
    # The mask walk never touches catalog/estimator/cost model, so the real
    # constructor works with None stubs — future __init__ fields are then
    # initialised for free instead of being hand-mirrored here.
    return JoinEnumerator(None, query, None, None)


GRAPH_SHAPES = []
for n in range(2, 7):
    GRAPH_SHAPES.append((n, [(i, i + 1) for i in range(n - 1)], "chain"))
    GRAPH_SHAPES.append((n, [(0, i) for i in range(1, n)], "star"))
    GRAPH_SHAPES.append((n, [(i, j) for i in range(n)
                             for j in range(i + 1, n)], "clique"))
    if n >= 3:
        GRAPH_SHAPES.append((n, [(i, (i + 1) % n) for i in range(n)], "cycle"))
GRAPH_SHAPES.append((5, [(0, 1), (1, 2), (3, 4)], "two-components"))
GRAPH_SHAPES.append((4, [(0, 1), (2, 3)], "two-pairs"))
GRAPH_SHAPES.append((2, [], "two-singletons"))


class TestJoinGraphMasks:
    def test_bit_mapping_follows_from_order(self):
        query = make_query(4, [(0, 1), (1, 2), (2, 3)])
        graph = JoinGraph(query)
        assert graph.aliases == ("t00", "t01", "t02", "t03")
        assert [graph.bit_of[a] for a in graph.aliases] == [0, 1, 2, 3]
        assert graph.all_mask == 0b1111
        assert graph.mask_of(["t02", "t00"]) == 0b0101
        assert graph.aliases_of(0b0101) == frozenset({"t00", "t02"})

    def test_neighbor_masks(self):
        query = make_query(4, [(0, 1), (1, 2), (2, 3)])
        graph = JoinGraph(query)
        assert graph.neighbor_masks[0] == 0b0010
        assert graph.neighbor_masks[1] == 0b0101
        assert graph.neighbor_mask(0b0011) == 0b0100  # neighbours of {t0,t1}

    def test_mask_connectivity_matches_bfs(self):
        for n, edges, _ in GRAPH_SHAPES:
            query = make_query(n, edges)
            graph = JoinGraph(query)
            for mask in range(1, 1 << n):
                subset = graph.aliases_of(mask)
                adjacency = {a: graph.neighbours(a) & subset for a in subset}
                seen = {next(iter(subset))}
                frontier = list(seen)
                while frontier:
                    for neighbour in adjacency[frontier.pop()]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            frontier.append(neighbour)
                assert graph.is_connected_mask(mask) == (seen == set(subset))

    def test_component_masks_ordered_and_disjoint(self):
        query = make_query(5, [(0, 1), (1, 2), (3, 4)])
        graph = JoinGraph(query)
        components = graph.component_masks()
        assert components == [0b00111, 0b11000]
        assert graph.connected_components() == [
            frozenset({"t00", "t01", "t02"}), frozenset({"t03", "t04"})]


class TestDpccp:
    @pytest.mark.parametrize("n,edges,shape", GRAPH_SHAPES,
                             ids=[f"{s}-{n}" for n, e, s in GRAPH_SHAPES])
    def test_csg_cmp_pairs_complete_and_unique(self, n, edges, shape):
        query = make_query(n, edges)
        graph = JoinGraph(query)
        emitted = []
        for component in graph.component_masks():
            emitted.extend(graph.csg_cmp_pairs(component))
        # Uniqueness per unordered pair.
        unordered = {frozenset((a, b)) for a, b in emitted}
        assert len(unordered) == len(emitted)
        # Validity: connected halves, disjoint, joined by an edge.
        for csg, cmp_mask in emitted:
            assert csg & cmp_mask == 0
            assert graph.is_connected_mask(csg)
            assert graph.is_connected_mask(cmp_mask)
            assert graph.neighbor_mask(csg) & cmp_mask
        # Completeness against brute force over all disjoint mask pairs.
        expected = set()
        for a in range(1, 1 << n):
            for b in range(a + 1, 1 << n):
                if a & b:
                    continue
                if (graph.is_connected_mask(a) and graph.is_connected_mask(b)
                        and graph.neighbor_mask(a) & b):
                    expected.add(frozenset((a, b)))
        assert unordered == expected

    @pytest.mark.parametrize("n,edges,shape", GRAPH_SHAPES,
                             ids=[f"{s}-{n}" for n, e, s in GRAPH_SHAPES])
    def test_pair_sequence_identical_to_seed_walk(self, n, edges, shape):
        query = make_query(n, edges)
        graph = JoinGraph(query)
        if len(graph.component_masks()) > 2:
            pytest.skip("seed walk produced no full plan for 3+ components")
        enumerator = enumerator_for(query)
        new = [(p.union, p.outer, p.inner, p.clauses)
               for p in enumerator.enumerate_join_pairs()]
        assert new == reference_pairs(query, graph)

    def test_pair_masks_match_frozensets(self):
        query = make_query(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        enumerator = enumerator_for(query)
        graph = enumerator.join_graph
        for pair in enumerator.enumerate_join_pairs():
            assert graph.aliases_of(pair.union_mask) == pair.union
            assert graph.aliases_of(pair.outer_mask) == pair.outer
            assert graph.aliases_of(pair.inner_mask) == pair.inner
            assert pair.union_mask == pair.outer_mask | pair.inner_mask


class TestDisconnectedQueries:
    def three_component_query(self):
        return make_query(5, [(0, 1), (2, 3)], name="three-components")

    def test_connected_subsets_include_stitched_prefixes(self):
        query = self.three_component_query()
        catalog = make_catalog(query)
        estimator = CardinalityEstimator(catalog, query)
        enumerator = JoinEnumerator(catalog, query, estimator, CostModel())
        subsets = enumerator.connected_subsets()
        assert frozenset({"t00", "t01", "t02", "t03"}) in subsets
        assert frozenset(query.aliases) in subsets
        sizes = [len(s) for s in subsets]
        assert sizes == sorted(sizes)

    def test_three_component_query_gets_a_plan(self):
        """Regression: the seed enumerator admitted the full relation set but
        never stitched intermediate components, so 3+ component queries had no
        valid plan at all."""
        query = self.three_component_query()
        catalog = make_catalog(query)
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        assert result.join_plan.relations == frozenset(query.aliases)
        # Two stitch steps, each considered in both orientations.
        assert result.enumeration_stats.cross_products_stitched == 4

    def test_two_component_query_still_plans(self):
        query = make_query(4, [(0, 1), (2, 3)], name="two-components")
        catalog = make_catalog(query)
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        assert result.join_plan.relations == frozenset(query.aliases)
        assert result.enumeration_stats.cross_products_stitched == 2

    def test_pure_cross_product_query(self):
        query = make_query(3, [], name="all-singletons")
        catalog = make_catalog(query)
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        assert result.join_plan.relations == frozenset(query.aliases)

    def test_connected_query_counts_no_cross_products(self):
        query = make_query(4, [(0, 1), (1, 2), (2, 3)], name="chain")
        catalog = make_catalog(query)
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        assert result.enumeration_stats.cross_products_stitched == 0
