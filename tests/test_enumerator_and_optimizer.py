"""Tests for the join enumerator, the δ join constraints, the optimizer facade
and the BF-Post post-processing baseline."""

from __future__ import annotations

import pytest

from repro.core import (
    BfCboSettings,
    CostModel,
    JoinMethod,
    Optimizer,
    OptimizerMode,
    count_bloom_filters,
    explain,
    join_nodes,
    join_order_summary,
    scan_nodes,
)
from repro.core.cardinality import CardinalityEstimator
from repro.core.enumerator import JoinEnumerator
from repro.core.plans import ExchangeNode, JoinNode, ScanNode
from repro.experiments.delta_semantics import run_delta_semantics


class TestEnumeration:
    def test_connected_subsets(self, running_example_catalog, running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        subsets = enumerator.connected_subsets()
        # {t1,t3} is not connected, so 3 singletons + 2 pairs + the full set.
        assert frozenset({"t1", "t3"}) not in subsets
        assert frozenset({"t1", "t2", "t3"}) in subsets
        assert len(subsets) == 6

    def test_join_pairs_cover_both_orders(self, running_example_catalog,
                                          running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        pairs = {(p.outer, p.inner) for p in enumerator.enumerate_join_pairs()}
        assert (frozenset({"t1"}), frozenset({"t2"})) in pairs
        assert (frozenset({"t2"}), frozenset({"t1"})) in pairs
        assert (frozenset({"t1", "t2"}), frozenset({"t3"})) in pairs
        assert (frozenset({"t3"}), frozenset({"t1", "t2"})) in pairs

    def test_plain_dp_produces_full_plan(self, running_example_catalog,
                                         running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        plan_lists = enumerator.optimize()
        full = plan_lists[frozenset({"t1", "t2", "t3"})]
        best = full.best()
        assert best is not None
        assert best.relations == frozenset({"t1", "t2", "t3"})
        assert enumerator.stats.join_pairs_considered > 0
        assert enumerator.stats.plans_retained > 0

    def test_exchange_nodes_inserted(self, running_example_catalog,
                                     running_example_query):
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.NO_BF)
        kinds = {type(node) for node in result.plan.walk()}
        assert ExchangeNode in kinds


class TestDeltaJoinConstraints:
    def test_figure2_and_figure3_semantics(self):
        result = run_delta_semantics()
        assert result.delta_dependency_holds
        assert result.illegal_join_rejected
        assert result.exception_join_allowed
        assert result.rows_delta_r1_r2 < result.rows_delta_r1


class TestOptimizerModes:
    @pytest.fixture()
    def results(self, running_example_catalog, running_example_query):
        optimizer = Optimizer(running_example_catalog)
        return {mode: optimizer.optimize(running_example_query, mode)
                for mode in OptimizerMode}

    def test_no_bf_has_no_filters(self, results):
        assert results[OptimizerMode.NO_BF].num_bloom_filters == 0

    def test_bf_cbo_uses_filters(self, results):
        assert results[OptimizerMode.BF_CBO].num_bloom_filters >= 1

    def test_bf_cbo_cost_not_worse(self, results):
        assert results[OptimizerMode.BF_CBO].estimated_cost <= \
            results[OptimizerMode.NO_BF].estimated_cost * 1.001

    def test_bf_post_keeps_no_bf_estimates(self, results):
        """BF-Post must not change the plan shape or cost of the No-BF plan."""

        def shape(plan):
            # Drop the "[builds ...]" annotation: BF-Post adds filters to the
            # existing joins, which is exactly what this test allows.
            return [entry.split(" [builds")[0]
                    for entry in join_order_summary(plan)]

        assert shape(results[OptimizerMode.BF_POST].join_plan) == \
            shape(results[OptimizerMode.NO_BF].join_plan)
        assert results[OptimizerMode.BF_POST].estimated_cost == \
            pytest.approx(results[OptimizerMode.NO_BF].estimated_cost)

    def test_final_plan_has_no_pending_blooms(self, results):
        for result in results.values():
            assert not result.plan.pending_blooms

    def test_bloom_scans_fed_by_building_joins(self, results):
        """Every Bloom filter applied by a scan must be built by a hash join
        above it whose inner side provides the build relation."""
        plan = results[OptimizerMode.BF_CBO].join_plan
        built = {spec.filter_id for node in join_nodes(plan)
                 for spec in node.built_filters}
        applied = {spec.filter_id for node in scan_nodes(plan)
                   for spec in node.bloom_filters}
        assert applied <= built

    def test_building_joins_are_hash_joins(self, results):
        plan = results[OptimizerMode.BF_CBO].join_plan
        for node in join_nodes(plan):
            if node.built_filters:
                assert node.method is JoinMethod.HASH

    def test_explain_renders(self, results):
        text = explain(results[OptimizerMode.BF_CBO].plan)
        assert "Scan" in text
        assert "rows=" in text

    def test_planning_time_recorded(self, results):
        for result in results.values():
            assert result.planning_time_ms > 0


class TestBfPostBaseline:
    def test_post_processing_adds_filters(self, running_example_catalog,
                                          running_example_query):
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        assert result.postprocess_report is not None
        assert result.num_bloom_filters == result.postprocess_report.num_filters

    def test_post_processing_idempotent_filters(self, running_example_catalog,
                                                running_example_query):
        """The same (apply, build) pair is never attached twice to one scan."""
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        for scan in scan_nodes(result.join_plan):
            pairs = [(s.apply_column, s.build_column) for s in scan.bloom_filters]
            assert len(pairs) == len(set(pairs))

    def test_estimated_rows_not_revised(self, running_example_catalog,
                                        running_example_query):
        """BF-Post leaves scan row estimates untouched (Section 4.2)."""
        optimizer = Optimizer(running_example_catalog)
        no_bf = optimizer.optimize(running_example_query, OptimizerMode.NO_BF)
        bf_post = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        no_bf_rows = {node.alias: node.rows for node in scan_nodes(no_bf.join_plan)}
        post_rows = {node.alias: node.rows for node in scan_nodes(bf_post.join_plan)}
        assert no_bf_rows == post_rows
