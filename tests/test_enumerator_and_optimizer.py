"""Tests for the join enumerator, the δ join constraints, the optimizer facade
and the BF-Post post-processing baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BfCboSettings,
    ColumnRef,
    CostModel,
    JoinMethod,
    Optimizer,
    OptimizerMode,
    count_bloom_filters,
    explain,
    join_nodes,
    join_order_summary,
    scan_nodes,
)
from repro.core.cardinality import CardinalityEstimator
from repro.core.enumerator import JoinEnumerator
from repro.core.plans import ExchangeNode, JoinNode, ScanNode
from repro.core.query import BaseRelation, JoinClause, JoinType, QueryBlock
from repro.executor import ExecutionContext, Executor
from repro.experiments.delta_semantics import run_delta_semantics
from repro.storage import Catalog, INT64, make_schema
from repro.storage.table import Table


class TestEnumeration:
    def test_connected_subsets(self, running_example_catalog, running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        subsets = enumerator.connected_subsets()
        # {t1,t3} is not connected, so 3 singletons + 2 pairs + the full set.
        assert frozenset({"t1", "t3"}) not in subsets
        assert frozenset({"t1", "t2", "t3"}) in subsets
        assert len(subsets) == 6

    def test_join_pairs_cover_both_orders(self, running_example_catalog,
                                          running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        pairs = {(p.outer, p.inner) for p in enumerator.enumerate_join_pairs()}
        assert (frozenset({"t1"}), frozenset({"t2"})) in pairs
        assert (frozenset({"t2"}), frozenset({"t1"})) in pairs
        assert (frozenset({"t1", "t2"}), frozenset({"t3"})) in pairs
        assert (frozenset({"t3"}), frozenset({"t1", "t2"})) in pairs

    def test_plain_dp_produces_full_plan(self, running_example_catalog,
                                         running_example_query):
        estimator = CardinalityEstimator(running_example_catalog,
                                         running_example_query)
        enumerator = JoinEnumerator(running_example_catalog,
                                    running_example_query, estimator,
                                    CostModel())
        plan_lists = enumerator.optimize()
        full = plan_lists[frozenset({"t1", "t2", "t3"})]
        best = full.best()
        assert best is not None
        assert best.relations == frozenset({"t1", "t2", "t3"})
        assert enumerator.stats.join_pairs_considered > 0
        assert enumerator.stats.plans_retained > 0

    def test_exchange_nodes_inserted(self, running_example_catalog,
                                     running_example_query):
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.NO_BF)
        kinds = {type(node) for node in result.plan.walk()}
        assert ExchangeNode in kinds


class TestFullJoinOrientationFreedom:
    """FULL preserves both sides, so the enumerator may flip the join inputs.

    ``big`` (SQL-left / preserved side of the clause) is much larger than
    ``small``; before the orientation fix the SQL-left side was pinned to the
    probe side, forcing ``big`` onto probe and forbidding the (small probe,
    big build) orientation outright — here the *cheap* orientation is the one
    with the small build side, which the DP must now be free to pick either
    way around.
    """

    @pytest.fixture()
    def full_join_setup(self):
        catalog = Catalog()
        big_schema = make_schema("big", [("k", INT64), ("payload", INT64)])
        small_schema = make_schema("small", [("k", INT64)])
        catalog.register_table(Table(big_schema, {
            "k": np.arange(5000, dtype=np.int64),
            "payload": np.arange(5000, dtype=np.int64) * 2,
        }))
        # small straddles big's key range: 50 matched keys (4950..4999) and
        # 50 unmatched ones (5000..5049), so a reversed orientation must
        # exercise the unmatched-*build*-row padding path of the FULL kernel.
        catalog.register_table(Table(small_schema, {
            "k": np.arange(4950, 5050, dtype=np.int64),
        }))
        query = QueryBlock(
            relations=[BaseRelation("big", "big"),
                       BaseRelation("small", "small")],
            join_clauses=[JoinClause(ColumnRef("big", "k"),
                                     ColumnRef("small", "k"),
                                     join_type=JoinType.FULL)],
            name="full-join")
        return catalog, query

    def test_both_orientations_enumerated(self, full_join_setup):
        catalog, query = full_join_setup
        estimator = CardinalityEstimator(catalog, query)
        enumerator = JoinEnumerator(catalog, query, estimator, CostModel())
        orientations = set()
        for pair in enumerator.enumerate_join_pairs():
            if enumerator._join_type_for(pair) is JoinType.FULL:
                orientations.add((pair.outer, pair.inner))
        assert orientations == {
            (frozenset({"big"}), frozenset({"small"})),
            (frozenset({"small"}), frozenset({"big"})),
        }

    def test_optimizer_picks_small_build_side(self, full_join_setup):
        catalog, query = full_join_setup
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        joins = list(join_nodes(result.join_plan))
        assert len(joins) == 1
        assert joins[0].join_type is JoinType.FULL
        # The freed orientation with the 100-row build side must win over the
        # previously forced 5000-row build side.
        assert joins[0].inner.relations == frozenset({"small"})

    def test_full_semantics_preserved_under_reversal(self, full_join_setup):
        catalog, query = full_join_setup
        result = Optimizer(catalog).optimize(query, OptimizerMode.NO_BF)
        execution = Executor(ExecutionContext.for_catalog(catalog)).execute(
            result.join_plan)
        # 50 matched + 4950 unmatched big + 50 unmatched small (build-side
        # rows the reversed orientation must preserve) = 5050.
        assert execution.num_rows == 5050
        batch = execution.batch
        small_null = batch.null_mask("small.k")
        # 4950 unmatched big rows carry NULL on the small columns.
        assert small_null is not None and int(small_null.sum()) == 4950
        small_keys = batch.column("small.k")[~small_null]
        assert small_keys.shape[0] == 100
        # The 50 unmatched small rows survive with big null-padded out.
        assert int((small_keys >= 5000).sum()) == 50
        big_null = batch.null_mask("big.k")
        assert big_null is not None and int(big_null.sum()) == 50

    def test_conflicting_outer_join_types_rejected(self, full_join_setup):
        catalog, query = full_join_setup
        mixed = QueryBlock(
            relations=list(query.relations),
            join_clauses=[JoinClause(ColumnRef("big", "k"),
                                     ColumnRef("small", "k"),
                                     join_type=JoinType.LEFT),
                          JoinClause(ColumnRef("big", "payload"),
                                     ColumnRef("small", "k"),
                                     join_type=JoinType.FULL)],
            name="mixed-outer")
        estimator = CardinalityEstimator(catalog, mixed)
        enumerator = JoinEnumerator(catalog, mixed, estimator, CostModel())
        # LEFT + FULL between one relation pair has no single-join semantics:
        # both orientations must be rejected regardless of clause order.
        for pair in enumerator.enumerate_join_pairs():
            assert enumerator._join_type_for(pair) is None

    def test_left_join_orientation_still_pinned(self, full_join_setup):
        catalog, query = full_join_setup
        pinned = QueryBlock(
            relations=list(query.relations),
            join_clauses=[JoinClause(ColumnRef("big", "k"),
                                     ColumnRef("small", "k"),
                                     join_type=JoinType.LEFT)],
            name="left-join")
        estimator = CardinalityEstimator(catalog, pinned)
        enumerator = JoinEnumerator(catalog, pinned, estimator, CostModel())
        orientations = set()
        for pair in enumerator.enumerate_join_pairs():
            if enumerator._join_type_for(pair) is not None:
                orientations.add((pair.outer, pair.inner))
        # LEFT keeps the row-preserving side on the probe side only.
        assert orientations == {(frozenset({"big"}), frozenset({"small"}))}


class TestDeltaJoinConstraints:
    def test_figure2_and_figure3_semantics(self):
        result = run_delta_semantics()
        assert result.delta_dependency_holds
        assert result.illegal_join_rejected
        assert result.exception_join_allowed
        assert result.rows_delta_r1_r2 < result.rows_delta_r1


class TestOptimizerModes:
    @pytest.fixture()
    def results(self, running_example_catalog, running_example_query):
        optimizer = Optimizer(running_example_catalog)
        return {mode: optimizer.optimize(running_example_query, mode)
                for mode in OptimizerMode}

    def test_no_bf_has_no_filters(self, results):
        assert results[OptimizerMode.NO_BF].num_bloom_filters == 0

    def test_bf_cbo_uses_filters(self, results):
        assert results[OptimizerMode.BF_CBO].num_bloom_filters >= 1

    def test_bf_cbo_cost_not_worse(self, results):
        assert results[OptimizerMode.BF_CBO].estimated_cost <= \
            results[OptimizerMode.NO_BF].estimated_cost * 1.001

    def test_bf_post_keeps_no_bf_estimates(self, results):
        """BF-Post must not change the plan shape or cost of the No-BF plan."""

        def shape(plan):
            # Drop the "[builds ...]" annotation: BF-Post adds filters to the
            # existing joins, which is exactly what this test allows.
            return [entry.split(" [builds")[0]
                    for entry in join_order_summary(plan)]

        assert shape(results[OptimizerMode.BF_POST].join_plan) == \
            shape(results[OptimizerMode.NO_BF].join_plan)
        assert results[OptimizerMode.BF_POST].estimated_cost == \
            pytest.approx(results[OptimizerMode.NO_BF].estimated_cost)

    def test_final_plan_has_no_pending_blooms(self, results):
        for result in results.values():
            assert not result.plan.pending_blooms

    def test_bloom_scans_fed_by_building_joins(self, results):
        """Every Bloom filter applied by a scan must be built by a hash join
        above it whose inner side provides the build relation."""
        plan = results[OptimizerMode.BF_CBO].join_plan
        built = {spec.filter_id for node in join_nodes(plan)
                 for spec in node.built_filters}
        applied = {spec.filter_id for node in scan_nodes(plan)
                   for spec in node.bloom_filters}
        assert applied <= built

    def test_building_joins_are_hash_joins(self, results):
        plan = results[OptimizerMode.BF_CBO].join_plan
        for node in join_nodes(plan):
            if node.built_filters:
                assert node.method is JoinMethod.HASH

    def test_explain_renders(self, results):
        text = explain(results[OptimizerMode.BF_CBO].plan)
        assert "Scan" in text
        assert "rows=" in text

    def test_planning_time_recorded(self, results):
        for result in results.values():
            assert result.planning_time_ms > 0


class TestBfPostBaseline:
    def test_post_processing_adds_filters(self, running_example_catalog,
                                          running_example_query):
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        assert result.postprocess_report is not None
        assert result.num_bloom_filters == result.postprocess_report.num_filters

    def test_post_processing_idempotent_filters(self, running_example_catalog,
                                                running_example_query):
        """The same (apply, build) pair is never attached twice to one scan."""
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        for scan in scan_nodes(result.join_plan):
            pairs = [(s.apply_column, s.build_column) for s in scan.bloom_filters]
            assert len(pairs) == len(set(pairs))

    def test_estimated_rows_not_revised(self, running_example_catalog,
                                        running_example_query):
        """BF-Post leaves scan row estimates untouched (Section 4.2)."""
        optimizer = Optimizer(running_example_catalog)
        no_bf = optimizer.optimize(running_example_query, OptimizerMode.NO_BF)
        bf_post = optimizer.optimize(running_example_query, OptimizerMode.BF_POST)
        no_bf_rows = {node.alias: node.rows for node in scan_nodes(no_bf.join_plan)}
        post_rows = {node.alias: node.rows for node in scan_nodes(bf_post.join_plan)}
        assert no_bf_rows == post_rows
