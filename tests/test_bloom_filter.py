"""Unit and property-based tests for the runtime Bloom filter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter, PartitionedBloomFilter, partition_of


class TestBloomFilterBasics:
    def test_no_false_negatives_integers(self):
        values = np.arange(0, 5_000, dtype=np.int64)
        bloom = BloomFilter.from_values(values)
        assert bool(bloom.contains_many(values).all())

    def test_no_false_negatives_strings(self):
        values = np.asarray(["FRANCE", "GERMANY", "CANADA"], dtype=object)
        bloom = BloomFilter.from_values(values)
        assert bool(bloom.contains_many(values).all())

    def test_no_false_negatives_floats(self):
        values = np.linspace(0.0, 1.0, 257)
        bloom = BloomFilter.from_values(values)
        assert bool(bloom.contains_many(values).all())

    def test_false_positive_rate_is_low(self):
        rng = np.random.default_rng(7)
        present = rng.integers(0, 1 << 40, size=20_000)
        absent = rng.integers(1 << 41, 1 << 42, size=20_000)
        bloom = BloomFilter.from_values(present)
        observed_fpr = bloom.contains_many(absent).mean()
        assert observed_fpr < 0.15

    def test_single_value_membership(self):
        bloom = BloomFilter(expected_keys=10)
        bloom.add(42)
        assert 42 in bloom

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_keys=100)
        assert not bloom.contains_many(np.arange(100)).any()

    def test_empty_probe(self):
        bloom = BloomFilter.from_values(np.arange(10))
        assert bloom.contains_many(np.asarray([])).shape == (0,)

    def test_saturation_grows_with_inserts(self):
        bloom = BloomFilter(expected_keys=100)
        assert bloom.saturation == 0.0
        bloom.add_many(np.arange(100))
        assert bloom.saturation > 0.0

    def test_size_bytes(self):
        bloom = BloomFilter(expected_keys=1000)
        assert bloom.size_bytes == bloom.num_bits // 8

    def test_num_bits_power_of_two_required(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_keys=0, num_bits=100)

    def test_expected_fpr_reflects_inserts(self):
        bloom = BloomFilter(expected_keys=1000)
        assert bloom.expected_fpr() == 0.0
        bloom.add_many(np.arange(1000))
        assert bloom.expected_fpr() > 0.0


class TestBloomFilterMerge:
    def test_union_contains_both_sides(self):
        left = BloomFilter(expected_keys=0, num_bits=4096)
        right = BloomFilter(expected_keys=0, num_bits=4096)
        left.add_many(np.arange(0, 100))
        right.add_many(np.arange(100, 200))
        merged = left.union(right)
        assert bool(merged.contains_many(np.arange(0, 200)).all())

    def test_union_requires_same_geometry(self):
        left = BloomFilter(expected_keys=0, num_bits=1024)
        right = BloomFilter(expected_keys=0, num_bits=2048)
        with pytest.raises(ValueError):
            left.union(right)

    def test_copy_is_independent(self):
        original = BloomFilter(expected_keys=10)
        copy = original.copy()
        copy.add(5)
        assert 5 in copy
        assert 5 not in original


class TestPartitionedBloomFilter:
    def test_partition_assignment_is_deterministic(self):
        values = np.arange(1000)
        first = partition_of(values, 8)
        second = partition_of(values, 8)
        assert np.array_equal(first, second)

    def test_partitioned_no_false_negatives(self):
        values = np.arange(0, 10_000, dtype=np.int64)
        pbf = PartitionedBloomFilter.from_values(values, num_partitions=8)
        assert bool(pbf.contains_many(values).all())

    def test_merged_filter_no_false_negatives(self):
        values = np.arange(0, 10_000, dtype=np.int64)
        pbf = PartitionedBloomFilter.from_values(values, num_partitions=8)
        merged = pbf.merge()
        assert bool(merged.contains_many(values).all())

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            PartitionedBloomFilter(0, 10)

    def test_size_bytes_sums_partitions(self):
        pbf = PartitionedBloomFilter(4, 100)
        assert pbf.size_bytes == sum(f.size_bytes for f in pbf.partitions)


class TestBloomFilterProperties:
    @given(st.lists(st.integers(min_value=-2**40, max_value=2**40),
                    min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_membership_of_inserted_values(self, values):
        bloom = BloomFilter.from_values(np.asarray(values, dtype=np.int64))
        assert bool(bloom.contains_many(np.asarray(values, dtype=np.int64)).all())

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=300),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_partitioned_equivalent_to_merged(self, values, partitions):
        array = np.asarray(values, dtype=np.int64)
        pbf = PartitionedBloomFilter.from_values(array, num_partitions=partitions)
        probe = np.arange(0, 10_000, 97, dtype=np.int64)
        partition_hits = pbf.contains_many(probe)
        merged_hits = pbf.merge().contains_many(probe)
        # The merged filter can only be more permissive (union of bits).
        assert bool((merged_hits | ~partition_hits).all())
