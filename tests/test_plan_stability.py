"""Golden-file test: TPC-H plan choices are pinned byte-for-byte.

The bitmask DPccp enumeration rewrite must not change any plan the optimizer
chooses: ``tests/golden/tpch_plans.txt`` records the join orders, join
methods, Bloom filter specs, row estimates and costs for every analysed TPC-H
query under all optimizer modes at the paper's SF100 statistics.  Regenerate
with::

    PYTHONPATH=src python scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt

and review the diff like any other behavioural change.
"""

from __future__ import annotations

import io
import pathlib
import sys

GOLDEN = pathlib.Path(__file__).parent / "golden" / "tpch_plans.txt"


def test_tpch_plans_match_golden():
    sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "scripts"))
    try:
        from dump_plan_golden import render_workload_plans
    finally:
        sys.path.pop(0)
    out = io.StringIO()
    render_workload_plans(out)
    actual = out.getvalue()
    expected = GOLDEN.read_text()
    assert actual == expected, (
        "TPC-H plans diverged from tests/golden/tpch_plans.txt — if the "
        "change is intentional, regenerate the golden file and review the "
        "diff")


# ---------------------------------------------------------------------------
# Hash-seed independence
# ---------------------------------------------------------------------------

#: Runs in a subprocess so each seed gets a genuinely different str() hash
#: layout: plans (join order, Bloom specs, costs) must not depend on the
#: iteration order of any set or dict the planner touches.  This is the
#: regression net for the bug class the ``unordered-iteration`` lint rule
#: (repro.analysis.lint) guards against statically.
_HASHSEED_PROBE = """
import sys
from repro.core import Optimizer, OptimizerMode, explain
from repro.core.heuristics import BfCboSettings
from repro.tpch import TpchWorkload

workload = TpchWorkload.statistics_only(scale_factor=100.0)
optimizer = Optimizer(workload.catalog)
for number in (5, 7, 9):
    query = workload.query(number)
    result = optimizer.optimize(query, OptimizerMode.BF_CBO,
                                BfCboSettings.paper_defaults())
    sys.stdout.write(query.name + "\\n" + explain(result.plan) + "\\n")
"""


def test_plans_are_hash_seed_independent():
    import os
    import subprocess

    outputs = {}
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=str(pathlib.Path(__file__).parents[1] / "src"))
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_PROBE],
            capture_output=True, text=True, env=env, check=True)
        outputs[seed] = proc.stdout
    assert len(set(outputs.values())) == 1, (
        "plans differ across PYTHONHASHSEED values — some set/dict "
        "iteration order is leaking into plan choice")
