"""Golden-file test: TPC-H plan choices are pinned byte-for-byte.

The bitmask DPccp enumeration rewrite must not change any plan the optimizer
chooses: ``tests/golden/tpch_plans.txt`` records the join orders, join
methods, Bloom filter specs, row estimates and costs for every analysed TPC-H
query under all optimizer modes at the paper's SF100 statistics.  Regenerate
with::

    PYTHONPATH=src python scripts/dump_plan_golden.py > tests/golden/tpch_plans.txt

and review the diff like any other behavioural change.
"""

from __future__ import annotations

import io
import pathlib
import sys

GOLDEN = pathlib.Path(__file__).parent / "golden" / "tpch_plans.txt"


def test_tpch_plans_match_golden():
    sys.path.insert(0, str(pathlib.Path(__file__).parents[1] / "scripts"))
    try:
        from dump_plan_golden import render_workload_plans
    finally:
        sys.path.pop(0)
    out = io.StringIO()
    render_workload_plans(out)
    actual = out.getvalue()
    expected = GOLDEN.read_text()
    assert actual == expected, (
        "TPC-H plans diverged from tests/golden/tpch_plans.txt — if the "
        "change is intentional, regenerate the golden file and review the "
        "diff")
