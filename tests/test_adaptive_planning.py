"""Tests for adaptive large-join-graph planning (docs/enumeration.md).

Covers the three coordinated pieces of the adaptive planner:

* the **budgeted DPccp walk** — `enumeration_budget` trips mid-walk,
  `fallback_relation_threshold` skips the walk entirely, and both are
  recorded in :class:`EnumerationStatistics`;
* the **greedy fallback** (GOO, with IKKBZ linearization on acyclic graphs) —
  fallback plans cover every relation, keep cross-product stitching correct
  on disconnected 3+-component graphs, and still feed BF-CBO's two phases;
* **parallel DP sharding** — thread and process pools must produce memo
  contents, plans and statistics identical to the serial loop.
"""

from __future__ import annotations

import pytest

from repro.api import Database, Session
from repro.core import Optimizer, OptimizerMode
from repro.core.cardinality import CardinalityEstimator
from repro.core.cost import CostModel
from repro.core.enumerator import JoinEnumerator
from repro.core.explain import explain
from repro.core.expressions import ColumnRef
from repro.core.greedy import greedy_unordered_pairs
from repro.core.heuristics import BfCboSettings
from repro.core.joingraph import JoinGraph
from repro.core.query import BaseRelation, JoinClause, QueryBlock
from repro.experiments.enumeration_latency import (
    build_topology_catalog,
    build_topology_query,
)
from repro.storage import Catalog, INT64, make_schema, synthetic_statistics


def make_query(num_relations, edges, name="g"):
    relations = [BaseRelation("t%02d" % i, "t%02d" % i)
                 for i in range(num_relations)]
    clauses = [JoinClause(ColumnRef("t%02d" % i, "c%d" % j),
                          ColumnRef("t%02d" % j, "c%d" % i))
               for i, j in edges]
    return QueryBlock(relations=relations, join_clauses=clauses, name=name)


def make_catalog(query, rows=10_000, uniform=False):
    catalog = Catalog()
    for index, relation in enumerate(query.relations):
        table_rows = rows if uniform else max(100, rows // (index + 1))
        columns = [("pk", INT64)]
        ndv = {"pk": table_rows}
        for clause in query.join_clauses:
            for side in (clause.left, clause.right):
                if side.relation == relation.alias:
                    columns.append((side.column, INT64))
                    ndv[side.column] = max(1, table_rows // 2)
        schema = make_schema(relation.table_name, columns, primary_key=["pk"])
        catalog.register_schema(schema, synthetic_statistics(
            relation.table_name, table_rows, ndv))
    return catalog


def make_enumerator(catalog, query, settings):
    estimator = CardinalityEstimator(catalog, query)
    return JoinEnumerator(catalog, query, estimator, CostModel(), settings)


EXACT = BfCboSettings.disabled().with_overrides(
    enumeration_budget=0, fallback_relation_threshold=0)


class TestBudgetedWalk:
    def test_budget_exhaustion_engages_greedy_fallback(self):
        query = build_topology_query(6, "clique")
        catalog = build_topology_catalog(6, "clique")
        settings = BfCboSettings.disabled().with_overrides(
            enumeration_budget=20)
        enumerator = make_enumerator(catalog, query, settings)
        table = enumerator.optimize_table()
        stats = enumerator.stats
        assert stats.budget_exhausted
        assert stats.fallback_engaged
        assert stats.fallback_reason == "budget"
        # GOO on one connected 6-relation component: 5 merge steps.
        assert stats.greedy_merge_steps == 5
        best = table.get(enumerator.join_graph.all_mask).best()
        assert best is not None
        assert best.relations == frozenset(query.aliases)

    def test_relation_threshold_skips_walk_entirely(self):
        query = build_topology_query(8, "chain")
        catalog = build_topology_catalog(8, "chain")
        settings = BfCboSettings.disabled().with_overrides(
            fallback_relation_threshold=4)
        enumerator = make_enumerator(catalog, query, settings)
        table = enumerator.optimize_table()
        assert enumerator.stats.fallback_engaged
        assert enumerator.stats.fallback_reason == "relations"
        # The walk never started, so the budget cannot have tripped.
        assert not enumerator.stats.budget_exhausted
        assert table.get(enumerator.join_graph.all_mask).best() is not None

    def test_defaults_leave_small_queries_exact(self):
        query = build_topology_query(6, "clique")
        catalog = build_topology_catalog(6, "clique")
        enumerator = make_enumerator(catalog, query,
                                     BfCboSettings.disabled())
        enumerator.optimize_table()
        assert not enumerator.stats.fallback_engaged
        assert not enumerator.stats.budget_exhausted
        assert enumerator.stats.fallback_reason == ""

    def test_unlimited_budget_never_trips(self):
        query = build_topology_query(6, "clique")
        catalog = build_topology_catalog(6, "clique")
        enumerator = make_enumerator(catalog, query, EXACT)
        enumerator.optimize_table()
        assert not enumerator.stats.fallback_engaged

    def test_fallback_sequences_stay_out_of_the_sequence_cache(self):
        query = build_topology_query(6, "star")
        catalog = build_topology_catalog(6, "star")
        from repro.core.enumerator import EnumerationSequenceCache

        cache = EnumerationSequenceCache(8)
        estimator = CardinalityEstimator(catalog, query)
        settings = BfCboSettings.disabled().with_overrides(
            fallback_relation_threshold=3)
        enumerator = JoinEnumerator(catalog, query, estimator, CostModel(),
                                    settings, sequence_cache=cache)
        enumerator.optimize_table()
        assert enumerator.stats.fallback_engaged
        # Greedy orders depend on statistics, not shape: never shape-cached.
        assert len(cache) == 0

    def test_cached_sequence_respects_a_tighter_budget(self):
        # Regression: a sequence cached by an unlimited-budget session must
        # not hand a tighter-budget session an over-budget DP.
        query = build_topology_query(6, "clique")
        catalog = build_topology_catalog(6, "clique")
        from repro.core.enumerator import EnumerationSequenceCache

        cache = EnumerationSequenceCache(8)
        estimator = CardinalityEstimator(catalog, query)
        roomy = JoinEnumerator(catalog, query, estimator, CostModel(),
                               EXACT, sequence_cache=cache)
        roomy.optimize_table()
        assert len(cache) == 1 and not roomy.stats.fallback_engaged
        tight = JoinEnumerator(
            catalog, query, estimator, CostModel(),
            BfCboSettings.disabled().with_overrides(enumeration_budget=20),
            sequence_cache=cache)
        tight.optimize_table()
        assert tight.stats.budget_exhausted
        assert tight.stats.fallback_reason == "budget"
        # And a fellow roomy session still gets the cached exact sequence.
        roomy2 = JoinEnumerator(catalog, query, estimator, CostModel(),
                                EXACT, sequence_cache=cache)
        roomy2.optimize_table()
        assert not roomy2.stats.fallback_engaged
        assert cache.hits >= 2

    def test_aborted_walk_caches_its_lower_bound(self):
        # A budget-aborted walk stores "this shape emits > N pairs" so the
        # next same-shape query under the same budget skips straight to the
        # fallback; a roomier session later upgrades the entry to the full
        # sequence.
        query = build_topology_query(6, "clique")
        catalog = build_topology_catalog(6, "clique")
        from repro.core.enumerator import EnumerationSequenceCache

        cache = EnumerationSequenceCache(8)
        estimator = CardinalityEstimator(catalog, query)
        tight_settings = BfCboSettings.disabled().with_overrides(
            enumeration_budget=20)
        first = JoinEnumerator(catalog, query, estimator, CostModel(),
                               tight_settings, sequence_cache=cache)
        first.optimize_table()
        assert first.stats.budget_exhausted
        signature = first.join_graph.edge_signature()
        sequence, emitted = cache.lookup(signature)
        assert sequence is None and emitted == 21
        second = JoinEnumerator(catalog, query, estimator, CostModel(),
                                tight_settings, sequence_cache=cache)
        second.optimize_table()
        assert second.stats.budget_exhausted
        assert second.stats.fallback_reason == "budget"
        roomy = JoinEnumerator(catalog, query, estimator, CostModel(),
                               EXACT, sequence_cache=cache)
        roomy.optimize_table()
        assert not roomy.stats.fallback_engaged
        sequence, _ = cache.lookup(signature)
        assert sequence is not None


class TestGreedyOrdering:
    def test_goo_covers_all_relations_once(self):
        query = build_topology_query(7, "clique")
        catalog = build_topology_catalog(7, "clique")
        graph = JoinGraph(query)
        estimator = CardinalityEstimator(catalog, query)
        pairs = greedy_unordered_pairs(graph, estimator)
        # n-1 merges, each union appearing exactly once.
        assert sum(len(splits) for splits in pairs.values()) == 6
        assert max(pairs) == graph.all_mask
        for union, splits in pairs.items():
            for left, right in splits:
                assert left & right == 0
                assert left | right == union

    def test_ikkbz_linearizes_acyclic_graphs_left_deep(self):
        query = build_topology_query(8, "chain")
        catalog = build_topology_catalog(8, "chain")
        graph = JoinGraph(query)
        estimator = CardinalityEstimator(catalog, query)
        pairs = greedy_unordered_pairs(graph, estimator)
        # A left-deep linearization: every union has a single-bit side.
        for splits in pairs.values():
            for left, right in splits:
                assert (bin(left).count("1") == 1
                        or bin(right).count("1") == 1)
        assert max(pairs) == graph.all_mask

    def test_ikkbz_keeps_prefixes_connected_on_rank_ties(self):
        # Regression: with uniform statistics every leaf segment ties on
        # rank, and a flat re-sort could place a node before its precedence
        # ancestor (chain t0-t1-t3-t2: t2 before t3), making the left-deep
        # prefix {t0,t1} x t2 a cross product.  The stable chain merge must
        # keep every within-component prefix connected, for every alias
        # permutation of the chain.
        import itertools

        for ordering in itertools.permutations(range(4)):
            edges = [(ordering[0], ordering[1]), (ordering[1], ordering[2]),
                     (ordering[2], ordering[3])]
            edges = [(min(a, b), max(a, b)) for a, b in edges]
            query = make_query(4, edges, name="perm-chain")
            catalog = make_catalog(query, rows=10_000, uniform=True)
            graph = JoinGraph(query)
            estimator = CardinalityEstimator(catalog, query)
            pairs = greedy_unordered_pairs(graph, estimator)
            for union, splits in pairs.items():
                for left, right in splits:
                    assert graph.neighbor_mask(left) & right, \
                        "disconnected merge %s|%s for chain %r" % (
                            bin(left), bin(right), edges)

    def test_ikkbz_handles_very_deep_chains_iteratively(self):
        # Regression: the precedence-tree traversal must not recurse — a
        # chain deeper than the interpreter's recursion limit is exactly the
        # kind of graph the fallback exists for.
        query = build_topology_query(1200, "chain")
        catalog = build_topology_catalog(1200, "chain")
        graph = JoinGraph(query)
        estimator = CardinalityEstimator(catalog, query)
        pairs = greedy_unordered_pairs(graph, estimator)
        assert sum(len(splits) for splits in pairs.values()) == 1199
        assert max(pairs) == graph.all_mask

    def test_fallback_stitches_disconnected_components(self):
        # Three islands: {0,1}, {2,3}, {4,5} — no inter-component clauses.
        query = make_query(6, [(0, 1), (2, 3), (4, 5)],
                           name="three-components")
        catalog = make_catalog(query)
        settings = BfCboSettings.disabled().with_overrides(
            fallback_relation_threshold=2)
        enumerator = make_enumerator(catalog, query, settings)
        table = enumerator.optimize_table()
        stats = enumerator.stats
        assert stats.fallback_engaged
        # Two stitch steps, both orientations each — same accounting as the
        # exact path's cross-product stitching.
        assert stats.cross_products_stitched == 4
        best = table.get(enumerator.join_graph.all_mask).best()
        assert best is not None
        assert best.relations == frozenset(query.aliases)

    def test_goo_respects_outer_join_orientation_legality(self):
        # Regression: a cyclic graph t0-t1 INNER, t1 LEFT t2, t2 LEFT t0.
        # Merging {t0,t1} with {t2} is illegal in both orientations (the two
        # LEFT clauses preserve opposite sides), but (t1 LEFT t2) first is
        # fine — the exact DP finds it, and greedy must too.
        from repro.core.query import JoinType

        relations = [BaseRelation("t%d" % i, "t%d" % i) for i in range(3)]
        clauses = [
            JoinClause(ColumnRef("t0", "c1"), ColumnRef("t1", "c0")),
            JoinClause(ColumnRef("t1", "c2"), ColumnRef("t2", "c1"),
                       join_type=JoinType.LEFT),
            JoinClause(ColumnRef("t2", "c0"), ColumnRef("t0", "c2"),
                       join_type=JoinType.LEFT),
        ]
        query = QueryBlock(relations=relations, join_clauses=clauses,
                           name="outer-cycle")
        catalog = make_catalog(query)
        exact = make_enumerator(catalog, query, EXACT)
        assert exact.optimize_table().get(
            exact.join_graph.all_mask).best() is not None
        greedy = make_enumerator(
            catalog, query, BfCboSettings.disabled().with_overrides(
                fallback_relation_threshold=2))
        table = greedy.optimize_table()
        assert greedy.stats.fallback_engaged
        assert table.get(greedy.join_graph.all_mask).best() is not None

    def test_fallback_matches_exact_plan_on_tiny_chain(self):
        # On a 3-relation chain the greedy tree contains the optimal
        # left-deep order, so fallback and exact DP agree on the plan.
        query = make_query(3, [(0, 1), (1, 2)])
        catalog = make_catalog(query)
        exact = make_enumerator(catalog, query, EXACT)
        exact_best = exact.optimize_table().get(
            exact.join_graph.all_mask).best()
        greedy = make_enumerator(
            catalog, query, BfCboSettings.disabled().with_overrides(
                fallback_relation_threshold=2))
        greedy_best = greedy.optimize_table().get(
            greedy.join_graph.all_mask).best()
        assert greedy.stats.fallback_engaged
        assert explain(greedy_best) == explain(exact_best)


class TestFallbackKeepsBfCboWorking:
    def test_both_phases_run_and_bloom_scans_survive(
            self, running_example_catalog, running_example_query):
        settings = BfCboSettings.paper_defaults().with_overrides(
            fallback_relation_threshold=2)
        optimizer = Optimizer(running_example_catalog)
        result = optimizer.optimize(running_example_query,
                                    OptimizerMode.BF_CBO, settings)
        stats = result.enumeration_stats
        assert stats.fallback_engaged
        report = result.bfcbo_report
        assert report is not None and report.first_phase is not None
        # The structural first phase observed the greedy pair sequence and
        # recorded δ's; the costed second phase kept Bloom scan sub-plans.
        assert report.first_phase.join_pairs_observed > 0
        assert report.first_phase.total_deltas > 0
        assert report.bloom_subplans_retained > 0
        assert result.num_bloom_filters >= 1

    def test_fallback_plan_competitive_on_running_example(
            self, running_example_catalog, running_example_query):
        # The running example's best join order is a left-deep chain the
        # greedy linearization also finds.  The recorded δ's may differ (the
        # greedy tree exposes fewer inner sets to the first phase), so the
        # assertion is on outcome quality: same Bloom filter count and an
        # estimated cost within noise of the exact DP's.
        optimizer = Optimizer(running_example_catalog)
        exact = optimizer.optimize(running_example_query,
                                   OptimizerMode.BF_CBO)
        fallback = optimizer.optimize(
            running_example_query, OptimizerMode.BF_CBO,
            BfCboSettings.paper_defaults().with_overrides(
                fallback_relation_threshold=2))
        assert fallback.enumeration_stats.fallback_engaged
        assert fallback.num_bloom_filters == exact.num_bloom_filters
        assert fallback.estimated_cost <= exact.estimated_cost * 1.05


class TestParallelSharding:
    def _stats_tuple(self, stats):
        return (stats.join_pairs_considered, stats.subplan_combinations,
                stats.plans_retained, stats.plans_rejected_bloom_constraint,
                stats.heuristic7_pruned, stats.cross_products_stitched)

    @pytest.mark.parametrize("topology,size", [("chain", 8), ("star", 7),
                                               ("clique", 5)])
    def test_thread_sharding_is_identical_to_serial(self, topology, size):
        query = build_topology_query(size, topology)
        catalog = build_topology_catalog(size, topology)
        serial = make_enumerator(catalog, query, EXACT)
        serial_table = serial.optimize_table()
        sharded = make_enumerator(catalog, query, EXACT.with_overrides(
            parallel_workers=4))
        sharded_table = sharded.optimize_table()
        assert sharded.stats.parallel_shards > 0
        assert self._stats_tuple(sharded.stats) == \
            self._stats_tuple(serial.stats)
        assert list(sharded_table.lists) == list(serial_table.lists)
        for mask, serial_list in serial_table.items():
            sharded_list = sharded_table.get(mask)
            assert [explain(p) for p in sharded_list] == \
                [explain(p) for p in serial_list]

    def test_process_sharding_is_identical_to_serial(self):
        query = build_topology_query(5, "chain")
        catalog = build_topology_catalog(5, "chain")
        serial = make_enumerator(catalog, query, EXACT)
        serial_best = serial.optimize_table().get(
            serial.join_graph.all_mask).best()
        sharded = make_enumerator(catalog, query, EXACT.with_overrides(
            parallel_workers=2, parallel_executor="process"))
        sharded_best = sharded.optimize_table().get(
            sharded.join_graph.all_mask).best()
        assert sharded.stats.parallel_shards > 0
        assert explain(sharded_best) == explain(serial_best)

    def test_sharding_composes_with_bfcbo(self, running_example_catalog,
                                          running_example_query):
        optimizer = Optimizer(running_example_catalog)
        serial = optimizer.optimize(running_example_query,
                                    OptimizerMode.BF_CBO)
        sharded = optimizer.optimize(
            running_example_query, OptimizerMode.BF_CBO,
            BfCboSettings.paper_defaults().with_overrides(
                parallel_workers=3))
        assert explain(sharded.plan) == explain(serial.plan)
        assert sharded.num_bloom_filters == serial.num_bloom_filters


class TestApiOverrides:
    def _catalog(self):
        query = make_query(3, [(0, 1), (1, 2)])
        return make_catalog(query), query

    def test_database_overrides_reach_resolved_settings(self):
        catalog, _ = self._catalog()
        db = Database(catalog, enumeration_budget=7, parallel_workers=2,
                      fallback_relation_threshold=5,
                      parallel_executor="thread")
        settings = db.resolve_settings(OptimizerMode.NO_BF, None)
        assert settings.enumeration_budget == 7
        assert settings.parallel_workers == 2
        assert settings.fallback_relation_threshold == 5

    def test_session_overrides_win_over_database(self):
        catalog, query = self._catalog()
        db = Database(catalog, fallback_relation_threshold=5)
        session = db.connect(fallback_relation_threshold=2,
                             mode=OptimizerMode.NO_BF)
        result = session.plan(query)
        assert result.settings.fallback_relation_threshold == 2
        assert result.optimization.enumeration_stats.fallback_engaged

    def test_override_is_part_of_the_plan_cache_key(self):
        catalog, query = self._catalog()
        db = Database(catalog)
        exact_session = db.connect(mode=OptimizerMode.NO_BF)
        greedy_session = db.connect(mode=OptimizerMode.NO_BF,
                                    fallback_relation_threshold=2)
        exact_session.plan(query)
        greedy = greedy_session.plan(query)
        # Different resolved settings: the second plan must be a cache miss.
        assert not greedy.from_plan_cache
        assert db.cache_stats().plan_misses == 2

    def test_invalid_parallel_executor_is_rejected(self):
        with pytest.raises(ValueError):
            BfCboSettings.disabled().with_overrides(
                parallel_executor="processes")

    def test_invalid_parallel_executor_fails_at_construction(self):
        catalog, _ = self._catalog()
        with pytest.raises(ValueError):
            Database(catalog, parallel_executor="porcess")
        with pytest.raises(ValueError):
            Database(catalog).connect(parallel_executor="porcess")

    def test_explicit_settings_beat_constructor_knobs(self):
        # Specificity: a per-call settings object is taken verbatim; the
        # database's constructor knobs must not silently mutate it.
        catalog, query = self._catalog()
        db = Database(catalog, enumeration_budget=1)
        exact = db.connect(mode=OptimizerMode.NO_BF).plan(
            query, settings=BfCboSettings.disabled().with_overrides(
                enumeration_budget=0))
        assert exact.settings.enumeration_budget == 0
        assert not exact.optimization.enumeration_stats.fallback_engaged
        # Defaulted settings do receive the knob.
        budgeted = db.connect(mode=OptimizerMode.NO_BF).plan(query)
        assert budgeted.settings.enumeration_budget == 1
        assert budgeted.optimization.enumeration_stats.fallback_engaged

    def test_parallel_knobs_do_not_fragment_the_plan_cache(self):
        # The sharded DP is bit-identical to serial, so sessions differing
        # only in parallel knobs must share one cached plan.
        catalog, query = self._catalog()
        db = Database(catalog)
        db.connect(mode=OptimizerMode.NO_BF).plan(query)
        sharded = db.connect(mode=OptimizerMode.NO_BF,
                             parallel_workers=4).plan(query)
        assert sharded.from_plan_cache
