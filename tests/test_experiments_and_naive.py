"""Tests for the experiment harnesses and the naïve baseline."""

from __future__ import annotations

import pytest

from repro.core import BfCboSettings, CostModel, OptimizerMode
from repro.core.cardinality import CardinalityEstimator
from repro.core.naive import NaiveBloomEnumerator
from repro.experiments import (
    QueryRunner,
    format_table,
    percent_reduction,
    run_cardinality_mae,
    run_naive_blowup,
    run_planner_latency,
    run_q12_case_study,
    run_running_example,
    run_tpch_suite,
    scaled_settings,
)
from repro.experiments.naive_blowup import build_chain_catalog, build_chain_query


class TestReportHelpers:
    def test_percent_reduction(self):
        assert percent_reduction(100.0, 50.0) == pytest.approx(50.0)
        assert percent_reduction(0.0, 10.0) == 0.0

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]], title="T")
        assert "T" in text and "bb" in text and "3" in text

    def test_scaled_settings(self):
        settings = scaled_settings(0.01)
        default = BfCboSettings.paper_defaults()
        assert settings.min_apply_rows < default.min_apply_rows
        assert settings.max_build_ndv < default.max_build_ndv
        full_scale = scaled_settings(100.0)
        assert full_scale.min_apply_rows == default.min_apply_rows

    def test_query_runner_plan_only(self, tpch_workload):
        runner = QueryRunner(tpch_workload.catalog,
                             scale_factor=tpch_workload.scale_factor)
        run = runner.plan(tpch_workload.query(12), OptimizerMode.BF_CBO)
        assert run.planning_time_ms > 0
        assert run.simulated_latency is None


class TestRunningExampleExperiment:
    def test_walkthrough(self):
        result = run_running_example()
        assert set(result.candidates) == {"t1", "t3"}
        assert result.bf_cbo.num_bloom_filters >= 1
        assert result.bf_cbo.estimated_cost <= result.bf_post.estimated_cost * 1.001
        assert "Bloom" in result.to_text() or "BF" in result.to_text()


class TestTpchSuiteExperiment:
    @pytest.fixture(scope="class")
    def suite(self, tpch_workload):
        return run_tpch_suite(workload=tpch_workload,
                              query_numbers=[3, 12, 17, 19])

    def test_rows_present(self, suite):
        assert [row.query for row in suite.rows] == ["Q3", "Q12", "Q17", "Q19"]

    def test_bloom_filters_reduce_latency_overall(self, suite):
        assert suite.overall_bf_post_reduction > 0
        assert suite.total_bf_cbo <= suite.total_bf_post * 1.02

    def test_figure5_series_shape(self, suite):
        series = suite.figure5_series()
        assert len(series["bf_post"]) == len(series["queries"]) == 4
        assert all(v > 0 for v in series["bf_cbo"])

    def test_text_rendering(self, suite):
        text = suite.to_text()
        assert "Q12" in text and "total" in text


class TestCardinalityMaeExperiment:
    def test_bf_cbo_improves_estimates(self, tpch_workload):
        # Queries where BF-CBO revises large Bloom-filtered scans; across the
        # full workload the improvement also holds in aggregate (EXPERIMENTS.md).
        result = run_cardinality_mae(workload=tpch_workload,
                                     query_numbers=[5, 8, 21])
        assert result.overall_bf_cbo_mae < result.overall_bf_post_mae
        assert result.improvement_percent > 0
        assert len(result.rows) == 3
        assert "MAE" in result.to_text()


class TestCaseStudies:
    def test_q12_case_study(self, tpch_workload):
        result = run_q12_case_study(workload=tpch_workload)
        assert result.bf_cbo_filters >= result.bf_post_filters
        assert result.bf_cbo.simulated_latency <= \
            result.bf_post.simulated_latency * 1.02
        assert "Case study" in result.to_text()


class TestPlannerLatencyExperiment:
    def test_planner_latency_overhead(self):
        result = run_planner_latency(scale_factor=100.0, query_numbers=[7, 12])
        assert result.total_bf_cbo_ms > 0
        assert result.total_bf_post_ms > 0
        # BF-CBO explores more sub-plans, so it should not plan faster overall.
        assert result.total_bf_cbo_ms >= result.total_bf_post_ms * 0.8
        assert "Planner latency" in result.to_text()


class TestNaiveBaseline:
    def test_naive_maintains_more_subplans_than_two_phase(self):
        catalog = build_chain_catalog(4)
        query = build_chain_query(4)
        estimator = CardinalityEstimator(catalog, query)
        settings = BfCboSettings.paper_defaults().with_overrides(min_apply_rows=1.0)
        naive = NaiveBloomEnumerator(catalog, query, estimator, CostModel(),
                                     settings, max_seconds=10.0)
        result = naive.run()
        assert result.subplans_maintained > 8
        assert result.combinations_evaluated > 0

    def test_naive_growth_with_tables(self):
        blowup = run_naive_blowup(table_counts=[3, 4, 5],
                                  naive_budget_seconds=10.0)
        subplans = [p.naive_subplans for p in blowup.points]
        assert subplans[0] < subplans[1] < subplans[2]
        assert "two-phase" in blowup.to_text()

    def test_naive_budget_abort(self):
        catalog = build_chain_catalog(6)
        query = build_chain_query(6)
        estimator = CardinalityEstimator(catalog, query)
        settings = BfCboSettings.paper_defaults().with_overrides(min_apply_rows=1.0)
        naive = NaiveBloomEnumerator(catalog, query, estimator, CostModel(),
                                     settings, max_total_subplans=500,
                                     max_seconds=5.0)
        result = naive.run()
        assert result.budget_exceeded or result.subplans_maintained <= 2_000
