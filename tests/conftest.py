"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# Every plan any test produces through the Database/Session API runs the
# plan-contract verifier (repro.analysis.contracts).  Production keeps the
# knob off; the suite is where contract violations should surface first.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

from repro.core import (
    BaseRelation,
    ColumnRef,
    Comparison,
    ComparisonOp,
    JoinClause,
    Literal,
    QueryBlock,
)
from repro.storage import Catalog, INT64, make_schema, synthetic_statistics
from repro.storage.schema import ForeignKey
from repro.tpch import TpchWorkload

#: Scale factor used by data-backed tests; small enough to keep the suite fast.
TEST_SCALE_FACTOR = 0.005


@pytest.fixture(scope="session")
def tpch_workload() -> TpchWorkload:
    """A small, materialised TPC-H workload shared by the whole session."""
    return TpchWorkload.generate(scale_factor=TEST_SCALE_FACTOR)


@pytest.fixture(scope="session")
def tpch_catalog(tpch_workload) -> Catalog:
    """The catalog behind the shared TPC-H workload."""
    return tpch_workload.catalog


@pytest.fixture()
def running_example_catalog() -> Catalog:
    """Statistics-only catalog for the Section 3 running example."""
    catalog = Catalog()
    t1 = make_schema("t1", [("c1", INT64), ("c2", INT64)], primary_key=["c1"])
    t2 = make_schema("t2", [("c1", INT64), ("c2", INT64), ("c3", INT64)],
                     primary_key=["c1"],
                     foreign_keys=[ForeignKey("c2", "t3", "c1")])
    t3 = make_schema("t3", [("c1", INT64)], primary_key=["c1"])
    catalog.register_schema(t1, synthetic_statistics(
        "t1", 600_000_000, {"c1": 600_000_000, "c2": 22_000_000}))
    catalog.register_schema(t2, synthetic_statistics(
        "t2", 8_070_000, {"c1": 8_070_000, "c2": 770_000, "c3": 1_000},
        {"c3": (0.0, 999.0)}))
    catalog.register_schema(t3, synthetic_statistics(
        "t3", 1_000_000, {"c1": 1_000_000}))
    return catalog


@pytest.fixture()
def running_example_query() -> QueryBlock:
    """The three-table running example query of Section 3."""
    return QueryBlock(
        relations=[BaseRelation("t1", "t1"), BaseRelation("t2", "t2"),
                   BaseRelation("t3", "t3")],
        join_clauses=[
            JoinClause(ColumnRef("t1", "c2"), ColumnRef("t2", "c1")),
            JoinClause(ColumnRef("t2", "c2"), ColumnRef("t3", "c1")),
        ],
        local_predicates={"t2": [Comparison(ComparisonOp.LT,
                                            ColumnRef("t2", "c3"),
                                            Literal(100))]},
        name="running-example")
