"""Unit tests for the columnar storage substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    Catalog,
    CatalogError,
    INT64,
    FLOAT64,
    STRING,
    PartitionedTable,
    RangePartitionSpec,
    Table,
    collect_statistics,
    date_to_int,
    make_schema,
    parse_date,
    synthetic_statistics,
)
from repro.storage.schema import ForeignKey


def make_test_table(rows=100):
    schema = make_schema("items", [("id", INT64), ("price", FLOAT64),
                                   ("category", STRING)],
                         primary_key=["id"])
    rng = np.random.default_rng(0)
    return Table(schema, {
        "id": np.arange(rows, dtype=np.int64),
        "price": rng.uniform(1.0, 100.0, size=rows),
        "category": np.asarray(["cat%d" % (i % 5) for i in range(rows)],
                               dtype=object),
    })


class TestTypes:
    def test_date_round_trip(self):
        assert parse_date("1995-03-15") == date_to_int(1995, 3, 15)

    def test_date_ordering(self):
        assert parse_date("1994-01-01") < parse_date("1995-01-01")

    def test_parse_date_strips_quotes(self):
        assert parse_date("'1995-03-15'") == date_to_int(1995, 3, 15)

    def test_parse_date_invalid(self):
        with pytest.raises(ValueError):
            parse_date("not-a-date")

    def test_numpy_dtypes(self):
        assert INT64.numpy_dtype == np.dtype(np.int64)
        assert STRING.numpy_dtype == np.dtype(object)
        assert INT64.is_numeric and FLOAT64.is_numeric
        assert not STRING.is_numeric


class TestTable:
    def test_basic_shape(self):
        table = make_test_table(50)
        assert table.num_rows == 50
        assert table.column_names == ["id", "price", "category"]

    def test_column_access(self):
        table = make_test_table(10)
        assert table.column("id").shape == (10,)
        with pytest.raises(KeyError):
            table.column("missing")

    def test_missing_column_data_raises(self):
        schema = make_schema("t", [("a", INT64), ("b", INT64)])
        with pytest.raises(ValueError):
            Table(schema, {"a": np.arange(3)})

    def test_unknown_column_data_raises(self):
        schema = make_schema("t", [("a", INT64)])
        with pytest.raises(ValueError):
            Table(schema, {"a": np.arange(3), "z": np.arange(3)})

    def test_mismatched_lengths_raise(self):
        schema = make_schema("t", [("a", INT64), ("b", INT64)])
        with pytest.raises(ValueError):
            Table(schema, {"a": np.arange(3), "b": np.arange(4)})

    def test_select_rows_and_head(self):
        table = make_test_table(20)
        subset = table.select_rows(table.column("id") < 5)
        assert subset.num_rows == 5
        assert table.head(3).num_rows == 3

    def test_from_rows_round_trip(self):
        schema = make_schema("t", [("a", INT64), ("b", INT64)])
        table = Table.from_rows(schema, [(1, 2), (3, 4)])
        assert list(table.rows()) == [(1, 2), (3, 4)]


class TestStatistics:
    def test_row_count_and_ndv(self):
        table = make_test_table(200)
        stats = collect_statistics(table)
        assert stats.num_rows == 200
        assert stats.column("id").ndv == 200
        assert stats.column("category").ndv == 5

    def test_equality_selectivity_small_domain(self):
        stats = collect_statistics(make_test_table(100))
        sel = stats.column("category").equality_selectivity("cat0")
        assert sel == pytest.approx(0.2, abs=0.05)

    def test_range_selectivity_with_histogram(self):
        stats = collect_statistics(make_test_table(1000))
        price = stats.column("price")
        half = price.range_selectivity(low=None, high=50.0)
        assert 0.3 < half < 0.7

    def test_range_selectivity_out_of_bounds(self):
        stats = collect_statistics(make_test_table(100))
        price = stats.column("price")
        assert price.range_selectivity(low=1000.0, high=None) == pytest.approx(0.0, abs=1e-6)
        assert price.range_selectivity(low=None, high=1000.0) == pytest.approx(1.0)

    def test_ndv_after_filter_bounds(self):
        stats = collect_statistics(make_test_table(500))
        column = stats.column("category")
        assert column.ndv_after_filter(1.0) == pytest.approx(column.ndv)
        assert column.ndv_after_filter(0.0) == 0.0
        assert 0 < column.ndv_after_filter(0.3) <= column.ndv

    def test_missing_column_defaults(self):
        stats = synthetic_statistics("t", 1000, {"a": 10})
        fallback = stats.column("unknown")
        assert fallback.num_rows == 1000
        assert fallback.ndv == 1000

    def test_synthetic_statistics_ranges(self):
        stats = synthetic_statistics("t", 100, {"a": 50}, {"a": (0, 99)})
        assert stats.column("a").min_value == 0.0
        assert stats.column("a").max_value == 99.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_ndv_after_filter_monotone(self, selectivity):
        stats = collect_statistics(make_test_table(300))
        column = stats.column("id")
        assert column.ndv_after_filter(selectivity) <= column.ndv


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register_table(make_test_table())
        assert catalog.has_table("items")
        assert catalog.has_table("ITEMS")
        assert catalog.table("items").num_rows == 100
        assert catalog.statistics("items").num_rows == 100

    def test_statistics_only_registration(self):
        catalog = Catalog()
        schema = make_schema("ghost", [("a", INT64)])
        catalog.register_schema(schema, synthetic_statistics("ghost", 42, {"a": 42}))
        assert catalog.has_table("ghost")
        assert not catalog.has_data("ghost")
        assert catalog.statistics("ghost").num_rows == 42
        with pytest.raises(CatalogError):
            catalog.table("ghost")

    def test_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.schema("missing")

    def test_foreign_key_lookup(self):
        catalog = Catalog()
        parent = make_schema("parent", [("pk", INT64)], primary_key=["pk"])
        child = make_schema("child", [("fk", INT64)],
                            foreign_keys=[ForeignKey("fk", "parent", "pk")])
        catalog.register_schema(parent, synthetic_statistics("parent", 10, {"pk": 10}))
        catalog.register_schema(child, synthetic_statistics("child", 100, {"fk": 10}))
        assert catalog.is_primary_key("parent", "pk")
        assert not catalog.is_primary_key("child", "fk")
        assert catalog.is_foreign_key_reference("child", "fk", "parent", "pk")
        assert not catalog.is_foreign_key_reference("parent", "pk", "child", "fk")


class TestPartitioning:
    def test_partition_pruning(self):
        table = make_test_table(100)
        spec = RangePartitionSpec(column="id", boundaries=(25.0, 50.0, 75.0))
        partitioned = PartitionedTable(table, spec)
        assert partitioned.num_partitions == 4
        scanned, touched = partitioned.scan(low=0, high=10)
        assert touched == 1
        assert scanned.num_rows == sum(1 for v in table.column("id") if v <= 25)

    def test_full_scan_touches_all_partitions(self):
        table = make_test_table(100)
        spec = RangePartitionSpec(column="id", boundaries=(50.0,))
        partitioned = PartitionedTable(table, spec)
        scanned, touched = partitioned.scan()
        assert touched == 2
        assert scanned.num_rows == 100

    def test_partitions_cover_all_rows(self):
        table = make_test_table(97)
        spec = RangePartitionSpec(column="id", boundaries=(20.0, 40.0, 60.0, 80.0))
        partitioned = PartitionedTable(table, spec)
        total = sum(partitioned.partition(i).num_rows
                    for i in range(partitioned.num_partitions))
        assert total == 97

    def test_invalid_partition_column(self):
        table = make_test_table(10)
        with pytest.raises(ValueError):
            PartitionedTable(table, RangePartitionSpec(column="zzz", boundaries=(1.0,)))

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            make_schema("bad", [("a", INT64), ("a", INT64)])
        with pytest.raises(ValueError):
            make_schema("bad", [("a", INT64)], primary_key=["zzz"])
