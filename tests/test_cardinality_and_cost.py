"""Tests for the cardinality estimator and the cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BaseRelation,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Cost,
    CostModel,
    CostParameters,
    InList,
    JoinClause,
    Literal,
    QueryBlock,
)
from repro.core.cardinality import CardinalityEstimator
from repro.storage import Catalog, INT64, STRING, make_schema, synthetic_statistics
from repro.storage.schema import ForeignKey


@pytest.fixture()
def star_catalog():
    """A small star schema: fact (1M rows) with two dimensions."""
    catalog = Catalog()
    catalog.register_schema(
        make_schema("fact", [("fk_a", INT64), ("fk_b", INT64), ("v", INT64)],
                    foreign_keys=[ForeignKey("fk_a", "dim_a", "pk"),
                                  ForeignKey("fk_b", "dim_b", "pk")]),
        synthetic_statistics("fact", 1_000_000,
                             {"fk_a": 10_000, "fk_b": 1_000, "v": 100}))
    catalog.register_schema(
        make_schema("dim_a", [("pk", INT64), ("attr", INT64)], primary_key=["pk"]),
        synthetic_statistics("dim_a", 10_000, {"pk": 10_000, "attr": 100},
                             {"attr": (0.0, 99.0)}))
    catalog.register_schema(
        make_schema("dim_b", [("pk", INT64), ("name", STRING)], primary_key=["pk"]),
        synthetic_statistics("dim_b", 1_000, {"pk": 1_000, "name": 50}))
    return catalog


@pytest.fixture()
def star_query():
    return QueryBlock(
        relations=[BaseRelation("f", "fact"), BaseRelation("a", "dim_a"),
                   BaseRelation("b", "dim_b")],
        join_clauses=[
            JoinClause(ColumnRef("f", "fk_a"), ColumnRef("a", "pk")),
            JoinClause(ColumnRef("f", "fk_b"), ColumnRef("b", "pk")),
        ],
        local_predicates={"a": [Comparison(ComparisonOp.LT,
                                           ColumnRef("a", "attr"),
                                           Literal(10))]},
        name="star")


class TestScanEstimates:
    def test_base_rows(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        assert estimator.base_rows("f") == 1_000_000
        assert estimator.base_rows("a") == 10_000

    def test_local_predicate_reduces_rows(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        assert estimator.scan_rows("a") < estimator.base_rows("a")
        assert estimator.scan_rows("a") == pytest.approx(1_000, rel=0.5)

    def test_unfiltered_scan(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        assert estimator.scan_rows("f") == 1_000_000

    def test_ndv_after_filter_shrinks(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        assert estimator.column_ndv("a", "pk") < 10_000
        assert estimator.column_ndv("a", "pk", after_local_filter=False) == 10_000

    def test_in_list_selectivity(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        predicate = InList(ColumnRef("b", "name"), ("x", "y"))
        sel = estimator.predicate_selectivity(predicate, "b")
        assert sel == pytest.approx(2.0 / 50.0, rel=0.01)


class TestJoinEstimates:
    def test_fk_pk_join_preserves_fact_rows(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        rows = estimator.join_rows({"f", "b"})
        assert rows == pytest.approx(1_000_000, rel=0.05)

    def test_filtered_dimension_reduces_join(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        rows = estimator.join_rows({"f", "a"})
        assert rows < 1_000_000 * 0.3

    def test_join_rows_cached_and_consistent(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        assert estimator.join_rows({"f", "a"}) == estimator.join_rows({"a", "f"})

    def test_column_ndv_in_join_capped(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        ndv = estimator.column_ndv_in_join(frozenset({"a"}), ColumnRef("a", "pk"))
        assert ndv <= 10_000
        joined = estimator.column_ndv_in_join(frozenset({"a", "f"}),
                                              ColumnRef("a", "pk"))
        assert joined <= ndv * 1.001

    def test_column_not_in_set_raises(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        with pytest.raises(ValueError):
            estimator.column_ndv_in_join(frozenset({"f"}), ColumnRef("a", "pk"))


class TestSemijoinAndBloom:
    def test_semijoin_selectivity_with_filtered_build(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        sel = estimator.semijoin_selectivity(ColumnRef("f", "fk_a"),
                                             ColumnRef("a", "pk"),
                                             frozenset({"a"}))
        assert 0.0 < sel < 0.5

    def test_semijoin_selectivity_unfiltered_is_one(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        sel = estimator.semijoin_selectivity(ColumnRef("f", "fk_b"),
                                             ColumnRef("b", "pk"),
                                             frozenset({"b"}))
        assert sel == pytest.approx(1.0)

    def test_bloom_estimate_includes_fpr(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        estimate = estimator.bloom_estimate(ColumnRef("f", "fk_a"),
                                            ColumnRef("a", "pk"),
                                            frozenset({"a"}))
        assert estimate.effective_selectivity >= estimate.selectivity
        assert estimate.build_ndv <= 10_000

    def test_bloom_scan_rows_multiplicative(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        one = estimator.bloom_estimate(ColumnRef("f", "fk_a"),
                                       ColumnRef("a", "pk"), frozenset({"a"}))
        rows_one = estimator.bloom_scan_rows("f", [one])
        rows_two = estimator.bloom_scan_rows("f", [one, one])
        assert rows_two <= rows_one <= estimator.scan_rows("f")

    def test_lossless_fk_detection(self, star_catalog, star_query):
        estimator = CardinalityEstimator(star_catalog, star_query)
        # dim_b is unfiltered: BF on fact.fk_b from dim_b.pk is lossless.
        assert estimator.is_lossless_fk_join(ColumnRef("f", "fk_b"),
                                             ColumnRef("b", "pk"),
                                             frozenset({"b"}))
        # dim_a is filtered: the BF can remove rows.
        assert not estimator.is_lossless_fk_join(ColumnRef("f", "fk_a"),
                                                 ColumnRef("a", "pk"),
                                                 frozenset({"a"}))

    def test_lossless_fk_with_reducing_delta(self):
        """An unfiltered PK build side stops being lossless once another
        relation in δ reduces it through a join (chain r0 -> r1 -> r2 with a
        selective filter on r2)."""
        from repro.experiments.naive_blowup import (
            build_chain_catalog,
            build_chain_query,
        )

        catalog = build_chain_catalog(3)
        query = build_chain_query(3)
        estimator = CardinalityEstimator(catalog, query)
        # δ = {r1}: r1.pk is an unfiltered primary key -> lossless.
        assert estimator.is_lossless_fk_join(ColumnRef("r0", "fk"),
                                             ColumnRef("r1", "pk"),
                                             frozenset({"r1"}))
        # δ = {r1, r2}: the filtered r2 shrinks r1's key domain -> not lossless.
        assert not estimator.is_lossless_fk_join(ColumnRef("r0", "fk"),
                                                 ColumnRef("r1", "pk"),
                                                 frozenset({"r1", "r2"}))


class TestCostModel:
    def test_cost_ordering_operations(self):
        a, b = Cost(1.0, 5.0), Cost(0.0, 7.0)
        assert a < b
        assert (a + b).total == 12.0
        assert a.add_work(3.0).total == 8.0
        assert a.add_work(3.0, blocking=True).startup == 4.0

    def test_total_never_below_startup(self):
        cost = Cost(startup=10.0, total=5.0)
        assert cost.total == 10.0

    def test_bloom_probe_cheaper_than_hash_probe(self):
        params = CostParameters()
        assert params.bloom_probe_row_cost < params.hash_probe_row_cost

    def test_bloom_build_defaults_to_free(self):
        model = CostModel()
        assert model.bloom_build(1_000_000, 2).total == 0.0

    def test_hash_join_scales_with_inputs(self):
        model = CostModel()
        small = model.hash_join(1_000, 10_000, 10_000)
        large = model.hash_join(1_000, 1_000_000, 1_000_000)
        assert large.total > small.total

    def test_broadcast_more_expensive_than_redistribute(self):
        model = CostModel()
        rows, width = 100_000, 32
        assert model.broadcast(rows, width).total > \
            model.redistribute(rows, width).total

    def test_nested_loop_quadratic(self):
        model = CostModel()
        assert model.nested_loop(1_000, 1_000, 10).total > \
            model.hash_join(1_000, 1_000, 10).total

    def test_sort_superlinear(self):
        model = CostModel()
        assert model.sort(100_000).total > 10 * model.sort(10_000).total / 2

    def test_with_dop(self):
        params = CostParameters().with_dop(8)
        assert params.degree_of_parallelism == 8

    @given(st.floats(min_value=1, max_value=1e8),
           st.floats(min_value=1, max_value=1e8))
    @settings(max_examples=30, deadline=None)
    def test_costs_are_non_negative(self, rows_a, rows_b):
        model = CostModel()
        assert model.hash_join(rows_a, rows_b, rows_a).total >= 0
        assert model.seq_scan(rows_a, 32).total >= 0
        assert model.bloom_apply(rows_a, 2).total >= 0
