"""Tests for the SQL lexer, parser and binder."""

from __future__ import annotations

import pytest

from repro.core import (
    AggregateCall,
    AggregateFunction,
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Like,
    Literal,
    Or,
)
from repro.sql import (
    BindError,
    LexerError,
    ParseError,
    bind_sql,
    parse_select,
    tokenize,
)
from repro.sql.lexer import TokenType
from repro.storage.types import date_to_int


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("select foo from bar")
        assert [t.type for t in tokens[:-1]] == [TokenType.KEYWORD,
                                                 TokenType.IDENTIFIER,
                                                 TokenType.KEYWORD,
                                                 TokenType.IDENTIFIER]

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.14 'hello world'")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[1].type is TokenType.NUMBER
        assert tokens[2].type is TokenType.STRING
        assert tokens[2].text == "hello world"

    def test_operators(self):
        tokens = tokenize("a <> b >= c <= d")
        operators = [t.text for t in tokens if t.type is TokenType.OPERATOR]
        assert operators == ["<>", ">=", "<="]

    def test_comments_skipped(self):
        tokens = tokenize("select a -- comment\n from t")
        texts = [t.text for t in tokens if t.type is not TokenType.END]
        assert "comment" not in texts

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("select 'oops")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("select a @ b")

    def test_ends_with_end_token(self):
        assert tokenize("select 1")[-1].type is TokenType.END


class TestParser:
    def test_simple_select(self):
        stmt = parse_select("select a, b from t where a = 1")
        assert len(stmt.select_items) == 2
        assert len(stmt.from_tables) == 1
        assert stmt.where is not None

    def test_star(self):
        stmt = parse_select("select * from t1, t2")
        assert stmt.select_items[0].star
        assert len(stmt.from_tables) == 2

    def test_aliases(self):
        stmt = parse_select("select n1.n_name as supp from nation n1, nation n2")
        assert stmt.select_items[0].alias == "supp"
        assert stmt.from_tables[0].effective_alias == "n1"
        assert stmt.from_tables[1].effective_alias == "n2"

    def test_group_order_limit(self):
        stmt = parse_select(
            "select a, count(*) as c from t group by a order by c desc limit 5")
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending
        assert stmt.limit == 5

    def test_between_and_in(self):
        stmt = parse_select(
            "select a from t where a between 1 and 10 and b in (1, 2, 3)")
        assert stmt.where is not None

    def test_date_and_interval(self):
        stmt = parse_select(
            "select a from t where d >= date '1994-01-01' and "
            "d < date '1994-01-01' + interval '1' year")
        assert stmt.where is not None

    def test_extract(self):
        stmt = parse_select("select extract(year from d) as y from t")
        assert stmt.select_items[0].alias == "y"

    def test_like_and_not_like(self):
        stmt = parse_select(
            "select a from t where a like '%x%' and b not like 'y%'")
        assert stmt.where is not None

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_select("select a")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_select("select a from t where a = 1 1")

    def test_unbalanced_parenthesis_raises(self):
        with pytest.raises(ParseError):
            parse_select("select a from t where (a = 1")


class TestBinder:
    def test_join_classification(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from orders, lineitem
            where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP')
        """, name="mini")
        assert len(query.join_clauses) == 1
        assert query.join_clauses[0].relations == frozenset({"orders", "lineitem"})
        assert len(query.predicates_for("lineitem")) == 1
        assert not query.predicates_for("orders")

    def test_local_predicate_types(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from part
            where p_size = 15 and p_type like '%BRASS'
              and p_retailprice between 100 and 200
        """)
        predicates = query.predicates_for("part")
        types = {type(p) for p in predicates}
        assert types == {Comparison, Like, Between}

    def test_residual_predicate(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from nation n1, nation n2, supplier
            where s_nationkey = n1.n_nationkey
              and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
                   or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
        """)
        assert len(query.residual_predicates) == 1
        assert isinstance(query.residual_predicates[0], Or)
        assert query.residual_predicates[0].referenced_relations() == \
            frozenset({"n1", "n2"})

    def test_date_literal_binding(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from orders where o_orderdate < date '1995-03-15'
        """)
        predicate = query.predicates_for("orders")[0]
        assert isinstance(predicate, Comparison)
        assert predicate.right == Literal(date_to_int(1995, 3, 15))

    def test_interval_constant_folding(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from orders
            where o_orderdate < date '1994-01-01' + interval '1' year
        """)
        predicate = query.predicates_for("orders")[0]
        assert isinstance(predicate.right, Literal)
        assert predicate.right.value == date_to_int(1994, 1, 1) + 365

    def test_aggregate_binding(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select l_shipmode, count(*) as cnt, sum(l_quantity) as qty
            from lineitem group by l_shipmode
        """)
        assert query.has_aggregation
        aggregates = [item for item in query.output if item.is_aggregate]
        assert {item.expression.func for item in aggregates} == \
            {AggregateFunction.COUNT, AggregateFunction.SUM}

    def test_group_by_alias(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select extract(year from o_orderdate) as o_year, count(*) as c
            from orders group by o_year
        """)
        assert len(query.group_by) == 1
        assert not isinstance(query.group_by[0], ColumnRef)

    def test_ambiguous_column_raises(self, tpch_catalog):
        with pytest.raises(BindError):
            bind_sql(tpch_catalog, "select n_name from nation n1, nation n2")

    def test_unknown_table_raises(self, tpch_catalog):
        with pytest.raises(BindError):
            bind_sql(tpch_catalog, "select 1 from nonexistent")

    def test_unknown_column_raises(self, tpch_catalog):
        with pytest.raises(BindError):
            bind_sql(tpch_catalog, "select zzz from nation")

    def test_duplicate_alias_raises(self, tpch_catalog):
        with pytest.raises(BindError):
            bind_sql(tpch_catalog, "select 1 from nation n, region n")

    def test_unqualified_resolution(self, tpch_catalog):
        query = bind_sql(tpch_catalog, """
            select count(*) from customer, orders where c_custkey = o_custkey
        """)
        clause = query.join_clauses[0]
        assert {clause.left.relation, clause.right.relation} == \
            {"customer", "orders"}


class TestScalarFunctionBinding:
    """COALESCE / NULLIF lower through the generic function-call syntax."""

    def test_coalesce_binds(self, tpch_catalog):
        query = bind_sql(tpch_catalog,
                         "select coalesce(o_orderstatus, 'none') as c from orders")
        expression = query.output[0].expression
        assert type(expression).__name__ == "Coalesce"
        assert str(expression) == "coalesce(orders.o_orderstatus, 'none')"

    def test_nullif_binds(self, tpch_catalog):
        query = bind_sql(tpch_catalog,
                         "select nullif(o_orderkey, 0) from orders")
        expression = query.output[0].expression
        assert type(expression).__name__ == "NullIf"
        assert query.output[0].name == "nullif"

    def test_coalesce_arity_enforced(self, tpch_catalog):
        with pytest.raises(BindError):
            bind_sql(tpch_catalog, "select coalesce(o_orderkey) from orders")
        with pytest.raises(BindError):
            bind_sql(tpch_catalog,
                     "select nullif(o_orderkey, 1, 2) from orders")

    def test_functions_fingerprint_distinctly(self, tpch_catalog):
        a = bind_sql(tpch_catalog,
                     "select coalesce(o_totalprice, 1) from orders")
        b = bind_sql(tpch_catalog,
                     "select coalesce(o_totalprice, 2) from orders")
        assert a.fingerprint() != b.fingerprint()
