"""Engine-invariant lint tests (:mod:`repro.analysis.lint`).

Each rule gets a negative test proving it fires on a minimal reproduction of
the bug class it guards against, a positive test proving idiomatic code stays
clean, and a suppression test proving ``# lint: allow(<rule>) — <reason>``
is honoured (and that reason-less or unknown-rule suppressions are findings
themselves).  The repo-wide test pins the acceptance criterion: the whole
``src/repro`` tree lints clean.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_paths, lint_source


def findings_for(source: str, **kwargs) -> list:
    return lint_source(textwrap.dedent(source), "src/repro/core/x.py",
                       **kwargs)


def rules_of(findings) -> set:
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# unordered-iteration
# ---------------------------------------------------------------------------


class TestUnorderedIteration:
    def test_for_loop_over_set_literal(self):
        findings = findings_for("""
            def f(xs: set) -> list:
                out = []
                for x in {1, 2, 3}:
                    out.append(x)
                return out
        """)
        assert rules_of(findings) == {"unordered-iteration"}

    def test_for_loop_over_pending_blooms(self):
        # The exact PR 5 bug class: plan choice fed by set iteration order.
        findings = findings_for("""
            def f(plan: object) -> list:
                picked = []
                for spec in plan.pending_blooms:
                    picked.append(spec)
                return picked
        """)
        assert rules_of(findings) == {"unordered-iteration"}

    def test_set_algebra_result_iteration(self):
        findings = findings_for("""
            def f(a: set, b: set) -> list:
                return [x for x in a.union(b)]
        """)
        assert rules_of(findings) == {"unordered-iteration"}

    def test_order_insensitive_reduction_is_clean(self):
        findings = findings_for("""
            def f(plan: object) -> bool:
                return any(spec.ready for spec in plan.pending_blooms)

            def g(plan: object) -> list:
                return sorted(spec.id for spec in plan.pending_blooms)
        """)
        assert findings == []

    def test_set_comprehension_is_clean(self):
        # A set built from a set: order never materialises.
        findings = findings_for("""
            def f(xs: set) -> set:
                return {x + 1 for x in xs}
        """)
        assert findings == []

    def test_list_iteration_is_clean(self):
        findings = findings_for("""
            def f(xs: list) -> list:
                return [x for x in xs]
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# mask-accessor-bypass
# ---------------------------------------------------------------------------


class TestMaskAccessorBypass:
    def test_np_call_on_raw_column(self):
        findings = lint_source(textwrap.dedent("""
            import numpy as np

            def f(batch: object) -> float:
                return np.sum(batch.column("t.a"))
        """), "src/repro/executor/x.py")
        assert rules_of(findings) == {"mask-accessor-bypass"}

    def test_masked_access_is_clean(self):
        findings = lint_source(textwrap.dedent("""
            import numpy as np

            def f(batch: object) -> float:
                values, mask = batch.resolve_masked(ref)
                if mask is not None:
                    values = values[~mask]
                return np.sum(values)
        """), "src/repro/executor/x.py")
        assert findings == []

    def test_rule_is_scoped_to_executor(self):
        # Outside executor/ the accessor rule does not apply (the planner
        # has no batches); the same snippet is clean there.
        findings = findings_for("""
            import numpy as np

            def f(batch: object) -> float:
                return np.sum(batch.column("t.a"))
        """)
        assert findings == []

    def test_explicit_override(self):
        findings = findings_for("""
            import numpy as np

            def f(batch: object) -> float:
                return np.sum(batch.column("t.a"))
        """, executor_rules=True)
        assert rules_of(findings) == {"mask-accessor-bypass"}


# ---------------------------------------------------------------------------
# sentinel-fill
# ---------------------------------------------------------------------------


class TestSentinelFill:
    def test_np_full_with_negative_sentinel(self):
        findings = findings_for("""
            import numpy as np

            def f(n: int) -> object:
                return np.full(n, -1)
        """)
        assert rules_of(findings) == {"sentinel-fill"}

    def test_iinfo_min_sentinel(self):
        findings = findings_for("""
            import numpy as np

            def f(n: int) -> object:
                pad = np.empty(n)
                pad.fill(np.iinfo(np.int64).min)
                return pad
        """)
        assert rules_of(findings) == {"sentinel-fill"}

    def test_benign_fill_values_are_clean(self):
        findings = findings_for("""
            import numpy as np

            def f(n: int) -> object:
                zeros = np.full(n, 0)
                ones = np.full(n, 1.0)
                ones.fill(0)
                return zeros, ones
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# worker-shared-mutation
# ---------------------------------------------------------------------------


class TestWorkerSharedMutation:
    def test_worker_storing_to_self(self):
        findings = findings_for("""
            class Executor:
                def run(self, pool: object, spans: list) -> list:
                    return list(pool.map(self.work, spans))

                def work(self, span: int) -> int:
                    self.last_span = span
                    return span
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}

    def test_transitive_reachability(self):
        # The mutation hides one call deeper than the submitted callable.
        findings = findings_for("""
            class Executor:
                def run(self, pool: object, spans: list) -> list:
                    return [pool.submit(self.work, s) for s in spans]

                def work(self, span: int) -> int:
                    return self.helper(span)

                def helper(self, span: int) -> int:
                    self.count += 1
                    return span
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}

    def test_module_global_store_from_worker(self):
        findings = findings_for("""
            COUNTER = 0

            def work(span: int) -> int:
                global COUNTER
                COUNTER += 1
                return span

            def run(pool: object, spans: list) -> list:
                return list(pool.map(work, spans))
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}

    def test_per_morsel_state_is_clean(self):
        findings = findings_for("""
            class Executor:
                def run(self, pool: object, spans: list) -> list:
                    return list(pool.map(self.work, spans))

                def work(self, span: int) -> list:
                    local = []
                    local.append(span)
                    return local
        """)
        assert findings == []

    def test_thread_map_dispatch_is_covered(self):
        # The morsel-backend dispatcher counts as a worker entry point just
        # like bare pool.submit/map.
        findings = findings_for("""
            class Runtime:
                def run(self, pools: object, spans: list) -> list:
                    return pools.thread_map(self.work, spans, None, 4)

                def work(self, span: int) -> int:
                    self.hits += 1
                    return span
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}

    def test_segment_map_dispatch_is_covered(self):
        # The runtime's inline-or-pool hook dispatches to workers too, so a
        # mutation reachable from its callable is flagged.
        findings = findings_for("""
            class Runtime:
                def run(self, spans: list) -> list:
                    return self._segment_map(self.work, spans)

                def _segment_map(self, fn: object, items: list) -> list:
                    return [fn(item) for item in items]

                def work(self, span: int) -> int:
                    self.hits += 1
                    return span
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}

    def test_shared_attribute_store_outside_constructor(self):
        findings = findings_for("""
            class Batch:
                def __init__(self) -> None:
                    self._kernel_memo = {}

                def poke(self, key: object, value: object) -> None:
                    self._kernel_memo[key] = value
        """)
        assert rules_of(findings) == {"worker-shared-mutation"}
        # Exactly one finding: the __init__ store is construction, which
        # happens-before any sharing, and stays exempt.
        assert len(findings) == 1
        assert findings[0].line == 7


# ---------------------------------------------------------------------------
# untyped-def
# ---------------------------------------------------------------------------


class TestUntypedDefs:
    def test_missing_parameter_annotation(self):
        findings = findings_for("""
            def f(x) -> int:
                return x
        """)
        assert rules_of(findings) == {"untyped-def"}
        assert "x" in findings[0].message

    def test_missing_return_annotation(self):
        findings = findings_for("""
            def f(x: int):
                return x
        """)
        assert rules_of(findings) == {"untyped-def"}

    def test_fully_annotated_is_clean(self):
        findings = findings_for("""
            class C:
                def method(self, x: int) -> int:
                    return x

                @classmethod
                def make(cls, x: int) -> "C":
                    return cls()
        """)
        assert findings == []

    def test_rule_is_scoped_to_strict_packages(self):
        source = "def f(x):\n    return x\n"
        assert lint_source(source, "src/repro/storage/x.py") == []
        assert rules_of(lint_source(source, "src/repro/api/x.py")) \
            == {"untyped-def"}


# ---------------------------------------------------------------------------
# blocking-in-async
# ---------------------------------------------------------------------------


def serving_findings_for(source: str, **kwargs) -> list:
    return lint_source(textwrap.dedent(source), "src/repro/serving/x.py",
                       **kwargs)


class TestBlockingInAsync:
    def test_sync_execute_in_async_def(self):
        findings = serving_findings_for("""
            async def handle(session: object, sql: str) -> object:
                return session.execute(sql)
        """)
        assert rules_of(findings) == {"blocking-in-async"}

    def test_time_sleep_in_async_def(self):
        findings = serving_findings_for("""
            import time

            async def backoff() -> None:
                time.sleep(0.1)
        """)
        assert rules_of(findings) == {"blocking-in-async"}

    def test_future_result_in_async_def(self):
        findings = serving_findings_for("""
            async def wait(future: object) -> object:
                return future.result()
        """)
        assert rules_of(findings) == {"blocking-in-async"}

    def test_awaited_calls_are_clean(self):
        findings = serving_findings_for("""
            import asyncio

            async def handle(serving: object, sql: str) -> object:
                await asyncio.sleep(0)
                return await serving.execute_async(sql)
        """)
        assert findings == []

    def test_awaited_execute_is_clean(self):
        # ``await session.execute(...)`` on an async session is the
        # idiomatic call — only the un-awaited sync form blocks the loop.
        findings = serving_findings_for("""
            async def handle(session: object, sql: str) -> object:
                return await session.execute(sql)
        """)
        assert findings == []

    def test_nested_sync_def_runs_on_workers(self):
        # A sync def nested in a coroutine executes where it is called
        # (the worker pool), not on the event loop.
        findings = serving_findings_for("""
            async def handle(session: object, sql: str) -> object:
                def work() -> object:
                    return session.execute(sql)
                return work
        """)
        assert findings == []

    def test_rule_is_scoped_to_serving(self):
        # The sync API calling itself is fine outside serving/.
        findings = findings_for("""
            async def handle(session: object, sql: str) -> object:
                return session.execute(sql)
        """)
        assert findings == []

    def test_suppression_is_honoured(self):
        findings = serving_findings_for("""
            async def handle(session: object, sql: str) -> object:
                return session.execute(sql)  # lint: allow(blocking-in-async) — startup path, loop not running yet
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# unaccounted-allocation
# ---------------------------------------------------------------------------


def spill_findings_for(source: str, **kwargs) -> list:
    return lint_source(textwrap.dedent(source),
                       "src/repro/executor/joins.py", **kwargs)


class TestUnaccountedAllocation:
    def test_data_sized_alloc_without_budget_parameter(self):
        findings = spill_findings_for("""
            import numpy as np

            def probe(keys: np.ndarray) -> np.ndarray:
                return np.zeros(keys.shape[0], dtype=np.int64)
        """)
        assert rules_of(findings) == {"unaccounted-allocation"}

    def test_alloc_under_budget_parameter_is_clean(self):
        findings = spill_findings_for("""
            import numpy as np

            def probe(keys: np.ndarray, budget: object) -> np.ndarray:
                return np.zeros(keys.shape[0], dtype=np.int64)
        """)
        assert findings == []

    def test_constant_size_alloc_is_exempt(self):
        findings = spill_findings_for("""
            import numpy as np

            def empty_result() -> np.ndarray:
                return np.zeros(0, dtype=np.int64)
        """)
        assert findings == []

    def test_rule_gated_to_spill_operator_modules(self):
        # The same data-sized allocation in a non-spill module is fine:
        # only operators with a degrade-to-spill path must account bytes.
        findings = findings_for("""
            import numpy as np

            def scratch(n: int) -> np.ndarray:
                return np.zeros(n, dtype=np.int64)
        """)
        assert findings == []

    def test_suppression_with_reason_is_honoured(self):
        findings = spill_findings_for("""
            import numpy as np

            def pad(n: int) -> np.ndarray:
                # lint: allow(unaccounted-allocation) — output-batch bytes,
                # charged by the executor per operator output
                return np.zeros(n, dtype=np.int64)
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# broad-except-swallow
# ---------------------------------------------------------------------------


class TestBroadExceptSwallow:
    def test_bare_except_without_raise(self):
        findings = findings_for("""
            def f() -> int:
                try:
                    return g()
                except:
                    return 0
        """)
        assert rules_of(findings) == {"broad-except-swallow"}

    def test_base_exception_without_raise(self):
        findings = findings_for("""
            def f() -> int:
                try:
                    return g()
                except BaseException:
                    return 0
        """)
        assert rules_of(findings) == {"broad-except-swallow"}

    def test_base_exception_in_tuple_without_raise(self):
        findings = findings_for("""
            def f() -> int:
                try:
                    return g()
                except (ValueError, BaseException) as exc:
                    return 0
        """)
        assert rules_of(findings) == {"broad-except-swallow"}

    def test_cleanup_then_reraise_is_clean(self):
        findings = findings_for("""
            def f(resource: object) -> int:
                try:
                    return g()
                except BaseException:
                    resource.release()
                    raise
        """)
        assert findings == []

    def test_conditional_reraise_is_clean(self):
        # Any raise on any path counts: the rule is a swallow detector,
        # not a path-sensitive prover.
        findings = findings_for("""
            def f(strict: bool) -> int:
                try:
                    return g()
                except BaseException as exc:
                    if strict:
                        raise
                    return 0
        """)
        assert findings == []

    def test_raise_in_nested_def_does_not_count(self):
        findings = findings_for("""
            def f() -> object:
                try:
                    return g()
                except BaseException:
                    def reraise() -> None:
                        raise ValueError("later")
                    return reraise
        """)
        assert rules_of(findings) == {"broad-except-swallow"}

    def test_except_exception_is_legal(self):
        # `except Exception` already lets KeyboardInterrupt/SystemExit
        # through; the rule only guards the truly unbounded forms.
        findings = findings_for("""
            def f() -> int:
                try:
                    return g()
                except Exception:
                    return 0
        """)
        assert findings == []

    def test_suppression_is_honoured(self):
        findings = findings_for("""
            def f(future: object) -> None:
                try:
                    g()
                # lint: allow(broad-except-swallow) — error resolves the
                # caller's future instead of unwinding the worker thread
                except BaseException as exc:
                    future.set_exception(exc)
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_allow_with_reason_trailing(self):
        findings = findings_for("""
            def f(xs: set) -> list:
                out = []
                for x in xs.union(xs):  # lint: allow(unordered-iteration) — order feeds a set
                    out.append(x)
                return out
        """)
        assert findings == []

    def test_allow_with_reason_above(self):
        findings = findings_for("""
            def f(xs: set) -> list:
                out = []
                # lint: allow(unordered-iteration) — order cannot escape:
                # the caller sorts the result.
                for x in xs.union(xs):
                    out.append(x)
                return out
        """)
        assert findings == []

    def test_allow_without_reason_is_a_finding(self):
        findings = findings_for("""
            def f(xs: set) -> list:
                out = []
                for x in xs.union(xs):  # lint: allow(unordered-iteration)
                    out.append(x)
                return out
        """)
        assert rules_of(findings) == {"bad-suppression",
                                      "unordered-iteration"}

    def test_allow_naming_unknown_rule_is_a_finding(self):
        findings = findings_for("""
            x = 1  # lint: allow(no-such-rule) — because reasons
        """)
        assert rules_of(findings) == {"bad-suppression"}

    def test_docstring_mentioning_syntax_is_not_a_suppression(self):
        findings = findings_for('''
            def f() -> None:
                """Write '# lint: allow(<rule>) — <reason>' to suppress."""
        ''')
        assert findings == []

    def test_allow_does_not_leak_to_other_rules(self):
        findings = findings_for("""
            import numpy as np

            def f(n: int) -> object:
                # lint: allow(unordered-iteration) — wrong rule for this line
                return np.full(n, -1)
        """)
        assert rules_of(findings) == {"sentinel-fill"}


# ---------------------------------------------------------------------------
# The acceptance criterion: the whole tree lints clean
# ---------------------------------------------------------------------------


def test_repo_lints_clean():
    findings = lint_paths(["src/repro"])
    assert findings == [], "\n".join(
        "%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message)
        for f in findings)
