"""Tests for plan properties, plan-list pruning and Heuristic 7."""

from __future__ import annotations

import pytest

from repro.core import ColumnRef, Cost, PlanList, PlanNode
from repro.core.candidates import BloomFilterSpec
from repro.core.cardinality import BloomEstimate
from repro.core.properties import Distribution, DistributionKind, PlanProperties


def make_spec(filter_id, delta, selectivity=0.1):
    return BloomFilterSpec(
        filter_id=filter_id,
        apply_column=ColumnRef("big", "fk"),
        build_column=ColumnRef("small", "pk"),
        delta=frozenset(delta),
        estimate=BloomEstimate(selectivity=selectivity,
                               false_positive_rate=0.01, build_ndv=1000))


def make_plan(cost, rows, pending=(), distribution=None):
    properties = PlanProperties(
        distribution=distribution or Distribution.random(),
        pending_blooms=frozenset(pending))
    return PlanNode(rows=rows, cost=Cost(0.0, cost), properties=properties)


class TestDistribution:
    def test_hash_requires_keys(self):
        with pytest.raises(ValueError):
            Distribution(DistributionKind.HASH)
        with pytest.raises(ValueError):
            Distribution(DistributionKind.RANDOM, (ColumnRef("t", "a"),))

    def test_is_hashed_on(self):
        keys = (ColumnRef("t", "a"),)
        dist = Distribution.hashed(keys)
        assert dist.is_hashed_on(keys)
        assert not dist.is_hashed_on((ColumnRef("t", "b"),))
        assert not Distribution.random().is_hashed_on(keys)

    def test_signatures_differ(self):
        assert Distribution.random().signature() != Distribution.broadcast().signature()
        assert Distribution.hashed((ColumnRef("t", "a"),)).signature() != \
            Distribution.hashed((ColumnRef("t", "b"),)).signature()


class TestPlanProperties:
    def test_signature_includes_pending(self):
        spec = make_spec("bf1", {"small"})
        with_bloom = PlanProperties(pending_blooms=frozenset({spec}))
        without = PlanProperties()
        assert with_bloom.signature() != without.signature()
        assert with_bloom.has_pending_blooms
        assert not without.has_pending_blooms

    def test_with_helpers(self):
        props = PlanProperties()
        spec = make_spec("bf1", {"small"})
        assert props.with_pending({spec}).pending_blooms == frozenset({spec})
        assert props.with_distribution(Distribution.broadcast()).distribution == \
            Distribution.broadcast()


class TestPlanListPruning:
    def test_keeps_cheapest_same_properties(self):
        plan_list = PlanList()
        cheap = make_plan(cost=10, rows=100)
        expensive = make_plan(cost=20, rows=100)
        assert plan_list.add(cheap)
        assert not plan_list.add(expensive)
        assert plan_list.best() is cheap

    def test_replaces_dominated_plan(self):
        plan_list = PlanList()
        expensive = make_plan(cost=20, rows=100)
        cheap = make_plan(cost=10, rows=100)
        plan_list.add(expensive)
        plan_list.add(cheap)
        assert len(plan_list) == 1
        assert plan_list.best() is cheap

    def test_different_distribution_both_kept(self):
        plan_list = PlanList()
        plan_list.add(make_plan(cost=10, rows=100))
        plan_list.add(make_plan(cost=20, rows=100,
                                distribution=Distribution.broadcast()))
        assert len(plan_list) == 2

    def test_bloom_plan_with_fewer_rows_survives(self):
        plan_list = PlanList()
        plain = make_plan(cost=10, rows=1_000)
        bloom = make_plan(cost=12, rows=100, pending={make_spec("bf1", {"small"})})
        plan_list.add(plain)
        assert plan_list.add(bloom)
        assert len(plan_list) == 2

    def test_superset_delta_without_fewer_rows_pruned(self):
        """Section 3.5: more required relations but no fewer rows -> prune."""
        plan_list = PlanList()
        small_delta = make_plan(cost=10, rows=100,
                                pending={make_spec("bf1", {"small"})})
        big_delta = make_plan(cost=10, rows=100,
                              pending={make_spec("bf1", {"small"}),
                                       make_spec("bf2", {"small", "other"})})
        plan_list.add(small_delta)
        assert not plan_list.add(big_delta)

    def test_superset_delta_with_fewer_rows_kept(self):
        plan_list = PlanList()
        small_delta = make_plan(cost=10, rows=100,
                                pending={make_spec("bf1", {"small"})})
        big_delta = make_plan(cost=10, rows=10,
                              pending={make_spec("bf1", {"small"}),
                                       make_spec("bf2", {"small", "other"})})
        plan_list.add(small_delta)
        assert plan_list.add(big_delta)
        assert len(plan_list) == 2

    def test_best_prefers_complete_plans(self):
        plan_list = PlanList()
        bloom = make_plan(cost=1, rows=10, pending={make_spec("bf1", {"x"})})
        plain = make_plan(cost=100, rows=1_000)
        plan_list.add(bloom)
        plan_list.add(plain)
        assert plan_list.best() is plain
        assert plan_list.best_any() is bloom

    def test_empty_plan_list(self):
        plan_list = PlanList()
        assert plan_list.best() is None
        assert plan_list.best_any() is None


class TestHeuristic7:
    def test_caps_bloom_subplans(self):
        plan_list = PlanList()
        plan_list.add(make_plan(cost=5, rows=1_000))
        keeper = make_plan(cost=50, rows=10, pending={make_spec("bf0", {"a"})})
        plan_list.add(keeper)
        for i in range(1, 6):
            plan_list.add(make_plan(cost=10 + i, rows=100 + i,
                                    pending={make_spec("bf%d" % i, {"a", "x%d" % i})}))
        pruned = plan_list.apply_heuristic7(max_bloom_subplans=4)
        assert pruned > 0
        assert len(plan_list.bloom_plans()) == 1
        assert plan_list.bloom_plans()[0] is keeper
        assert len(plan_list.non_bloom_plans()) == 1

    def test_no_pruning_below_cap(self):
        plan_list = PlanList()
        plan_list.add(make_plan(cost=50, rows=10, pending={make_spec("bf0", {"a"})}))
        assert plan_list.apply_heuristic7(max_bloom_subplans=4) == 0
