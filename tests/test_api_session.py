"""The embeddable session API: Database, Session, caches, typed errors.

Covers the satellite checklist of the API redesign: session lifecycle,
plan-cache hit/miss behaviour, enumeration-sequence reuse across same-shape
queries, prepared-query re-execution, the typed error surface and the
independence of concurrent sessions (including the per-execution Bloom
filter scoping fix).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import (
    BfCboSettings,
    Catalog,
    Database,
    ExecutionError,
    OptimizerMode,
    PlanningError,
    ReproError,
    SqlError,
    make_schema,
    synthetic_statistics,
)
from repro.api import INT64
from repro.core.enumerator import EnumerationSequenceCache
from repro.core.query import QueryBlock
from repro.executor import Executor


def make_database() -> Database:
    """A small ad-hoc database with two joinable tables."""
    db = Database(Catalog())
    rng = np.random.default_rng(7)
    db.register_table("orders_t", {
        "o_id": np.arange(200, dtype=np.int64),
        "o_cust": rng.integers(0, 40, 200),
        "o_price": rng.uniform(1.0, 100.0, 200),
    }, primary_key=["o_id"])
    db.register_table("cust_t", {
        "c_id": np.arange(40, dtype=np.int64),
        "c_region": rng.integers(0, 4, 40),
    }, primary_key=["c_id"])
    return db


JOIN_SQL = """
    select c_region, count(*) as cnt, sum(o_price) as total
    from orders_t, cust_t
    where o_cust = c_id and c_region < 2
    group by c_region
    order by c_region
"""


class TestSessionLifecycle:
    def test_execute_returns_rows_and_metrics(self):
        db = make_database()
        session = db.connect()
        result = session.execute(JOIN_SQL, name="join-query")
        assert result.executed
        assert result.num_rows == 2
        assert set(result.columns) == {"c_region", "cnt", "total"}
        assert list(result.column("c_region")) == [0, 1]
        assert result.simulated_latency > 0
        assert result.optimization.planning_time_ms > 0
        assert "Scan" in result.explain()

    def test_history_records_every_result(self):
        db = make_database()
        session = db.connect()
        assert session.last is None
        session.execute("select count(*) as n from orders_t")
        session.execute(JOIN_SQL)
        assert len(session.history) == 2
        assert session.last is session.history[-1]
        assert session.total_simulated_latency == pytest.approx(
            sum(r.simulated_latency for r in session.history))
        session.clear_history()
        assert session.history == []

    def test_history_is_capped_and_can_be_disabled(self):
        db = make_database()
        capped = db.connect(history_limit=3)
        for _ in range(5):
            capped.execute("select count(*) as n from orders_t")
        assert len(capped.history) == 3
        disabled = db.connect(history_limit=0)
        disabled.execute("select count(*) as n from orders_t")
        assert disabled.history == [] and disabled.last is None

    def test_explain_records_history_like_plan(self):
        db = make_database()
        session = db.connect()
        session.explain(JOIN_SQL)
        assert len(session.history) == 1 and not session.last.executed
        session.explain(JOIN_SQL, analyze=True)
        assert len(session.history) == 2 and session.last.executed

    def test_plan_only_does_not_execute(self):
        db = make_database()
        session = db.connect()
        result = session.plan(JOIN_SQL)
        assert not result.executed
        assert result.num_rows == 0
        # Accessing rows of a plan-only result is caller misuse, not a query
        # failure — deliberately outside the ReproError hierarchy.
        with pytest.raises(RuntimeError):
            result.column("cnt")

    def test_explain_and_analyze(self):
        db = make_database()
        session = db.connect()
        plain = session.explain(JOIN_SQL)
        assert "Hash Join" in plain and "actual" not in plain
        analyzed = session.explain(JOIN_SQL, analyze=True)
        assert "actual" in analyzed

    def test_mode_overrides_cascade(self):
        db = make_database()
        no_bf_session = db.connect(mode=OptimizerMode.NO_BF)
        result = no_bf_session.execute(JOIN_SQL)
        assert result.mode is OptimizerMode.NO_BF
        # A per-call mode overrides the session default.
        result = no_bf_session.execute(JOIN_SQL, mode=OptimizerMode.BF_CBO)
        assert result.mode is OptimizerMode.BF_CBO
        # The database default applies when neither is given.
        assert db.connect().execute(JOIN_SQL).mode is OptimizerMode.BF_CBO


class TestPlanCache:
    def test_second_same_shape_query_hits_cache(self):
        db = make_database()
        session = db.connect()
        cold = session.execute(JOIN_SQL)
        warm = session.execute(JOIN_SQL)
        assert not cold.from_plan_cache
        assert warm.from_plan_cache
        # The cached optimization is the very same object: no re-planning.
        assert warm.optimization is cold.optimization
        stats = db.cache_stats()
        assert stats.plan_hits == 1
        assert stats.plan_misses >= 1
        assert stats.plan_entries >= 1

    def test_cache_key_includes_mode_and_settings(self):
        db = make_database()
        session = db.connect()
        a = session.execute(JOIN_SQL, mode=OptimizerMode.NO_BF)
        b = session.execute(JOIN_SQL, mode=OptimizerMode.BF_CBO)
        c = session.execute(JOIN_SQL, mode=OptimizerMode.BF_CBO,
                            settings=BfCboSettings.with_heuristic7())
        assert not any(r.from_plan_cache for r in (a, b, c))
        # Re-running each combination hits its own entry.
        assert session.execute(JOIN_SQL, mode=OptimizerMode.NO_BF).from_plan_cache
        assert session.execute(JOIN_SQL, mode=OptimizerMode.BF_CBO).from_plan_cache

    def test_cache_shared_across_sessions(self):
        db = make_database()
        first = db.connect()
        second = db.connect()
        cold = first.execute(JOIN_SQL)
        warm = second.execute(JOIN_SQL)
        assert warm.from_plan_cache
        assert warm.optimization is cold.optimization

    def test_query_name_does_not_defeat_the_cache(self):
        db = make_database()
        session = db.connect()
        session.execute(JOIN_SQL, name="first-name")
        assert session.execute(JOIN_SQL, name="other-name").from_plan_cache

    def test_post_bind_mutation_changes_fingerprint(self):
        db = make_database()
        block = db.bind(JOIN_SQL)
        before = block.fingerprint()
        assert block.fingerprint() is before  # memoized
        from repro.core import ColumnRef, Comparison, ComparisonOp, Literal

        block.local_predicates.setdefault("orders_t", []).append(
            Comparison(ComparisonOp.LT, ColumnRef("orders_t", "o_id"),
                       Literal(50)))
        after = block.fingerprint()
        # The appended predicate is detected: no stale plan-cache key.
        assert after != before
        result = db.connect().execute(block)
        assert result.num_rows <= 2

    def test_different_predicate_misses_plan_cache_but_reuses_sequence(self):
        db = make_database()
        session = db.connect()
        session.execute(JOIN_SQL)
        variant = JOIN_SQL.replace("c_region < 2", "c_region >= 2")
        result = session.execute(variant)
        assert not result.from_plan_cache
        stats = db.cache_stats()
        # Same join-graph shape: the DPccp walk was reused.
        assert stats.sequence_hits >= 1
        assert stats.sequence_entries == 1

    def test_register_unrelated_table_keeps_cached_plans(self):
        """Registration only evicts plans that depend on the changed table."""
        db = make_database()
        session = db.connect()
        session.execute(JOIN_SQL)
        db.register_table("extra_t", {"x": np.arange(5)})
        stats = db.cache_stats()
        assert stats.plan_entries == 1
        assert stats.plan_evictions == 0
        assert session.execute(JOIN_SQL).from_plan_cache

    def test_register_dependency_evicts_only_dependents(self):
        db = make_database()
        session = db.connect()
        session.execute(JOIN_SQL)
        session.execute("select o_id from orders_t where o_id < 3",
                        name="orders-only")
        session.execute("select c_id from cust_t where c_id < 3",
                        name="cust-only")
        assert db.cache_stats().plan_entries == 3
        # Re-registering cust_t drops the join plan and the cust-only plan
        # but keeps the orders-only plan cached.
        db.register_table("cust_t", {
            "c_id": np.arange(40, dtype=np.int64),
            "c_region": np.zeros(40, dtype=np.int64),
        }, primary_key=["c_id"])
        stats = db.cache_stats()
        assert stats.plan_entries == 1
        assert stats.plan_evictions == 2
        assert session.execute("select o_id from orders_t where o_id < 3",
                               name="orders-only").from_plan_cache
        assert not session.execute(JOIN_SQL).from_plan_cache

    def test_direct_catalog_mutation_invalidates_plans(self):
        from repro.storage import Table, make_schema
        from repro.storage.types import INT64 as INT

        db = make_database()
        session = db.connect()
        session.execute(JOIN_SQL)
        assert db.cache_stats().plan_entries > 0
        # Bypass the Database entirely: mutations straight on the catalog
        # bump Catalog.version and still drop the cached plans.
        schema = make_schema("side_t", [("y", INT)])
        db.catalog.register_table(Table(schema, {"y": np.arange(3)}))
        assert not session.execute(JOIN_SQL).from_plan_cache

    def test_disabled_caches(self):
        db = make_database()
        db_off = Database(db.catalog, plan_cache_size=0, sequence_cache_size=0)
        session = db_off.connect()
        session.execute(JOIN_SQL)
        result = session.execute(JOIN_SQL)
        assert not result.from_plan_cache
        stats = db_off.cache_stats()
        assert stats.plan_lookups == 0 and stats.sequence_lookups == 0


class TestPreparedQuery:
    def test_prepared_reexecution(self):
        db = make_database()
        session = db.connect()
        prepared = session.prepare(JOIN_SQL, name="prepared-join")
        first = prepared.execute()
        second = prepared.execute()
        assert first.num_rows == second.num_rows == 2
        assert not first.from_plan_cache
        assert second.from_plan_cache
        assert list(first.column("total")) == list(second.column("total"))

    def test_prepared_mode_override_and_explain(self):
        db = make_database()
        prepared = db.connect().prepare(JOIN_SQL)
        assert prepared.plan(mode=OptimizerMode.NO_BF).mode is OptimizerMode.NO_BF
        assert "Hash Join" in prepared.explain()


class TestTypedErrors:
    def test_sql_errors(self):
        session = make_database().connect()
        with pytest.raises(SqlError):
            session.execute("select * from nonexistent_table")
        with pytest.raises(SqlError):
            session.execute("this is not sql")
        with pytest.raises(SqlError):
            session.execute("select no_such_column from orders_t")
        # The whole hierarchy is catchable as ReproError, and SqlError stays
        # a ValueError for pre-hierarchy callers.
        with pytest.raises(ReproError):
            session.execute("select * from nonexistent_table")
        with pytest.raises(ValueError):
            session.execute("select * from nonexistent_table")

    def test_planning_error_without_statistics(self):
        db = Database(Catalog())
        db.register_schema(make_schema("no_stats", [("x", INT64)]))
        session = db.connect()
        with pytest.raises(PlanningError):
            session.plan("select x from no_stats")

    def test_execution_error_on_statistics_only_catalog(self):
        db = Database(Catalog())
        db.register_schema(make_schema("stats_only", [("x", INT64)]),
                           synthetic_statistics("stats_only", 1000, {"x": 1000}))
        session = db.connect()
        # Planning works against pure statistics ...
        assert "Scan" in session.explain("select x from stats_only")
        # ... but execution has no data to run on.
        with pytest.raises(ExecutionError):
            session.execute("select x from stats_only")

    def test_programming_errors_keep_their_natural_types(self):
        session = make_database().connect()
        # A malformed settings object is a caller bug, not a query failure.
        with pytest.raises(AttributeError):
            session.plan(JOIN_SQL, settings="not-settings")


class TestConcurrentSessions:
    def test_two_sessions_have_independent_histories_and_metrics(self):
        db = make_database()
        first = db.connect()
        second = db.connect(degree_of_parallelism=8)
        r1 = first.execute(JOIN_SQL)
        r2 = second.execute(JOIN_SQL)
        assert len(first.history) == 1 and len(second.history) == 1
        assert first.history[0] is r1 and second.history[0] is r2
        # Separate execution metrics objects, identical logical results.
        assert r1.execution is not r2.execution
        assert list(r1.column("cnt")) == list(r2.column("cnt"))

    def test_execution_does_not_leak_filters_into_shared_context(self):
        db = make_database()
        # The ad-hoc tables are tiny and the region filter is mild; drop
        # Heuristic 2's apply-row floor and Heuristic 6's selectivity cap so
        # BF-CBO actually places (and the executor actually builds) a filter.
        session = db.connect(settings=BfCboSettings.paper_defaults()
                             .with_overrides(min_apply_rows=1.0,
                                             max_selectivity=0.99))
        result = session.execute(JOIN_SQL)  # BF-CBO: builds Bloom filters
        assert result.execution.metrics.bloom_filters_built > 0
        built = [spec.filter_id
                 for node in result.optimization.plan.walk()
                 if hasattr(node, "built_filters")
                 for spec in getattr(node, "built_filters", ())]
        assert built
        # A fresh executor has no scope at all until execute() creates one,
        # and a new scope never sees filters published by the first run.
        fresh = Executor(session.context)
        assert fresh.filters is None
        scope = session.context.new_filter_scope()
        for filter_id in built:
            assert not scope.has_filter(filter_id)

    def test_interleaved_executions_on_one_catalog(self):
        """Concurrent sessions must not clobber each other's Bloom filters."""
        db = make_database()
        sessions = [db.connect() for _ in range(4)]
        errors = []
        results = [None] * len(sessions)

        def run(i, session):
            try:
                for _ in range(5):
                    results[i] = session.execute(JOIN_SQL)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i, s))
                   for i, s in enumerate(sessions)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for result in results:
            assert result.num_rows == 2
            assert list(result.column("c_region")) == [0, 1]


class TestSequenceCache:
    def test_store_overwrites_and_evict_all_keeps_counters(self):
        cache = EnumerationSequenceCache(max_entries=4)
        cache.store(("a",), ((1,),))
        cache.store(("a",), ((2,),))  # re-store replaces the value
        assert cache.lookup(("a",)) == ((2,),)
        cache.evict_all()
        assert len(cache) == 0
        assert cache.hits == 1  # lifetime counters survive eviction

    def test_zero_capacity_stores_nothing(self):
        cache = EnumerationSequenceCache(max_entries=0)
        cache.store(("a",), ((1, 2, 3),))
        assert len(cache) == 0
        assert cache.lookup(("a",)) is None

    def test_lru_eviction_and_counters(self):
        cache = EnumerationSequenceCache(max_entries=2)
        assert cache.lookup(("a",)) is None
        cache.store(("a",), ((1, 2, 3),))
        cache.store(("b",), ((4, 5, 6),))
        assert cache.lookup(("a",)) == ((1, 2, 3),)
        cache.store(("c",), ((7, 8, 9),))  # evicts ("b",): LRU
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None
        assert cache.hits == 2 and cache.misses == 2
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_same_shape_queries_share_one_sequence(self, tpch_catalog):
        db = Database(tpch_catalog)
        session = db.connect()
        base = ("select count(*) as n from lineitem, orders "
                "where l_orderkey = o_orderkey%s")
        session.plan(base % "")
        session.plan(base % " and o_totalprice > 100.0")
        session.plan(base % " and l_quantity < 10.0")
        stats = db.cache_stats()
        assert stats.sequence_entries == 1
        assert stats.sequence_hits >= 2

    def test_cached_sequence_does_not_change_plans(self, tpch_workload):
        query = tpch_workload.query(5)
        cached_db = Database(tpch_workload.catalog,
                             scale_factor=tpch_workload.scale_factor)
        uncached_db = Database(tpch_workload.catalog,
                               scale_factor=tpch_workload.scale_factor,
                               plan_cache_size=0, sequence_cache_size=0)
        warmup = cached_db.connect()
        # Warm the sequence cache with a same-shape sibling walk, then plan.
        warmup.plan(query, mode=OptimizerMode.BF_POST)
        cached = warmup.plan(query, mode=OptimizerMode.BF_CBO)
        uncached = uncached_db.connect().plan(query, mode=OptimizerMode.BF_CBO)
        assert cached_db.cache_stats().sequence_hits >= 1
        assert cached.explain() == uncached.explain()


class TestDatabaseHelpers:
    def test_register_table_infers_types(self):
        db = Database(Catalog())
        db.register_table("typed", {
            "i": np.arange(3, dtype=np.int32),
            "f": np.array([1.0, 2.0, 3.0]),
            "s": np.array(["a", "b", "c"]),
            "b": np.array([True, False, True]),
        })
        result = db.connect().execute("select i, f, s, b from typed where i < 2")
        assert result.num_rows == 2

    def test_register_table_widens_unsigned_ints(self):
        db = Database(Catalog())
        db.register_table("u_t", {"k": np.array([1, 2, 3], dtype=np.uint32)})
        db.register_table("m_t", {"k": np.array([2, 9], dtype=np.uint32)})
        from repro.core.query import BaseRelation, JoinClause, JoinType
        from repro.core import ColumnRef
        from repro.core.query import QueryBlock

        # A FULL join pads unmatched rows with -1, which only a signed
        # storage dtype can hold — the uint input must have been widened.
        block = QueryBlock(
            relations=[BaseRelation("u_t", "u_t"), BaseRelation("m_t", "m_t")],
            join_clauses=[JoinClause(ColumnRef("u_t", "k"),
                                     ColumnRef("m_t", "k"),
                                     join_type=JoinType.FULL)],
            name="unsigned-full")
        result = db.connect().execute(block)
        assert result.num_rows == 4  # 1 matched + 2 u_t-only + 1 m_t-only

    def test_register_table_decodes_byte_strings(self):
        db = Database(Catalog())
        db.register_table("bs", {"s": np.array([b"a", b"b"]),
                                 "v": np.arange(2, dtype=np.int64)})
        result = db.connect().execute("select v from bs where s = 'a'")
        assert result.num_rows == 1

    def test_register_table_rejects_uint64_overflow(self):
        db = Database(Catalog())
        with pytest.raises(ValueError):
            db.register_table("huge", {
                "k": np.array([2 ** 64 - 1], dtype=np.uint64)})

    def test_register_table_accepts_datetime64_as_date(self):
        db = Database(Catalog())
        db.register_table("events", {
            "day": np.array(["2024-01-01", "2024-06-15", "2025-01-01"],
                            dtype="datetime64[D]"),
            "v": np.arange(3, dtype=np.int64),
        })
        result = db.connect().execute(
            "select v from events where day < date '2024-12-31'")
        assert result.num_rows == 2

    def test_from_tpch_binds_workload(self):
        db = Database.from_tpch(scale_factor=0.002, query_numbers=[12])
        query = db.tpch_query(12)
        assert isinstance(query, QueryBlock)
        result = db.connect().execute(query)
        assert result.executed
        with pytest.raises(KeyError):
            Database(Catalog()).tpch_query(1)
