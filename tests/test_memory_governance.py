"""Memory governance: budgets, spill-to-disk, and graceful degradation.

The governance contract (``docs/memory.md``) is that memory pressure
*degrades* rather than fails: a denied reservation sends the stateful
operators (hash join, aggregation, sort) down spill paths that are
bit-identical to their in-memory results; pool contention surfaces as the
*transient* :class:`~repro.errors.GovernorExhaustedError` so serving
retries compose; and only the per-query watchdog limits
(``max_memory_bytes`` is a degradation knob, ``max_spill_bytes`` /
``max_rows`` are hard walls) raise the permanent
:class:`~repro.errors.ResourceExhaustedError`.  Every denial, spilled byte
and degraded operator is counted exactly in
``executor_stats()["memory"]``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import Database
from repro.core import ColumnRef, JoinClause
from repro.core.query import JoinType
from repro.errors import (
    GovernorExhaustedError,
    ResourceExhaustedError,
    TransientError,
)
from repro.executor import (
    Batch,
    MemoryBudget,
    MemoryGovernor,
    MemoryStats,
    equi_join,
    live_segment_stats,
    spill_equi_join,
)
from repro.faults import FaultPlan, FaultSpec, SITE_MEMORY_PRESSURE
from repro.serving.queue import AdmissionQueue

#: Backends the bit-identity scenarios run under (matches the chaos suite).
BACKENDS = tuple(os.environ.get("REPRO_CHAOS_BACKEND",
                                "thread process").split())

#: TPC-H queries covering all three spill-capable operators
#: (join + aggregate + sort).
QUERIES = (3, 5, 12)


def assert_batches_identical(expected, actual) -> None:
    """Bitwise equality: keys, order, dtypes, values and null masks."""
    assert expected.keys == actual.keys
    assert expected.num_rows == actual.num_rows
    for key in expected.keys:
        want, got = expected.column(key), actual.column(key)
        assert want.dtype == got.dtype, key
        assert np.array_equal(want, got), key
        want_mask = expected.null_mask(key)
        got_mask = actual.null_mask(key)
        assert (want_mask is None) == (got_mask is None), key
        if want_mask is not None:
            assert np.array_equal(want_mask, got_mask), key


# ---------------------------------------------------------------------------
# The governor: one process-wide pool
# ---------------------------------------------------------------------------


class TestMemoryGovernor:
    def test_grant_release_accounting(self):
        governor = MemoryGovernor(1000)
        assert governor.try_acquire(600)
        assert governor.available() == 400
        assert not governor.try_acquire(500)
        assert governor.try_acquire(400)
        governor.release(1000)
        stats = governor.stats()
        assert stats["pool_bytes"] == 1000
        assert stats["granted_bytes"] == 0
        assert stats["peak_granted_bytes"] == 1000
        assert stats["denials"] == 1

    def test_unbounded_pool_always_grants(self):
        governor = MemoryGovernor(None)
        assert governor.try_acquire(10 ** 15)
        assert governor.available() is None
        assert governor.stats()["denials"] == 0

    def test_release_never_goes_negative(self):
        governor = MemoryGovernor(100)
        governor.release(50)
        assert governor.granted_bytes == 0
        assert governor.try_acquire(100)

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            MemoryGovernor(0)
        with pytest.raises(ValueError):
            MemoryGovernor(-1)

    def test_default_governor_reads_env_once(self, monkeypatch):
        from repro.executor.memory import (
            POOL_ENV_VAR,
            default_governor,
            reset_default_governor,
        )
        monkeypatch.setenv(POOL_ENV_VAR, "4096")
        reset_default_governor()
        try:
            governor = default_governor()
            assert governor.pool_bytes == 4096
            # The instance is cached: a later env change is not observed,
            # which is what makes the pool genuinely process-wide.
            monkeypatch.setenv(POOL_ENV_VAR, "8192")
            assert default_governor() is governor
        finally:
            reset_default_governor()


# ---------------------------------------------------------------------------
# The budget: per-query grants and the runaway watchdog
# ---------------------------------------------------------------------------


class TestMemoryBudget:
    def test_cap_denial_degrades_without_raising(self):
        budget = MemoryBudget(governor=MemoryGovernor(None),
                              max_memory_bytes=100)
        assert budget.try_reserve(80)
        assert not budget.try_reserve(40)
        assert budget.stats.reservation_denials == 1
        budget.release(80)
        assert budget.try_reserve(100)
        budget.close()

    def test_pool_denial_degrades_without_raising(self):
        governor = MemoryGovernor(100)
        budget = MemoryBudget(governor=governor)
        assert not budget.try_reserve(200)
        assert budget.stats.reservation_denials == 1
        assert governor.granted_bytes == 0
        budget.close()

    def test_require_raises_transient_on_pool_contention(self):
        budget = MemoryBudget(governor=MemoryGovernor(100))
        with pytest.raises(GovernorExhaustedError) as excinfo:
            budget.require(200, "test scratch")
        # Pool contention is the one transient resource error: concurrent
        # queries releasing their grants lets a retry succeed, so the
        # serving tier's RetryPolicy must see TransientError.
        assert isinstance(excinfo.value, TransientError)
        assert isinstance(excinfo.value, ResourceExhaustedError)
        budget.close()

    def test_require_ignores_per_query_cap(self):
        # Spilling is already the degraded path: its bounded chunk scratch
        # must not be re-denied by the cap that caused the spill.
        budget = MemoryBudget(governor=MemoryGovernor(None),
                              max_memory_bytes=1)
        budget.require(1000, "spill chunk")
        assert budget.reserved_bytes == 1000
        budget.close()

    def test_spill_roundtrip_and_counters(self):
        budget = MemoryBudget(governor=MemoryGovernor(None))
        arrays = {"a": np.arange(10), "b": np.linspace(0.0, 1.0, 10)}
        path = budget.write_spill("join", arrays)
        assert os.path.exists(path)
        loaded = MemoryBudget.read_spill(path)
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"], arrays["a"])
        assert np.array_equal(loaded["b"], arrays["b"])
        assert budget.stats.spill_chunks == 1
        assert budget.stats.spill_bytes_written == os.path.getsize(path)
        MemoryBudget.drop_spill(path)
        assert not os.path.exists(path)
        budget.close()

    def test_max_spill_bytes_is_a_permanent_wall(self):
        budget = MemoryBudget(governor=MemoryGovernor(None),
                              max_spill_bytes=10)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            budget.write_spill("sort", {"k": np.arange(100)})
        assert excinfo.value.resource == "spill"
        assert not isinstance(excinfo.value, TransientError)
        budget.close()

    def test_max_rows_is_a_permanent_wall(self):
        budget = MemoryBudget(governor=MemoryGovernor(None), max_rows=10)
        budget.check_rows(10, "TestNode")
        with pytest.raises(ResourceExhaustedError) as excinfo:
            budget.check_rows(11, "TestNode")
        assert excinfo.value.resource == "rows"
        assert not isinstance(excinfo.value, TransientError)
        budget.close()

    def test_close_releases_grants_and_spill_files(self):
        governor = MemoryGovernor(1000)
        budget = MemoryBudget(governor=governor)
        assert budget.try_reserve(500)
        path = budget.write_spill("aggregate", {"x": np.arange(5)})
        directory = os.path.dirname(path)
        budget.close()
        assert governor.granted_bytes == 0
        assert budget.stats.reserved_bytes == 0
        assert not os.path.exists(directory)
        budget.close()  # idempotent

    def test_pressure_fault_denies_try_reserve_only(self):
        plan = FaultPlan([FaultSpec(SITE_MEMORY_PRESSURE, times=1)])
        budget = MemoryBudget(governor=MemoryGovernor(None), faults=plan)
        assert not budget.try_reserve(100)
        assert budget.stats.pressure_faults == 1
        assert budget.stats.reservation_denials == 1
        # The fault fires on scripted try_reserve ordinals only; require
        # is the bounded spill scratch and must never be force-denied.
        plan2 = FaultPlan([FaultSpec(SITE_MEMORY_PRESSURE, times=0)])
        budget2 = MemoryBudget(governor=MemoryGovernor(None), faults=plan2)
        budget2.require(100, "chunk")
        assert budget2.stats.pressure_faults == 0
        budget.close()
        budget2.close()


# ---------------------------------------------------------------------------
# Spill-join correctness: every join type, NULL keys included
# ---------------------------------------------------------------------------


def _random_join_batches(rng, probe_rows: int, build_rows: int):
    probe = Batch(
        {"p.k": rng.integers(0, 20, probe_rows),
         "p.v": np.arange(probe_rows)},
        {"p.k": rng.random(probe_rows) < 0.15})
    build = Batch(
        {"b.k": rng.integers(0, 20, build_rows),
         "b.w": np.arange(build_rows) * 10},
        {"b.k": rng.random(build_rows) < 0.15})
    return probe, build


@pytest.mark.parametrize("join_type", [JoinType.INNER, JoinType.LEFT,
                                       JoinType.SEMI, JoinType.ANTI,
                                       JoinType.FULL])
@pytest.mark.parametrize("seed", [5, 17, 91])
def test_spill_join_identical_for_all_types(join_type, seed):
    """Grace-partitioned spill join == the in-memory equi-join, for every
    join type, including NULL-keyed probe and build rows."""
    rng = np.random.default_rng(seed)
    probe, build = _random_join_batches(rng, 257, 83)
    clauses = [JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))]
    want = equi_join(probe, build, clauses, join_type)
    budget = MemoryBudget(governor=MemoryGovernor(None))
    try:
        got = spill_equi_join(probe, build, clauses, join_type, budget)
    finally:
        budget.close()
    assert_batches_identical(want, got)
    assert budget.stats.spill_chunks > 0


def test_spill_join_empty_sides():
    empty_probe = Batch({"p.k": np.zeros(0, dtype=np.int64),
                         "p.v": np.zeros(0, dtype=np.int64)})
    build = Batch({"b.k": np.arange(4), "b.w": np.arange(4)})
    clauses = [JoinClause(ColumnRef("p", "k"), ColumnRef("b", "k"))]
    for join_type in (JoinType.INNER, JoinType.LEFT, JoinType.FULL):
        want = equi_join(empty_probe, build, clauses, join_type)
        budget = MemoryBudget(governor=MemoryGovernor(None))
        try:
            got = spill_equi_join(empty_probe, build, clauses, join_type,
                                  budget)
        finally:
            budget.close()
        assert_batches_identical(want, got)


# ---------------------------------------------------------------------------
# Forced spill through SQL: DISTINCT aggregation, ORDER BY NULLS FIRST/LAST
# ---------------------------------------------------------------------------


@pytest.fixture()
def nullable_db():
    """A small database with NULL-bearing group keys and sort keys."""
    from repro.storage import Catalog

    database = Database(Catalog())
    rng = np.random.default_rng(7)
    rows = 500
    values = rng.integers(0, 9, rows)
    keys = rng.integers(0, 5, rows)
    database.register_table(
        "t", {"k": keys, "v": values, "id": np.arange(rows)},
        null_masks={"k": rng.random(rows) < 0.2,
                    "v": rng.random(rows) < 0.2})
    yield database


def _forced_spill_pair(database, sql):
    """Execute ``sql`` unlimited and under a 1-byte budget; return both."""
    unlimited = database.connect(history_limit=0)
    forced = database.connect(history_limit=0, max_memory_bytes=1)
    try:
        want = unlimited.execute(sql)
        got = forced.execute(sql)
        memory = forced.executor_stats()["memory"]
        return want, got, memory
    finally:
        unlimited.close()
        forced.close()


class TestForcedSpillSql:
    def test_distinct_aggregation_spills_identically(self, nullable_db):
        sql = ("SELECT k, count(DISTINCT v) AS dv, sum(v) AS sv "
               "FROM t GROUP BY k ORDER BY k")
        want, got, memory = _forced_spill_pair(nullable_db, sql)
        assert_batches_identical(want.execution.batch, got.execution.batch)
        assert memory["aggregate_spills"] > 0

    @pytest.mark.parametrize("modifier", ["NULLS FIRST", "NULLS LAST"])
    def test_order_by_null_placement_spills_identically(self, nullable_db,
                                                        modifier):
        sql = ("SELECT id, v FROM t "
               "ORDER BY v DESC %s, id" % modifier)
        want, got, memory = _forced_spill_pair(nullable_db, sql)
        assert_batches_identical(want.execution.batch, got.execution.batch)
        assert memory["sort_spills"] > 0

    def test_forced_spill_join_identical(self, nullable_db):
        rng = np.random.default_rng(11)
        nullable_db.register_table(
            "u", {"k": rng.integers(0, 5, 40), "w": np.arange(40)},
            null_masks={"k": rng.random(40) < 0.2})
        sql = ("SELECT t.id, u.w FROM t, u WHERE t.k = u.k "
               "ORDER BY t.id, u.w")
        want, got, memory = _forced_spill_pair(nullable_db, sql)
        assert_batches_identical(want.execution.batch, got.execution.batch)
        assert memory["join_spills"] > 0


# ---------------------------------------------------------------------------
# TPC-H bit-identity: unlimited vs forced spill, per backend
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def unlimited_results(tpch_workload):
    """Ground-truth serial executions with no memory limits."""
    database = Database(tpch_workload.catalog)
    session = database.connect(history_limit=0)
    results = {number: session.execute(tpch_workload.query(number))
               for number in QUERIES}
    yield results
    session.close()


@pytest.mark.parametrize("backend", ("serial",) + BACKENDS)
def test_tpch_forced_spill_bit_identical(tpch_workload, unlimited_results,
                                         backend):
    """A 1-byte budget forces every operator down its spill path; results
    must not change on any backend, and every spill is counted."""
    database = Database(tpch_workload.catalog)
    overrides = {} if backend == "serial" else {
        "executor_backend": backend, "executor_workers": 2,
        "morsel_size": 512}
    session = database.connect(history_limit=0, max_memory_bytes=1,
                               **overrides)
    try:
        for number in QUERIES:
            got = session.execute(tpch_workload.query(number))
            assert_batches_identical(
                unlimited_results[number].execution.batch,
                got.execution.batch)
        memory = session.executor_stats()["memory"]
        assert memory["join_spills"] > 0
        assert memory["aggregate_spills"] > 0
        assert memory["sort_spills"] > 0
        assert memory["spill_chunks"] > 0
        assert memory["spill_bytes_written"] > 0
        assert memory["reservation_denials"] > 0
        # Every grant and spill file is gone once the queries finish.
        assert memory["reserved_bytes"] == 0
    finally:
        session.close()


def test_tpch_pool_below_working_set_completes(tpch_workload,
                                               unlimited_results):
    """The headline guarantee: a governor pool smaller than the working
    set completes the suite bit-identically via spill — zero OOM."""
    # The unlimited working set at this scale is a few hundred KiB; 64 KiB
    # sits well below it but above the bounded per-chunk spill scratch.
    database = Database(tpch_workload.catalog, memory_pool_bytes=64 * 1024)
    session = database.connect(history_limit=0)
    try:
        for number in QUERIES:
            got = session.execute(tpch_workload.query(number))
            assert_batches_identical(
                unlimited_results[number].execution.batch,
                got.execution.batch)
        memory = session.executor_stats()["memory"]
        assert memory["reservation_denials"] > 0
        assert memory["governor"]["pool_bytes"] == 64 * 1024
        assert memory["governor"]["granted_bytes"] == 0
    finally:
        session.close()


def test_memory_pressure_chaos_exact_counters(tpch_workload,
                                              unlimited_results):
    """Scripted memory-pressure faults force exactly the scripted number
    of spills, bit-identically."""
    plan = FaultPlan([FaultSpec(SITE_MEMORY_PRESSURE, times=3)])
    database = Database(tpch_workload.catalog, fault_plan=plan)
    session = database.connect(history_limit=0)
    try:
        for number in QUERIES:
            got = session.execute(tpch_workload.query(number))
            assert_batches_identical(
                unlimited_results[number].execution.batch,
                got.execution.batch)
        memory = session.executor_stats()["memory"]
        assert memory["pressure_faults"] == 3
        assert plan.counters()[SITE_MEMORY_PRESSURE] == 3
        spills = (memory["join_spills"] + memory["aggregate_spills"]
                  + memory["sort_spills"])
        assert spills == 3
        assert memory["shm"] == live_segment_stats()
        assert memory["shm"]["live_segments"] == 0
        assert memory["shm"]["resident_bytes"] == 0
    finally:
        session.close()


# ---------------------------------------------------------------------------
# The watchdog through the API: session-level limits and typed errors
# ---------------------------------------------------------------------------


class TestWatchdogLimits:
    def test_max_rows_kills_runaway_materialization(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        session = database.connect(history_limit=0, max_rows=10)
        try:
            with pytest.raises(ResourceExhaustedError) as excinfo:
                session.execute("SELECT l_orderkey FROM lineitem")
            assert excinfo.value.resource == "rows"
        finally:
            session.close()

    def test_max_spill_bytes_kills_runaway_spill(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        session = database.connect(history_limit=0, max_memory_bytes=1,
                                   max_spill_bytes=100)
        try:
            with pytest.raises(ResourceExhaustedError) as excinfo:
                session.execute(tpch_workload.query(3))
            assert excinfo.value.resource == "spill"
        finally:
            session.close()

    def test_database_level_limits_are_session_defaults(self, tpch_workload):
        database = Database(tpch_workload.catalog, max_rows=10)
        session = database.connect(history_limit=0)
        override = database.connect(history_limit=0, max_rows=10 ** 9)
        try:
            with pytest.raises(ResourceExhaustedError):
                session.execute("SELECT l_orderkey FROM lineitem")
            result = override.execute(
                "SELECT count(*) AS n FROM lineitem")
            assert result.execution.batch.num_rows == 1
        finally:
            session.close()
            override.close()

    def test_knob_validation(self, tpch_workload):
        database = Database(tpch_workload.catalog)
        for knob in ("max_memory_bytes", "max_spill_bytes", "max_rows"):
            with pytest.raises(ValueError):
                database.connect(**{knob: 0})


# ---------------------------------------------------------------------------
# Byte-aware result cache
# ---------------------------------------------------------------------------


class TestByteWeightedCache:
    def test_lru_evicts_by_bytes(self):
        from repro.cache import LruCache

        cache = LruCache(max_entries=100, max_bytes=100)
        cache.store("a", 1, nbytes=40)
        cache.store("b", 2, nbytes=40)
        cache.store("c", 3, nbytes=40)  # evicts "a": 120 > 100
        assert cache.lookup("a") is None
        assert cache.lookup("b") is not None
        assert cache.lookup("c") is not None
        assert cache.resident_bytes == 80

    def test_oversized_entry_is_not_cached(self):
        from repro.cache import LruCache

        cache = LruCache(max_entries=100, max_bytes=100)
        cache.store("small", 1, nbytes=40)
        cache.store("huge", 2, nbytes=1000)
        assert cache.lookup("huge") is None
        # The oversized store must not wipe resident entries to make room
        # for something that can never fit.
        assert cache.lookup("small") is not None
        assert cache.resident_bytes == 40

    def test_overwrite_replaces_weight(self):
        from repro.cache import LruCache

        cache = LruCache(max_entries=100, max_bytes=100)
        cache.store("a", 1, nbytes=60)
        cache.store("a", 2, nbytes=20)
        assert cache.resident_bytes == 20
        assert cache.lookup("a") == 2

    def test_result_cache_resident_bytes_surface(self, tpch_workload):
        database = Database(tpch_workload.catalog, result_cache_size=8,
                            result_cache_bytes=1 << 20)
        session = database.connect(history_limit=0)
        try:
            session.execute(tpch_workload.query(3))
            stats = database.cache_stats()
            assert stats.result_resident_bytes > 0
            assert stats.result_resident_bytes <= 1 << 20
        finally:
            session.close()


# ---------------------------------------------------------------------------
# Admission control: the memory dimension (queue, don't shed)
# ---------------------------------------------------------------------------


class _FakeRequest:
    def __init__(self, estimated_bytes: int = 0) -> None:
        self.estimated_bytes = estimated_bytes


class TestAdmissionMemoryDeferral:
    def test_defers_while_pool_is_short(self):
        governor = MemoryGovernor(1000)
        queue = AdmissionQueue(governor=governor)
        assert governor.try_acquire(900)
        queue.submit("t1", _FakeRequest(estimated_bytes=500))
        # The head request wants 500 of the 100 free bytes: deferred, not
        # shed — it stays queued.
        assert queue.next(timeout=0.01) is None
        assert queue.memory_deferrals > 0
        assert queue.depth == 1
        governor.release(900)
        item = queue.next(timeout=0.01)
        assert item is not None and item[0] == "t1"
        queue.release("t1")
        queue.close()

    def test_livelock_guard_dispatches_impossible_estimates(self):
        governor = MemoryGovernor(1000)
        queue = AdmissionQueue(governor=governor)
        assert governor.try_acquire(900)
        # 5000 > the whole pool: waiting can never help, so the request
        # dispatches and the executor's budget degrades it to spill.
        queue.submit("t1", _FakeRequest(estimated_bytes=5000))
        item = queue.next(timeout=0.01)
        assert item is not None
        queue.release("t1")
        governor.release(900)
        queue.close()

    def test_zero_estimate_never_defers(self):
        governor = MemoryGovernor(1000)
        queue = AdmissionQueue(governor=governor)
        assert governor.try_acquire(1000)
        queue.submit("t1", _FakeRequest(estimated_bytes=0))
        assert queue.next(timeout=0.01) is not None
        queue.release("t1")
        governor.release(1000)
        queue.close()

    def test_deferred_tenant_does_not_block_others(self):
        governor = MemoryGovernor(1000)
        queue = AdmissionQueue(governor=governor)
        assert governor.try_acquire(900)
        queue.submit("hungry", _FakeRequest(estimated_bytes=500))
        queue.submit("small", _FakeRequest(estimated_bytes=50))
        item = queue.next(timeout=0.01)
        assert item is not None and item[0] == "small"
        queue.release("small")
        governor.release(900)
        queue.close()

    def test_serving_estimates_come_from_catalog_statistics(self,
                                                            tpch_workload):
        import asyncio

        from repro.serving import AsyncDatabase

        database = Database(tpch_workload.catalog)
        block = database.bind("SELECT count(*) AS n FROM lineitem")

        async def scenario():
            async with AsyncDatabase(database, workers=1) as serving:
                estimate = serving._estimate_bytes(block)
                expected = sum(
                    database.catalog.statistics(rel.table_name)
                    .estimated_bytes for rel in block.relations)
                assert estimate == expected > 0
                assert serving._estimate_bytes("SELECT 1 AS x") == 0

        asyncio.run(scenario())
