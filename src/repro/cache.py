"""A small, lock-guarded LRU cache shared by the planning layers.

Both cross-query caches — the :class:`repro.api.Database` plan cache and the
enumerator's DPccp sequence cache
(:class:`repro.core.enumerator.EnumerationSequenceCache`) — need the same
thing: bounded, least-recently-used keyed storage with hit/miss counters,
safe under concurrent sessions.  One implementation lives here so the two
cannot drift.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional


class LruCache:
    """Bounded LRU mapping with hit/miss counters and internal locking.

    ``max_entries <= 0`` means disabled: lookups miss and stores are
    discarded, so callers can pass a size of 0 without special-casing.

    Bounds are entry-count *and* optionally byte-weighted: pass
    ``max_bytes`` and give each store its actual weight via
    ``store(key, value, nbytes=...)`` and eviction drops least-recently-used
    entries until the measured bytes fit — the memory-governance story for
    caches holding real data (result batches) rather than small plan
    objects.  An entry weighing more than the whole byte budget is not
    stored at all, keeping :attr:`resident_bytes` a hard bound.
    """

    def __init__(self, max_entries: int = 128,
                 max_bytes: Optional[int] = None) -> None:
        self.max_entries = max_entries
        #: Byte cap over all resident entries (``None`` = unweighted).
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        #: Entries dropped by invalidation (:meth:`evict_all` /
        #: :meth:`evict_if`), excluding LRU-capacity replacement.
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._weights: Dict[Hashable, int] = {}
        self._resident_bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        """Total declared bytes of the resident entries."""
        with self._lock:
            return self._resident_bytes

    def _drop_locked(self, key: Hashable) -> None:
        del self._entries[key]
        self._resident_bytes -= self._weights.pop(key, 0)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (marked most-recent), counting hit/miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def store(self, key: Hashable, value: Any, nbytes: int = 0) -> None:
        """Insert or overwrite a value, evicting LRU entries beyond the caps.

        ``nbytes`` is the entry's declared weight against :attr:`max_bytes`
        (ignored when the cache is unweighted).  A value too large for the
        whole byte budget is silently not cached — storing it would evict
        everything and still break the bound.
        """
        if self.max_entries <= 0:
            return
        nbytes = max(int(nbytes), 0)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return
        with self._lock:
            if key in self._entries:
                self._resident_bytes -= self._weights.pop(key, 0)
                self._entries[key] = value
                self._entries.move_to_end(key)
            else:
                while len(self._entries) >= self.max_entries:
                    oldest, _ = self._entries.popitem(last=False)
                    self._resident_bytes -= self._weights.pop(oldest, 0)
                self._entries[key] = value
            if self.max_bytes is not None:
                while self._entries \
                        and self._resident_bytes + nbytes > self.max_bytes:
                    oldest, _ = self._entries.popitem(last=False)
                    if oldest == key:
                        # Never evict the entry being stored; everything
                        # older is already gone, so the new weight fits.
                        self._entries[key] = value
                        self._entries.move_to_end(key)
                        break
                    self._resident_bytes -= self._weights.pop(oldest, 0)
            if nbytes:
                self._weights[key] = nbytes
                self._resident_bytes += nbytes

    def evict_all(self) -> int:
        """Drop all entries but keep the lifetime hit/miss counters.

        Returns the number of entries dropped (also added to
        :attr:`evictions`).
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._weights.clear()
            self._resident_bytes = 0
            self.evictions += dropped
            return dropped

    def evict_if(self, predicate: Callable[[Hashable, Any], bool]) -> int:
        """Drop the entries for which ``predicate(key, value)`` is true.

        Used for targeted invalidation (e.g. dropping only the plans that
        depend on one re-registered table).  Returns the number of entries
        dropped (also added to :attr:`evictions`).
        """
        with self._lock:
            doomed = [key for key, value in self._entries.items()
                      if predicate(key, value)]
            for key in doomed:
                self._drop_locked(key)
            self.evictions += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._weights.clear()
            self._resident_bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
