"""A small, lock-guarded LRU cache shared by the planning layers.

Both cross-query caches — the :class:`repro.api.Database` plan cache and the
enumerator's DPccp sequence cache
(:class:`repro.core.enumerator.EnumerationSequenceCache`) — need the same
thing: bounded, least-recently-used keyed storage with hit/miss counters,
safe under concurrent sessions.  One implementation lives here so the two
cannot drift.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional


class LruCache:
    """Bounded LRU mapping with hit/miss counters and internal locking.

    ``max_entries <= 0`` means disabled: lookups miss and stores are
    discarded, so callers can pass a size of 0 without special-casing.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: Entries dropped by invalidation (:meth:`evict_all` /
        #: :meth:`evict_if`), excluding LRU-capacity replacement.
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (marked most-recent), counting hit/miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def store(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite a value, evicting LRU entries beyond the cap."""
        if self.max_entries <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                return
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
            self._entries[key] = value

    def evict_all(self) -> int:
        """Drop all entries but keep the lifetime hit/miss counters.

        Returns the number of entries dropped (also added to
        :attr:`evictions`).
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.evictions += dropped
            return dropped

    def evict_if(self, predicate: Callable[[Hashable, Any], bool]) -> int:
        """Drop the entries for which ``predicate(key, value)`` is true.

        Used for targeted invalidation (e.g. dropping only the plans that
        depend on one re-registered table).  Returns the number of entries
        dropped (also added to :attr:`evictions`).
        """
        with self._lock:
            doomed = [key for key, value in self._entries.items()
                      if predicate(key, value)]
            for key in doomed:
                del self._entries[key]
            self.evictions += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
