"""Dependency-free text helpers shared by examples and experiments.

Lives outside :mod:`repro.experiments` so the session API facade
(:mod:`repro.api`) can re-export :func:`format_table` without importing the
experiment harness (which itself builds on the API).
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table (used by examples and EXPERIMENTS.md)."""
    columns = [list(map(str, column)) for column in
               zip(*([headers] + [list(map(str, row)) for row in rows]))] \
        if rows else [[str(h)] for h in headers]
    widths = [max(len(value) for value in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def percent_reduction(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
