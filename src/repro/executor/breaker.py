"""A circuit breaker over the process backend.

The process backend buys GIL escape at the price of a whole class of
failures the thread backend cannot have: spawn-worker deaths, broken pools,
shared-memory pressure.  When those failures keep happening — a host under
memory pressure OOM-killing workers, ``/dev/shm`` exhausted — retrying the
process path on every operator just burns pool rebuilds.  The breaker makes
the executor *stop trying*: after ``failure_threshold`` consecutive
transient process-dispatch failures it trips **open** and every
process-eligible operator silently runs on the thread backend instead
(results are identical; only the parallelism substrate changes).  After
``cooldown`` degraded dispatches it goes **half-open** and lets exactly one
probe dispatch through; a successful probe closes the breaker, a failed one
re-trips it.

Cooldown is counted in dispatch decisions, not wall-clock seconds, so
breaker behaviour is deterministic under the fault-injection chaos suite —
the same :class:`~repro.faults.FaultPlan` always produces the same
open/half-open/closed trajectory and the same counter values in
``session.executor_stats()["circuit_breaker"]``.

Thread safety: one breaker lives on each :class:`~repro.executor.context.
ExecutionContext`, and a context may be driven concurrently by the serving
tier's worker threads, so every transition happens under a single lock.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Count-based breaker gating process-backend dispatch.

    Args:
        failure_threshold: Consecutive transient failures (while closed)
            that trip the breaker open.
        cooldown: Degraded dispatch decisions to sit out while open before
            allowing a half-open probe.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1, got %r"
                             % failure_threshold)
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0, got %r" % cooldown)
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        self._failures = 0
        self._trips = 0
        self._probes = 0
        self._degraded = 0
        self._recoveries = 0

    @property
    def state(self) -> str:
        """Current state: ``closed`` | ``open`` | ``half-open``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """One dispatch decision: may this operator use the process backend?

        Closed: yes.  Open: no (and one cooldown tick is consumed); once the
        cooldown is spent the breaker moves to half-open and admits the
        probe.  Half-open: yes — the probe's outcome decides the next state.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                if self._cooldown_remaining > 0:
                    self._cooldown_remaining -= 1
                    self._degraded += 1
                    return False
                self._state = STATE_HALF_OPEN
                self._probes += 1
            return True

    def record_failure(self) -> None:
        """A process dispatch failed with a transient error."""
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self._trip_locked()
            elif (self._state == STATE_CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._trip_locked()

    def record_success(self) -> None:
        """A process dispatch completed; closes the breaker after a probe."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == STATE_HALF_OPEN:
                self._state = STATE_CLOSED
                self._recoveries += 1

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._trips += 1
        self._cooldown_remaining = self.cooldown

    def stats(self) -> Dict[str, object]:
        """Snapshot for ``executor_stats()``; all counters are cumulative."""
        with self._lock:
            return {
                "state": self._state,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "cooldown_remaining": self._cooldown_remaining,
                "consecutive_failures": self._consecutive_failures,
                "failures": self._failures,
                "trips": self._trips,
                "probes": self._probes,
                "degraded_dispatches": self._degraded,
                "recoveries": self._recoveries,
            }

    def __repr__(self) -> str:
        return ("CircuitBreaker(state=%r, failures=%d, trips=%d)"
                % (self.state, self._failures, self._trips))
