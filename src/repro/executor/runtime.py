"""The plan interpreter.

:class:`Executor` walks a physical plan produced by the optimizer and runs it
against the catalog's materialised tables.  Hash joins execute their build
(inner) side first, build any Bloom filters the plan assigned to them and
publish those filters in the :class:`~repro.executor.context.ExecutionContext`
before the probe (outer) side — and therefore any Bloom-filtered scans below
it — is executed.  This mirrors the paper's runtime rule that "table scans
wait for all Bloom filter partitions to become available before scanning can
proceed" (Section 3.9).

With ``executor_workers > 1`` on the context, every operator runs
*morsel-at-a-time*: scans and projections split into per-partition row spans
(:meth:`~repro.storage.table.Table.morsel_spans`), hash joins probe the
memoized build-side index one probe morsel at a time, aggregation computes
fixed-width segment partials and sorts form per-morsel runs merged pairwise.
Morsels run on the shared thread pool or — under
``executor_backend="process"`` — in a spawn-based process pool that escapes
the GIL, with bulk arrays shipped through ``multiprocessing.shared_memory``
(zero-copy worker views; see ``repro.executor.shm``).  On every path the
pieces recombine in canonical span order, so output batches and all
simulated metrics are bit-identical to the serial operators (see
``docs/executor.md``).  The Bloom barrier is preserved: a scan fetches every
filter it depends on *before* dispatching its first morsel.

Every operator records its observed output cardinality and charges work units
using the optimizer's cost constants with *actual* row counts, which yields
the deterministic simulated latency used throughout the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..bloom import BloomFilter, PartitionedBloomFilter
from ..errors import QueryCancelledError, TransientError
from ..faults import SITE_MORSEL_DISPATCH
from ..core.expressions import (
    ColumnRef,
    Predicate,
    ScalarExpression,
    fill_masked,
)
from ..core.plans import (
    AggregateNode,
    ExchangeKind,
    ExchangeNode,
    JoinMethod,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..core.properties import DistributionKind
from .aggregate import (
    CallData,
    Partial,
    aggregate_batch,
    compute_segment_partials,
    export_partials_task,
)
from .backend import resolve_backend
from .batch import Batch
from .cancel import CancelToken
from .context import ExecutionContext, FilterScope
from .joins import (
    build_probe_state,
    concat_pair_results,
    cross_join,
    estimate_build_bytes,
    export_probe_task,
    probe_span_pairs,
    spill_equi_join,
    stitch_equi_join,
)
from .memory import MemoryBudget
from .metrics import ExecutionMetrics
from .shm import ShmArena
from .sort import (
    combined_sort_key,
    estimate_sort_bytes,
    merge_run_list,
    sort_run,
    spill_sort_order,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.table import Table


@dataclass
class ExecutionResult:
    """Output rows plus runtime metrics of one plan execution."""

    batch: Batch
    metrics: ExecutionMetrics
    plan: PlanNode

    @property
    def num_rows(self) -> int:
        return self.batch.num_rows

    @property
    def simulated_latency(self) -> float:
        return self.metrics.simulated_latency


class Executor:
    """Interprets physical plans against materialised catalog tables."""

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context
        self.metrics = ExecutionMetrics()
        #: The filter scope of the current/last execution; assigned by
        #: :meth:`execute` (pass ``filters=`` there to supply your own scope
        #: — anything registered on a scope created before ``execute`` would
        #: be discarded, so none is allocated here).
        self.filters: Optional[FilterScope] = None
        #: The cancel token of the current execution; assigned by
        #: :meth:`execute` (per-call token, falling back to the context's).
        self.cancel: Optional[CancelToken] = None
        #: Shared-memory arena of the current execution (process backend
        #: only); created lazily by :meth:`_arena`, closed by
        #: :meth:`execute` when the query finishes.
        self._shm_arena: Optional[ShmArena] = None
        #: The current execution's memory budget — its grant from the
        #: context's governor plus the runaway watchdog; created and closed
        #: by :meth:`execute` (see :mod:`repro.executor.memory`).
        self._budget: Optional[MemoryBudget] = None

    # ------------------------------------------------------------------

    def execute(self, plan: PlanNode,
                filters: Optional[FilterScope] = None,
                cancel: Optional[CancelToken] = None) -> ExecutionResult:
        """Execute ``plan`` and return its result batch and metrics.

        Each call runs in a fresh :class:`FilterScope` by default, so
        concurrent executions sharing one context never see each other's
        published Bloom filters.  Pass ``filters`` to supply a pre-populated
        scope (e.g. filters built by an earlier run you want reused).

        ``cancel`` is the request's cooperative
        :class:`~repro.executor.cancel.CancelToken` (falling back to the
        context's default token): it is polled at every operator boundary
        and before every morsel, so a tripped token stops the query within
        one morsel of work with a typed
        :class:`~repro.errors.QueryCancelledError`.
        """
        self.metrics = ExecutionMetrics()
        self.filters = filters if filters is not None \
            else self.context.new_filter_scope()
        self.cancel = cancel if cancel is not None \
            else self.context.cancel_token
        self._budget = MemoryBudget(
            governor=self.context.governor(),
            max_memory_bytes=self.context.max_memory_bytes,
            max_spill_bytes=self.context.max_spill_bytes,
            max_rows=self.context.max_rows,
            spill_dir=self.context.spill_dir,
            faults=self.context.fault_plan,
            stats=self.context.memory_stats)
        started = time.perf_counter()
        try:
            batch = self._execute(plan)
        finally:
            if self._shm_arena is not None:
                self.context.pools.count_shm_bytes(
                    self._shm_arena.bytes_exported)
                self.context.pools.count_shm_fallbacks(
                    self._shm_arena.fallback_count)
                self._shm_arena.close()
                self._shm_arena = None
            # The budget's close releases every grant and removes the
            # spill directory — also on error paths, so a failed query
            # leaves neither governor bytes nor spill files behind.
            self._budget.close()
            self._budget = None
        self.metrics.wall_time_seconds = time.perf_counter() - started
        return ExecutionResult(batch=batch, metrics=self.metrics, plan=plan)

    # ------------------------------------------------------------------

    def _execute(self, node: PlanNode) -> Batch:
        if self.cancel is not None:
            # The operator-boundary cancellation checkpoint: one event check
            # per plan node on the live path.
            self.cancel.check()
        if isinstance(node, ScanNode):
            batch = self._execute_scan(node)
        elif isinstance(node, JoinNode):
            batch = self._execute_join(node)
        elif isinstance(node, ExchangeNode):
            batch = self._execute_exchange(node)
        elif isinstance(node, AggregateNode):
            batch = self._execute_aggregate(node)
        elif isinstance(node, ProjectNode):
            batch = self._execute_project(node)
        elif isinstance(node, SortNode):
            batch = self._execute_sort(node)
        elif isinstance(node, LimitNode):
            batch = self._execute_limit(node)
        else:
            raise TypeError("executor does not support plan node %r"
                            % type(node))
        if self._budget is not None:
            # The runaway watchdog: every materialized operator output is
            # checked against the per-query max_rows limit.
            self._budget.check_rows(batch.num_rows, type(node).__name__)
        return batch

    def _poll(self) -> None:
        """Per-spill-chunk cancellation checkpoint for degraded operators."""
        if self.cancel is not None:
            self.cancel.check()

    # -- morsel helpers ----------------------------------------------------

    def _morsel_workers(self) -> int:
        """Effective morsel worker count (``<= 1`` = serial operators)."""
        return max(int(self.context.executor_workers), 0)

    def _resolved_backend(self) -> str:
        """The concrete morsel backend this execution dispatches to."""
        return resolve_backend(self.context.executor_backend)

    def _process_backend_active(self) -> bool:
        """True when morsels should run in the GIL-escape process pool.

        One call is one dispatch decision for the context's circuit
        breaker: while the breaker is open the operator silently runs on
        the thread backend instead (identical results, different
        parallelism substrate), and the call that exhausts the cooldown
        admits the half-open probe.
        """
        if self._morsel_workers() <= 1 \
                or self._resolved_backend() != "process":
            return False
        return self.context.breaker.allow()

    def _process_map(self, kernel: str, args_list: Sequence[tuple]) -> List:
        """Supervised process dispatch, reporting outcome to the breaker.

        Transient failures (worker crash that supervision could not absorb,
        shm pressure in a worker, injected faults) count toward tripping the
        breaker; cancellation and programming errors do not.
        """
        breaker = self.context.breaker
        try:
            results = self.context.pools.process_map(
                kernel, args_list, self.cancel, self._morsel_workers(),
                faults=self.context.fault_plan)
        except QueryCancelledError:
            raise
        except TransientError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return results

    def _arena(self) -> ShmArena:
        """This execution's shared-memory arena (created on first use)."""
        if self._shm_arena is None:
            self._shm_arena = ShmArena(faults=self.context.fault_plan)
        return self._shm_arena

    def _map_ordered(self, fn: Callable, items: Sequence) -> List:
        """Run ``fn`` over ``items`` on the morsel thread pool, in order.

        Submission order is preserved, so concatenating the results
        reproduces the serial output exactly; the first worker exception
        propagates to the caller.

        With a cancel token on the execution, every morsel re-checks the
        token before doing any work — a request abandoned mid-operator
        therefore stops within one morsel: in-flight morsels finish, queued
        ones raise immediately and the error propagates from the first
        failing future.
        """
        return self.context.pools.thread_map(fn, items, self.cancel,
                                             self._morsel_workers(),
                                             faults=self.context.fault_plan)

    def _segment_map(self, fn: Callable, items: Sequence) -> List:
        """Map ``fn`` over morsel spans on whichever path is active.

        Parallel executions dispatch to the shared thread pool; serial
        executions run inline but still poll the cancel token per item, so
        "stops within one morsel" holds for joins, aggregation and sort
        even at ``executor_workers <= 1``.
        """
        if self._morsel_workers() > 1 and len(items) > 1:
            return self._map_ordered(fn, items)
        faults = self.context.fault_plan
        results = []
        for item in items:
            if self.cancel is not None:
                self.cancel.check()
            if faults is not None:
                faults.check(SITE_MORSEL_DISPATCH)
            results.append(fn(item))
        return results

    # -- scans ------------------------------------------------------------

    def _execute_scan(self, node: ScanNode) -> Batch:
        cost_model = self.context.cost_model
        table = self.context.catalog.table(node.table_name)
        # Morsels only pay off when there is per-row work to spread; a bare
        # scan with nothing to filter stays on the zero-copy serial path
        # instead of concatenating unfiltered slices back together.
        spans = (table.morsel_spans(self.context.morsel_size)
                 if self._morsel_workers() > 1
                 and (node.predicates or node.bloom_filters) else [])
        if len(spans) > 1:
            return self._execute_scan_morsels(node, table, spans)
        batch = Batch.from_table(node.alias, table)
        base_rows = batch.num_rows
        work = cost_model.seq_scan(base_rows, node.row_width,
                                   len(node.predicates)).total
        self.metrics.rows_scanned += base_rows

        for predicate in node.predicates:
            batch = self._apply_predicate(batch, predicate)

        pre_bloom_rows = batch.num_rows
        for spec in node.bloom_filters:
            bloom = self.filters.get_filter(spec.filter_id)
            values, null_mask = batch.resolve_masked(spec.apply_column)
            mask = bloom.contains_many(values)
            if null_mask is not None:
                # A NULL key can never match the transferred join predicate.
                mask = mask & ~null_mask
            work += cost_model.bloom_apply(batch.num_rows, 1).total
            self.metrics.bloom_probes += batch.num_rows
            batch = batch.filter(mask)
            self.metrics.bloom_filters_applied += 1
        self.metrics.rows_bloom_filtered += pre_bloom_rows - batch.num_rows

        # Scan filtering and Bloom probing are row-local: all of the work
        # spreads over morsels.
        self.metrics.record(node, batch.num_rows, work, input_rows=base_rows,
                            parallel_work=work, parallel_rows=base_rows)
        return batch

    def _execute_scan_morsels(self, node: ScanNode, table: "Table",
                              spans: Sequence[Tuple[int, int]]) -> Batch:
        """Morsel-parallel scan: filter + Bloom-probe each span, then concat.

        The Bloom barrier sits in front of the dispatch: every filter this
        scan applies is fetched *before* the first morsel starts (the paper's
        "table scans wait for all Bloom filter partitions" rule, Section
        3.9); a missing filter raises exactly as on the serial path.  Work
        units and probe counters are charged from the per-stage row totals,
        which equal the serial stage row counts because predicate and Bloom
        filtering are row-local — the simulated latency is unchanged by the
        parallel path.
        """
        cost_model = self.context.cost_model
        blooms = [(spec, self.filters.get_filter(spec.filter_id))
                  for spec in node.bloom_filters]

        def scan_span(span: Tuple[int, int],
                      ) -> Tuple[Batch, int, List[int]]:
            batch = Batch.from_table(node.alias, table, span[0], span[1])
            for predicate in node.predicates:
                batch = self._apply_predicate(batch, predicate)
            pre_rows = batch.num_rows
            stage_rows = []
            for spec, bloom in blooms:
                stage_rows.append(batch.num_rows)
                values, null_mask = batch.resolve_masked(spec.apply_column)
                mask = bloom.contains_many(values)
                if null_mask is not None:
                    mask = mask & ~null_mask
                batch = batch.filter(mask)
            return batch, pre_rows, stage_rows

        results = self._map_ordered(scan_span, spans)
        base_rows = table.num_rows
        work = cost_model.seq_scan(base_rows, node.row_width,
                                   len(node.predicates)).total
        self.metrics.rows_scanned += base_rows
        pre_bloom_rows = sum(pre for _, pre, _ in results)
        for stage, _ in enumerate(blooms):
            stage_total = sum(stages[stage] for _, _, stages in results)
            work += cost_model.bloom_apply(stage_total, 1).total
            self.metrics.bloom_probes += stage_total
            self.metrics.bloom_filters_applied += 1
        batch = Batch.concat([piece for piece, _, _ in results])
        self.metrics.rows_bloom_filtered += pre_bloom_rows - batch.num_rows
        self.metrics.record(node, batch.num_rows, work, input_rows=base_rows,
                            parallel_work=work, parallel_rows=base_rows)
        return batch

    # -- joins ---------------------------------------------------------------

    def _execute_join(self, node: JoinNode) -> Batch:
        cost_model = self.context.cost_model
        inner_batch = self._execute(node.inner)
        self._build_bloom_filters(node, inner_batch)
        outer_batch = self._execute(node.outer)

        if node.clauses:
            # Hash, merge and (clause-carrying) nested-loop joins all run
            # the factorized equi-join kernel; they differ only in charged
            # cost.  The probe side is morselised below.
            joined = self._equi_join_morsels(outer_batch, inner_batch, node)
        else:
            joined = cross_join(outer_batch, inner_batch,
                                self.context.max_cross_join_rows)

        for predicate in node.residual_predicates:
            joined = self._apply_predicate(joined, predicate)

        build_rows = inner_batch.num_rows
        if (node.inner is not None
                and node.inner.properties.distribution.kind is DistributionKind.BROADCAST):
            build_rows *= self.context.degree_of_parallelism
        if node.method is JoinMethod.HASH:
            cost = cost_model.hash_join(build_rows, outer_batch.num_rows,
                                        joined.num_rows, len(node.clauses))
        elif node.method is JoinMethod.MERGE:
            cost = cost_model.merge_join(outer_batch.num_rows,
                                         inner_batch.num_rows,
                                         joined.num_rows)
        else:
            cost = cost_model.nested_loop(outer_batch.num_rows,
                                          inner_batch.num_rows,
                                          joined.num_rows)
        # The probe + emit share spreads over probe morsels; the build
        # (startup) share stays serial.  Both derive from row counts alone,
        # so serial and parallel runs record identical metrics.
        parallel_work = (cost.total - cost.startup) if node.clauses else 0.0
        self.metrics.rows_hash_built += build_rows
        self.metrics.rows_hash_probed += outer_batch.num_rows
        self.metrics.record(node, joined.num_rows, cost.total,
                            input_rows=outer_batch.num_rows + inner_batch.num_rows,
                            parallel_work=parallel_work,
                            parallel_rows=outer_batch.num_rows)
        return joined

    def _equi_join_morsels(self, outer: Batch, inner: Batch,
                           node: JoinNode) -> Batch:
        """Equi-join with the probe side morselised.

        The build side is factorized exactly once (memoized on the inner
        batch); probe morsels run serially with per-morsel cancel polling,
        on the thread pool, or in worker processes over shared-memory
        columns.  Per-span pair results concatenate to the whole-batch pair
        list bit-for-bit, and the serial stitch tail handles SEMI/ANTI
        filtering and LEFT/FULL padding identically on every path.

        The build side's bytes are reserved from the query's memory budget
        first; a denied reservation (cap, pool pressure or the scripted
        ``memory-pressure`` fault) degrades to the Grace-style partitioned
        :func:`~repro.executor.joins.spill_equi_join`, which is
        bit-identical by construction.
        """
        budget = self._budget
        build_bytes = estimate_build_bytes(inner)
        reserved = budget.try_reserve(build_bytes) \
            if budget is not None else True
        if not reserved:
            assert budget is not None  # a denial implies a budget
            return spill_equi_join(outer, inner, node.clauses,
                                   node.join_type, budget, poll=self._poll)
        try:
            index, probe_cols, probe_null = build_probe_state(outer, inner,
                                                              node.clauses)
            spans = outer.spans(self.context.morsel_size)
            if len(spans) > 1:
                if self._process_backend_active():
                    payload = export_probe_task(index, probe_cols, probe_null,
                                                self._arena())
                    results = self._process_map(
                        "repro.executor.joins:probe_morsel_kernel",
                        [(payload, start, stop) for start, stop in spans])
                else:
                    results = self._segment_map(
                        lambda span: probe_span_pairs(index, probe_cols,
                                                      probe_null, *span),
                        spans)
                probe_idx, build_idx, counts = concat_pair_results(results)
            else:
                probe_idx, build_idx, counts = index.probe(probe_cols,
                                                           probe_null)
            return stitch_equi_join(outer, inner, node.join_type,
                                    probe_idx, build_idx, counts)
        finally:
            if budget is not None:
                budget.release(build_bytes)

    def _build_bloom_filters(self, node: JoinNode, inner_batch: Batch) -> None:
        """Build and publish the Bloom filters this hash join is charged with.

        Filters are populated from the batch's memoized *distinct* valid
        build keys (:meth:`Batch.unique_valid`): a Bloom filter is a set, so
        inserting each distinct key once produces the identical bit vector —
        the filter is already sized by the distinct count — while a build
        column shared by several filters (or reused by the join kernel's
        factorization) is deduplicated only once per batch.  Work units keep
        charging the full valid row count, exactly as the row-at-a-time
        build would.
        """
        for spec in node.built_filters:
            if self.filters.has_filter(spec.filter_id):
                continue
            key = "%s.%s" % (spec.build_column.relation,
                             spec.build_column.column)
            null_mask = inner_batch.null_mask(key)
            valid_rows = (inner_batch.num_rows if null_mask is None
                          else int((~null_mask).sum()))
            values = inner_batch.unique_valid(key)
            if self.context.bloom_partitions > 1:
                partitioned = PartitionedBloomFilter.from_values(
                    values, self.context.bloom_partitions,
                    bits_per_key=self.context.bloom_bits_per_key)
                bloom = partitioned.merge()
                self.filters.register_filter(spec.filter_id, bloom, partitioned)
            else:
                bloom = BloomFilter.from_values(
                    values, bits_per_key=self.context.bloom_bits_per_key)
                self.filters.register_filter(spec.filter_id, bloom)
            self.metrics.bloom_filters_built += 1
            build_work = self.context.cost_model.bloom_build(valid_rows, 1).total
            self.metrics.total_work_units += build_work

    # -- exchanges --------------------------------------------------------------

    def _execute_exchange(self, node: ExchangeNode) -> Batch:
        cost_model = self.context.cost_model
        batch = self._execute(node.child)
        if node.kind is ExchangeKind.BROADCAST:
            work = cost_model.broadcast(batch.num_rows, node.row_width).total
            bytes_moved = batch.num_rows * node.row_width * \
                self.context.degree_of_parallelism
        elif node.kind is ExchangeKind.REDISTRIBUTE:
            work = cost_model.redistribute(batch.num_rows, node.row_width).total
            bytes_moved = batch.num_rows * node.row_width
        else:
            work = cost_model.gather(batch.num_rows, node.row_width).total
            bytes_moved = batch.num_rows * node.row_width
        self.metrics.rows_exchanged += batch.num_rows
        self.metrics.bytes_exchanged += bytes_moved
        self.metrics.record(node, batch.num_rows, work,
                            input_rows=batch.num_rows)
        return batch

    # -- aggregation / presentation -----------------------------------------------

    def _execute_aggregate(self, node: AggregateNode) -> Batch:
        batch = self._execute(node.child)
        result = aggregate_batch(batch, node.group_by, node.aggregates,
                                 partials_map=self._partials_map(),
                                 budget=self._budget, poll=self._poll)
        work = self.context.cost_model.aggregate(batch.num_rows,
                                                 result.num_rows).total
        # The per-input-row transition work spreads over segment morsels;
        # the per-group emit / merge share stays serial.
        parallel_work = self.context.cost_model.aggregate(
            batch.num_rows, 0).total
        self.metrics.record(node, result.num_rows, work,
                            input_rows=batch.num_rows,
                            parallel_work=min(parallel_work, work),
                            parallel_rows=batch.num_rows)
        return result

    def _partials_map(self) -> Callable[
            [Sequence[CallData], np.ndarray, int, Sequence[Tuple[int, int]]],
            List[List[Partial]]]:
        """The backend hook :func:`aggregate_batch` fans partials out with.

        Thread / serial executions map :func:`compute_segment_partials`
        through :meth:`_segment_map` (per-segment cancel polling included);
        the process backend exports the operand arrays and group ids into
        shared memory once and runs the segment kernel in worker processes.
        """
        if self._process_backend_active():
            def process_partials(calls_data: Sequence[CallData],
                                 group_ids: np.ndarray, num_groups: int,
                                 spans: Sequence[Tuple[int, int]],
                                 ) -> List[List[Partial]]:
                payload = export_partials_task(self._arena(), calls_data,
                                               group_ids, num_groups)
                return self._process_map(
                    "repro.executor.aggregate:segment_partials_kernel",
                    [(payload, start, stop) for start, stop in spans])
            return process_partials

        def local_partials(calls_data: Sequence[CallData],
                           group_ids: np.ndarray, num_groups: int,
                           spans: Sequence[Tuple[int, int]],
                           ) -> List[List[Partial]]:
            return self._segment_map(
                lambda span: compute_segment_partials(
                    calls_data, group_ids, num_groups, *span),
                spans)
        return local_partials

    def _execute_project(self, node: ProjectNode) -> Batch:
        batch = self._execute(node.child)
        morsel_size = max(int(self.context.morsel_size), 1)
        if self._morsel_workers() > 1 and batch.num_rows > morsel_size:
            # Projection is row-local, so morsels project independently and
            # concatenate back in span order; a column is mask-free iff no
            # span produced a NULL, matching the serial normalization.
            spans = [(start, min(start + morsel_size, batch.num_rows))
                     for start in range(0, batch.num_rows, morsel_size)]
            pieces = self._map_ordered(
                lambda span: self._project_batch(node,
                                                 batch.row_span(*span)),
                spans)
            result = Batch.concat(pieces)
        else:
            result = self._project_batch(node, batch)
        work = self.context.cost_model.project(batch.num_rows,
                                               len(node.items)).total
        self.metrics.record(node, result.num_rows, work,
                            input_rows=batch.num_rows,
                            parallel_work=work,
                            parallel_rows=batch.num_rows)
        return result

    @staticmethod
    def _project_batch(node: ProjectNode, batch: Batch) -> Batch:
        """Evaluate the projection items over one batch (or morsel) of rows."""
        resolve = batch.masked_resolver()
        columns: Dict[str, np.ndarray] = {}
        masks: Dict[str, Optional[np.ndarray]] = {}
        for item in node.items:
            values, mask = item.expression.evaluate_masked(resolve)
            values = np.asarray(values)
            if values.ndim == 0:
                values = np.full(batch.num_rows, values)
            if mask is not None:
                mask = np.broadcast_to(np.asarray(mask, dtype=bool),
                                       values.shape)
                if not mask.any():
                    mask = None  # keep NULL-free projections mask-free
            columns[item.name] = values
            masks[item.name] = mask
        return Batch(columns, masks)

    def _execute_sort(self, node: SortNode) -> Batch:
        batch = self._execute(node.child)
        if batch.num_rows and node.order_by:
            keys = []
            for item in reversed(node.order_by):
                values, null_mask = self._tolerant_eval(item.expression, batch)
                if null_mask is not None and not null_mask.any():
                    null_mask = None  # filters upstream dropped every NULL
                if null_mask is not None:
                    # Canonicalise filler under the mask so NaN/None never
                    # leaks into the sort comparison.
                    values = fill_masked(values, null_mask)
                if item.descending:
                    # Rank-invert instead of negating the values: exact for
                    # every dtype — strings get a descending order at all,
                    # and int64 keys never round-trip through lossy float64.
                    _, inverse = np.unique(values, return_inverse=True)
                    values = -inverse
                keys.append(values)
                if null_mask is not None:
                    # The mask outranks the values: NULLs sort last by
                    # default, first when the item says NULLS FIRST.
                    keys.append(~null_mask if item.nulls_first else null_mask)
            order = self._sort_order(keys, batch.num_rows)
            batch = batch.take(order)
        if node.drop_keys:
            # Hidden sort keys carried through the projection solely for
            # this sort (ORDER BY on a non-projected column) are dropped
            # now that the rows are ordered.
            hidden = set(node.drop_keys)
            batch = batch.select([key for key in batch.keys
                                  if key not in hidden])
        work = self.context.cost_model.sort(batch.num_rows).total
        # Run formation spreads over morsels; the final merge cascade is
        # charged serially at the merge-join per-row rate.
        merge_share = batch.num_rows * \
            self.context.cost_model.params.merge_row_cost
        parallel_work = max(work - merge_share, 0.0) if node.order_by else 0.0
        self.metrics.record(node, batch.num_rows, work,
                            input_rows=batch.num_rows,
                            parallel_work=parallel_work,
                            parallel_rows=batch.num_rows)
        return batch

    def _sort_order(self, keys: List[np.ndarray], num_rows: int) -> np.ndarray:
        """The sort permutation: serial ``lexsort`` or parallel merge sort.

        The parallel path folds the key arrays into one int64 rank key,
        stable-sorts morsel runs (threads, or worker processes over a
        shared-memory key) and merges pairwise — the stable ascending
        permutation is unique, so the result equals ``np.lexsort(keys)``
        bit-for-bit (property-tested in ``tests/test_parallel_operators.py``).

        The run permutations' bytes are reserved from the query's memory
        budget first; a denied reservation degrades to the external
        :func:`~repro.executor.sort.spill_sort_order`, which merges sorted
        runs from spill files with the identical pairing discipline and
        therefore yields the identical permutation.
        """
        morsel_size = max(int(self.context.morsel_size), 1)
        budget = self._budget
        sort_bytes = estimate_sort_bytes(num_rows)
        reserved = budget.try_reserve(sort_bytes) \
            if budget is not None else True
        if not reserved:
            assert budget is not None  # a denial implies a budget
            spans = [(start, min(start + morsel_size, num_rows))
                     for start in range(0, num_rows, morsel_size)]
            return spill_sort_order(combined_sort_key(keys), spans, budget,
                                    poll=self._poll)
        try:
            if self._morsel_workers() <= 1 or num_rows <= morsel_size:
                return np.lexsort(keys)
            key = combined_sort_key(keys)
            spans = [(start, min(start + morsel_size, num_rows))
                     for start in range(0, num_rows, morsel_size)]
            if self._process_backend_active():
                key_ref = self._arena().export(key)
                runs = self._process_map(
                    "repro.executor.sort:sort_run_kernel",
                    [(key_ref, start, stop) for start, stop in spans])
            else:
                runs = self._segment_map(lambda span: sort_run(key, *span),
                                         spans)
            return merge_run_list(key, runs, self._segment_map)
        finally:
            if budget is not None:
                budget.release(sort_bytes)

    def _execute_limit(self, node: LimitNode) -> Batch:
        batch = self._execute(node.child)
        result = batch.head(node.limit)
        work = self.context.cost_model.limit(result.num_rows).total
        self.metrics.record(node, result.num_rows, work,
                            input_rows=batch.num_rows)
        return result

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def _apply_predicate(batch: Batch, predicate: Predicate) -> Batch:
        """Filter a batch to the rows where ``predicate`` is definitely TRUE.

        Rows where the predicate evaluates to UNKNOWN (NULL) are dropped,
        per SQL WHERE semantics; the mask-pair contract already encodes that
        in the truth values, so no extra mask arithmetic is needed here.
        """
        is_true, _ = predicate.evaluate_masked(batch.masked_resolver())
        is_true = np.asarray(is_true, dtype=bool)
        if is_true.ndim == 0:
            is_true = np.broadcast_to(is_true, (batch.num_rows,))
        return batch.filter(is_true)

    @staticmethod
    def _tolerant_eval(expression: ScalarExpression, batch: Batch,
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Evaluate an expression, falling back to output-column-name lookup.

        After aggregation or projection the batch is keyed by output names, so
        an ORDER BY referencing an output column (or a bare ``ColumnRef`` with
        an empty relation) resolves by name.  Returns ``(values, null_mask)``.
        """
        try:
            values, mask = expression.evaluate_masked(batch.masked_resolver())
            return np.asarray(values), mask
        except KeyError:
            if isinstance(expression, ColumnRef):
                if batch.has_column(expression.column):
                    return (batch.column(expression.column),
                            batch.null_mask(expression.column))
            name = str(expression)
            if batch.has_column(name):
                return batch.column(name), batch.null_mask(name)
            raise
