"""Cooperative cancellation: the token threaded through query execution.

A :class:`CancelToken` carries a request's abandon-signal and optional
deadline from the serving tier (or any sync caller) down into the executor.
The executor polls it at every operator boundary and before every morsel
(:meth:`Executor.execute <repro.executor.runtime.Executor.execute>` takes a
per-call token; :class:`~repro.executor.context.ExecutionContext` holds a
default), so a cancelled or deadline-expired query stops within one morsel
of work and surfaces as a typed
:class:`~repro.errors.QueryCancelledError`.

Tokens are thread-safe: the serving front end cancels from the event loop
(or a timer) while worker threads poll.  Deadlines are measured on an
injectable monotonic clock so tests can expire them deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import QueryCancelledError

#: Reason string recorded when a deadline (rather than an explicit
#: :meth:`CancelToken.cancel`) stopped the query.
DEADLINE_REASON = "deadline exceeded"


class CancelToken:
    """A thread-safe cancel/deadline flag polled by the executor.

    Args:
        deadline: Absolute expiry instant in ``clock`` terms (``None`` =
            no deadline).  Use :meth:`with_timeout` for a relative timeout.
        clock: Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, deadline: Optional[float] = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._event = threading.Event()
        self._reason: Optional[str] = None
        #: Absolute deadline in ``clock`` terms; mutable so a serving-tier
        #: timeout can tighten a caller-supplied token.
        self.deadline = deadline

    @classmethod
    def with_timeout(cls, seconds: float, *,
                     clock: Callable[[], float] = time.monotonic,
                     ) -> "CancelToken":
        """A token whose deadline is ``seconds`` from now."""
        return cls(deadline=clock() + seconds, clock=clock)

    def expire_in(self, seconds: float) -> None:
        """Tighten the deadline to at most ``seconds`` from now."""
        candidate = self._clock() + seconds
        if self.deadline is None or candidate < self.deadline:
            self.deadline = candidate

    def cancel(self, reason: str = "cancelled") -> None:
        """Signal cancellation; the first reason recorded wins."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once cancelled explicitly or past the deadline."""
        if self._event.is_set():
            return True
        if self.deadline is not None and self._clock() >= self.deadline:
            self.cancel(DEADLINE_REASON)
            return True
        return False

    @property
    def reason(self) -> Optional[str]:
        """Why the token tripped (``None`` while still live)."""
        return self._reason

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` = no deadline, floor 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelledError` if tripped.

        The executor's polling point: called at operator boundaries and
        before each morsel, it costs one event check on the live path.
        """
        if self.cancelled:
            reason = self._reason or "cancelled"
            raise QueryCancelledError("query cancelled: %s" % reason,
                                      reason=reason)

    def guard(self, fn: Callable[..., object]) -> Callable[..., object]:
        """Wrap a per-morsel function so every call polls the token first.

        The morsel backends dispatch through this wrapper: a worker picking
        up a queued morsel re-checks the token before touching any data, so
        an abandoned query stops within one morsel even when many morsels
        were enqueued ahead of the cancel.
        """
        def guarded(*args: object) -> object:
            self.check()
            return fn(*args)
        return guarded


__all__ = ["CancelToken", "DEADLINE_REASON"]
