"""Hash aggregation over column batches.

NULL semantics follow the SQL standard (see ``docs/nulls.md``): SUM / AVG /
MIN / MAX skip NULL inputs and return NULL for groups with no valid input,
``COUNT(col)`` counts only non-null values while ``COUNT(*)`` counts rows,
and GROUP BY treats NULL as a single group of its own (distinct from every
value, equal to itself for grouping purposes).  Columns without a null mask
take exactly the pre-mask vectorised code paths.

Aggregation is *two-phase*: group ids are assigned over the whole batch,
then every non-distinct aggregate folds fixed-width row segments
(:data:`AGG_SEGMENT_ROWS`) into per-segment partial states (count + sum /
min / max; AVG carries sum and count) which are merged in segment order.
The segment width is a constant — never derived from worker count or morsel
size — so the partial fold decomposes the same way no matter how many
workers compute the partials: serial, thread-parallel and process-parallel
executions produce bit-identical floats.  A batch that fits one segment
takes the historical single-pass code path exactly.  DISTINCT aggregates
dedup against the whole batch and stay single-phase.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import (
    AggregateCall,
    AggregateFunction,
    ScalarExpression,
    fill_masked,
)
from ..core.query import OutputItem
from .batch import Batch
from .keys import combine_key_columns
from .memory import MemoryBudget
from .shm import ShmArena, attach_array

#: Fixed partial-state segment width (rows).  Per-morsel thread-local
#: partials are computed over these segments and merged left-to-right;
#: keeping the width independent of ``executor_workers`` / ``morsel_size``
#: is what makes floating-point aggregate results decomposition-invariant.
AGG_SEGMENT_ROWS = 65_536

#: One aggregate call's full-batch input: ``(function, values, null_mask)``
#: where ``values`` is ``None`` for ``COUNT(*)``.
CallData = Tuple[AggregateFunction, Optional[np.ndarray], Optional[np.ndarray]]

#: One call's per-segment partial state: ``(valid_counts, statistic)`` where
#: the statistic is ``None`` for COUNT, per-group sums for SUM/AVG and
#: per-group running min/max for MIN/MAX.
Partial = Tuple[np.ndarray, Optional[np.ndarray]]

#: Maps ``(calls_data, group_ids, num_groups, spans)`` to per-span partial
#: lists — the hook the executor uses to fan segment work out to a backend.
PartialsMap = Callable[[Sequence[CallData], np.ndarray, int,
                        Sequence[Tuple[int, int]]], List[List[Partial]]]


def _expand(values: np.ndarray, mask: Optional[np.ndarray], num_rows: int,
            ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Broadcast a scalar evaluation result (and its mask) to batch length."""
    values = np.asarray(values)
    if values.ndim == 0:
        # lint: allow(unaccounted-allocation) — broadcast scratch bounded
        # by the input batch, which is charged as the upstream operator's
        # output; the aggregate reservation covers only the partial state.
        values = np.full(num_rows, values)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim == 0:
            # lint: allow(unaccounted-allocation) — same bound as the
            # values broadcast above: one bool per input-batch row.
            mask = np.full(num_rows, bool(mask))
    return values, mask


def _group_ids(batch: Batch, group_by: Sequence[ScalarExpression],
               ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Assign a dense group id to every row.

    NULL group keys are canonicalised (filler value + the mask itself joins
    the key) so all NULL rows land in one group regardless of the filler
    underneath.

    Returns ``(group_ids, first_row_index_per_group, num_groups)``.
    """
    if not group_by:
        # lint: allow(unaccounted-allocation) — one int64 per input-batch
        # row; the batch itself is charged as the upstream operator's
        # output, and group ids are bounded by it.
        ids = np.zeros(batch.num_rows, dtype=np.int64)
        # lint: allow(unaccounted-allocation) — at most one element.
        first = np.zeros(1 if batch.num_rows else 0, dtype=np.int64)
        return ids, first, 1 if batch.num_rows else 0
    resolve = batch.masked_resolver()
    key_columns: List[np.ndarray] = []
    for expr in group_by:
        values, mask = expr.evaluate_masked(resolve)
        values, mask = _expand(values, mask, batch.num_rows)
        if mask is not None and not mask.any():
            mask = None  # filters upstream dropped every NULL
        if mask is not None:
            # The mask itself joins the key, so the canonical filler can
            # never merge a NULL group with a value group — it only has to
            # be sortable against the valid values (fill_masked borrows one
            # for object columns; None does not order against str).
            key_columns.append(fill_masked(values, mask))
            # int64, not bool: keeps combine_key_columns on its packed
            # two-int fast path for a single nullable integer group key.
            key_columns.append(mask.astype(np.int64))
        else:
            key_columns.append(values)
    combined = combine_key_columns(key_columns)
    _, first, inverse = np.unique(combined, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first.astype(np.int64), int(first.shape[0])


def _aggregate_column(call: AggregateCall, batch: Batch, group_ids: np.ndarray,
                      num_groups: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Compute one aggregate over all groups; returns ``(values, null_mask)``."""
    if call.operand is None:
        # COUNT(*) counts rows regardless of null content.
        # lint: allow(unaccounted-allocation) — COUNT(*) weights: one
        # float64 per input-batch row, bounded by the charged input batch.
        values = np.ones(batch.num_rows, dtype=np.float64)
        null_mask: Optional[np.ndarray] = None
    else:
        values, null_mask = call.operand.evaluate_masked(
            batch.masked_resolver())
        values, null_mask = _expand(values, null_mask, batch.num_rows)
        if null_mask is not None and not null_mask.any():
            null_mask = None

    # Aggregates over a column skip NULL inputs entirely.
    if null_mask is not None:
        keep = ~null_mask
        values = values[keep]
        group_ids = group_ids[keep]

    if call.distinct and call.operand is not None:
        # Distinct aggregates: reduce to one row per (group, value) first.
        pair_key = combine_key_columns([group_ids, np.asarray(values)])
        _, keep = np.unique(pair_key, return_index=True)
        group_ids = group_ids[keep]
        values = values[keep]

    valid_counts = np.bincount(group_ids, minlength=num_groups)
    if call.func is AggregateFunction.COUNT:
        return valid_counts.astype(np.float64), None

    # Groups with no valid input aggregate to NULL (SQL semantics).
    empty = valid_counts == 0
    result_mask = empty if bool(empty.any()) else None

    numeric = values.astype(np.float64)
    if call.func is AggregateFunction.SUM:
        out = np.bincount(group_ids, weights=numeric, minlength=num_groups)
    elif call.func is AggregateFunction.AVG:
        sums = np.bincount(group_ids, weights=numeric, minlength=num_groups)
        out = np.divide(sums, valid_counts, out=np.zeros_like(sums),
                        where=valid_counts > 0)
    elif call.func is AggregateFunction.MIN:
        # lint: allow(unaccounted-allocation) — one float64 per group
        # (groups <= rows), inside the caller's partials reservation.
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, group_ids, numeric)
    elif call.func is AggregateFunction.MAX:
        # lint: allow(unaccounted-allocation) — same per-group bound as
        # the MIN branch above.
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, group_ids, numeric)
    else:
        raise ValueError("unsupported aggregate %r" % call.func)
    if result_mask is not None:
        out = out.copy()
        out[result_mask] = 0.0  # filler under the mask, never read as data
    return out, result_mask


# -- two-phase segment partials ---------------------------------------------

def segment_spans(num_rows: int) -> List[Tuple[int, int]]:
    """Fixed-width partial-state segments covering ``num_rows`` rows.

    Always at least one span — an empty batch yields one empty segment, so
    the zero-row global aggregate still produces its partial state (COUNT 0,
    everything else NULL).
    """
    if num_rows <= 0:
        return [(0, 0)]
    return [(start, min(start + AGG_SEGMENT_ROWS, num_rows))
            for start in range(0, num_rows, AGG_SEGMENT_ROWS)]


def _call_input(call: AggregateCall, batch: Batch) -> CallData:
    """Evaluate one aggregate call's operand over the whole batch."""
    if call.operand is None:
        # COUNT(*) counts rows regardless of null content.
        return call.func, None, None
    values, null_mask = call.operand.evaluate_masked(batch.masked_resolver())
    values, null_mask = _expand(values, null_mask, batch.num_rows)
    if null_mask is not None and not null_mask.any():
        null_mask = None
    return call.func, np.asarray(values), null_mask


def compute_segment_partials(calls_data: Sequence[CallData],
                             group_ids: np.ndarray, num_groups: int,
                             start: int, stop: int) -> List[Partial]:
    """Partial aggregate states of one row segment, one per call.

    Pure over read-only slices (runs unchanged in worker threads and worker
    processes).  A single whole-batch segment performs exactly the
    historical one-pass aggregation, operation for operation.
    """
    segment_ids = group_ids[start:stop]
    partials: List[Partial] = []
    for func, values, null_mask in calls_data:
        ids = segment_ids
        keep: Optional[np.ndarray] = None
        if null_mask is not None:
            # Aggregates over a column skip NULL inputs entirely.
            keep = ~null_mask[start:stop]
            ids = ids[keep]
        counts = np.bincount(ids, minlength=num_groups)
        if values is None or func is AggregateFunction.COUNT:
            partials.append((counts, None))
            continue
        numeric = values[start:stop]
        if keep is not None:
            numeric = numeric[keep]
        numeric = numeric.astype(np.float64)
        if func in (AggregateFunction.SUM, AggregateFunction.AVG):
            stat = np.bincount(ids, weights=numeric, minlength=num_groups)
        elif func is AggregateFunction.MIN:
            # lint: allow(unaccounted-allocation) — per-span partial state
            # (16 bytes x calls x groups), exactly what the executor's
            # estimate_partials_bytes reservation covers.
            stat = np.full(num_groups, np.inf)
            np.minimum.at(stat, ids, numeric)
        elif func is AggregateFunction.MAX:
            # lint: allow(unaccounted-allocation) — same partials-
            # reservation bound as the MIN branch above.
            stat = np.full(num_groups, -np.inf)
            np.maximum.at(stat, ids, numeric)
        else:
            raise ValueError("unsupported aggregate %r" % func)
        partials.append((counts, stat))
    return partials


def fold_partial_pair(func: AggregateFunction, left: Partial,
                      right: Partial) -> Partial:
    """Fold one later-segment partial into the running accumulation.

    The single fold step shared by the in-memory merge and the spill path's
    streaming merge: applying it left-to-right over the canonical segment
    sequence performs exactly the same float operations either way, which is
    what keeps spilled aggregation bit-identical.
    """
    counts = left[0] + right[0]
    if left[1] is None or right[1] is None:
        return counts, None
    if func in (AggregateFunction.SUM, AggregateFunction.AVG):
        stat = left[1] + right[1]
    elif func is AggregateFunction.MIN:
        stat = np.minimum(left[1], right[1])
    else:
        stat = np.maximum(left[1], right[1])
    return counts, stat


def finalize_partial(func: AggregateFunction, folded: Partial,
                     ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Turn the fully folded partial state into final group values."""
    counts, stat = folded
    if func is AggregateFunction.COUNT:
        return counts.astype(np.float64), None

    # Groups with no valid input aggregate to NULL (SQL semantics).
    empty = counts == 0
    result_mask: Optional[np.ndarray] = empty if bool(empty.any()) else None

    if func is AggregateFunction.AVG:
        out = np.divide(stat, counts, out=np.zeros_like(stat),
                        where=counts > 0)
    else:
        out = stat
    if result_mask is not None:
        out = out.copy()
        out[result_mask] = 0.0  # filler under the mask, never read as data
    return out, result_mask


def merge_partials(func: AggregateFunction, partials: Sequence[Partial],
                   ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Fold per-segment partials (in segment order) into final group values.

    The fold is left-to-right over the canonical segment sequence, so its
    floating-point result depends only on the segment width, never on which
    backend computed the partials.
    """
    folded = partials[0]
    for partial in partials[1:]:
        folded = fold_partial_pair(func, folded, partial)
    return finalize_partial(func, folded)


# -- process-backend partials kernel ------------------------------------------

def export_partials_task(arena: ShmArena, calls_data: Sequence[CallData],
                         group_ids: np.ndarray,
                         num_groups: int) -> Dict[str, Any]:
    """Publish the full-batch aggregation inputs for worker processes.

    Operand values, null masks and the group-id vector are exported once
    (memoized) into shared memory; every segment task reuses the same
    pages and pickles back only its ``num_groups``-sized partials.
    """
    return {
        "calls": [(func.name,
                   arena.export_optional(values),
                   arena.export_optional(null_mask))
                  for func, values, null_mask in calls_data],
        "group_ids": arena.export(group_ids),
        "num_groups": num_groups,
    }


def segment_partials_kernel(payload: Dict[str, Any], start: int,
                            stop: int) -> List[Partial]:
    """Process-pool kernel: one segment's partials from shared-memory views."""
    calls_data: List[CallData] = [
        (AggregateFunction[name], attach_array(values_ref),
         attach_array(mask_ref))
        for name, values_ref, mask_ref in payload["calls"]]
    return compute_segment_partials(calls_data,
                                    attach_array(payload["group_ids"]),
                                    payload["num_groups"], start, stop)


def _inline_partials_map(calls_data: Sequence[CallData],
                         group_ids: np.ndarray, num_groups: int,
                         spans: Sequence[Tuple[int, int]],
                         ) -> List[List[Partial]]:
    """The serial fallback :data:`PartialsMap` (no pool, no cancel hooks)."""
    return [compute_segment_partials(calls_data, group_ids, num_groups,
                                     start, stop)
            for start, stop in spans]


def _segmented(call: AggregateCall) -> bool:
    """True when the call aggregates via decomposable segment partials."""
    # DISTINCT dedups against the whole batch; it stays single-phase.
    return not (call.distinct and call.operand is not None)


def estimate_partials_bytes(num_calls: int, num_groups: int,
                            num_spans: int) -> int:
    """Bytes the in-memory partial states of all segments occupy at once.

    Every call keeps an int64 count vector and (for non-COUNT) a float64
    statistic vector per segment; sixteen bytes per group per call per
    segment is the upper bound the budget reservation covers.
    """
    return 16 * num_calls * max(num_groups, 1) * max(num_spans, 1)


def _spill_partials(calls_data: Sequence[CallData], group_ids: np.ndarray,
                    num_groups: int, spans: Sequence[Tuple[int, int]],
                    budget: MemoryBudget,
                    poll: Optional[Callable[[], None]] = None,
                    ) -> List[Partial]:
    """Compute segment partials through spill files; returns folded partials.

    The degraded path when all segments' partials do not fit the budget:
    each segment's partials are written to a spill chunk as they are
    produced (phase one holds one segment of state), then the chunks are
    re-read *in segment order* and folded with :func:`fold_partial_pair` —
    the identical left-to-right fold the in-memory merge performs, so the
    result is bit-identical.  ``poll`` runs once per chunk in both phases,
    making the spill cancellable at chunk granularity.
    """
    budget.count_operator_spill("aggregate")
    paths: List[str] = []
    for start, stop in spans:
        if poll is not None:
            poll()
        partials = compute_segment_partials(calls_data, group_ids,
                                            num_groups, start, stop)
        arrays: Dict[str, np.ndarray] = {}
        for position, (counts, stat) in enumerate(partials):
            arrays["counts%d" % position] = counts
            if stat is not None:
                arrays["stat%d" % position] = stat
        paths.append(budget.write_spill("aggregate", arrays))

    # One accumulator (a single segment's worth of state) streams the
    # chunks back in segment order.
    accum_bytes = estimate_partials_bytes(len(calls_data), num_groups, 1)
    budget.require(accum_bytes, "aggregate spill accumulator")
    try:
        folded: Optional[List[Partial]] = None
        for path in paths:
            if poll is not None:
                poll()
            arrays = MemoryBudget.read_spill(path)
            MemoryBudget.drop_spill(path)
            partials = [(arrays["counts%d" % position],
                         arrays.get("stat%d" % position))
                        for position in range(len(calls_data))]
            if folded is None:
                folded = partials
            else:
                folded = [fold_partial_pair(func, left, right)
                          for (func, _, _), left, right
                          in zip(calls_data, folded, partials)]
        assert folded is not None  # segment_spans always yields >= 1 span
        return folded
    finally:
        budget.release(accum_bytes)


def aggregate_batch(batch: Batch, group_by: Sequence[ScalarExpression],
                    items: Sequence[OutputItem],
                    partials_map: Optional[PartialsMap] = None,
                    budget: Optional[MemoryBudget] = None,
                    poll: Optional[Callable[[], None]] = None) -> Batch:
    """Group ``batch`` and compute the SELECT-list items.

    The output batch contains one column per item, keyed by the item's output
    name; non-aggregate items are evaluated on the first row of each group
    (they are group-by expressions in a well-formed query).

    ``partials_map`` is the executor's hook for computing segment partials
    on a worker backend; results are bit-identical to the inline fallback
    because the segmentation (and the merge order) never varies with it.

    ``budget`` arms the memory-governed path: the partial states of all
    segments are reserved up front, and a denied reservation degrades to
    :func:`_spill_partials` (segment partials through spill files, streamed
    back in segment order) instead of failing — with bit-identical results.
    """
    group_ids, first_rows, num_groups = _group_ids(batch, group_by)
    if num_groups == 0:
        if group_by or any(not isinstance(item.expression, AggregateCall)
                           for item in items):
            return Batch({item.name: np.asarray([]) for item in items})
        # SQL: a global aggregate over zero input rows still yields exactly
        # one row — COUNT 0, every other aggregate NULL.  The aggregation
        # below produces that from the empty batch once told there is one
        # group.
        num_groups = 1

    segmented = [item for item in items
                 if isinstance(item.expression, AggregateCall)
                 and _segmented(item.expression)]
    merged: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
    if segmented:
        calls_data = [_call_input(item.expression, batch)
                      for item in segmented]
        spans = segment_spans(batch.num_rows)
        partial_bytes = estimate_partials_bytes(len(calls_data), num_groups,
                                                len(spans))
        reserved = budget.try_reserve(partial_bytes) if budget is not None \
            else True
        try:
            if not reserved:
                assert budget is not None  # a denial implies a budget
                folded = _spill_partials(calls_data, group_ids, num_groups,
                                         spans, budget, poll)
                for position, item in enumerate(segmented):
                    merged[item.name] = finalize_partial(
                        item.expression.func, folded[position])
            else:
                if partials_map is None or len(spans) == 1:
                    per_span = _inline_partials_map(calls_data, group_ids,
                                                    num_groups, spans)
                else:
                    per_span = partials_map(calls_data, group_ids,
                                            num_groups, spans)
                for position, item in enumerate(segmented):
                    partials = [span_partials[position]
                                for span_partials in per_span]
                    merged[item.name] = merge_partials(item.expression.func,
                                                       partials)
        finally:
            if reserved and budget is not None:
                budget.release(partial_bytes)

    columns: Dict[str, np.ndarray] = {}
    masks: Dict[str, Optional[np.ndarray]] = {}
    resolve = batch.masked_resolver()
    for item in items:
        if item.name in merged:
            columns[item.name], masks[item.name] = merged[item.name]
        elif isinstance(item.expression, AggregateCall):
            columns[item.name], masks[item.name] = _aggregate_column(
                item.expression, batch, group_ids, num_groups)
        else:
            values, mask = item.expression.evaluate_masked(resolve)
            values, mask = _expand(values, mask, batch.num_rows)
            columns[item.name] = values[first_rows]
            mask = mask[first_rows] if mask is not None else None
            if mask is not None and not mask.any():
                mask = None  # all surviving group keys are valid
            masks[item.name] = mask
    return Batch(columns, masks)
