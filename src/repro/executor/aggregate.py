"""Hash aggregation over column batches."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import AggregateCall, AggregateFunction, ScalarExpression
from ..core.query import OutputItem
from .batch import Batch
from .joins import combine_key_columns


def _group_ids(batch: Batch, group_by: Sequence[ScalarExpression],
               ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Assign a dense group id to every row.

    Returns ``(group_ids, first_row_index_per_group, num_groups)``.
    """
    if not group_by:
        ids = np.zeros(batch.num_rows, dtype=np.int64)
        first = np.zeros(1 if batch.num_rows else 0, dtype=np.int64)
        return ids, first, 1 if batch.num_rows else 0
    resolve = batch.resolver()
    key_columns = [np.asarray(expr.evaluate(resolve)) for expr in group_by]
    combined = combine_key_columns(key_columns)
    _, first, inverse = np.unique(combined, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first.astype(np.int64), int(first.shape[0])


def _aggregate_column(call: AggregateCall, batch: Batch, group_ids: np.ndarray,
                      num_groups: int) -> np.ndarray:
    """Compute one aggregate over all groups."""
    resolve = batch.resolver()
    if call.operand is None:
        values = np.ones(batch.num_rows, dtype=np.float64)
    else:
        values = np.asarray(call.operand.evaluate(resolve))

    if call.distinct and call.operand is not None:
        # Distinct aggregates: reduce to one row per (group, value) first.
        pair_key = combine_key_columns([group_ids, np.asarray(values)])
        _, keep = np.unique(pair_key, return_index=True)
        group_ids = group_ids[keep]
        values = values[keep]

    if call.func is AggregateFunction.COUNT:
        return np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    numeric = values.astype(np.float64)
    if call.func is AggregateFunction.SUM:
        return np.bincount(group_ids, weights=numeric, minlength=num_groups)
    if call.func is AggregateFunction.AVG:
        sums = np.bincount(group_ids, weights=numeric, minlength=num_groups)
        counts = np.bincount(group_ids, minlength=num_groups)
        return np.divide(sums, counts, out=np.zeros_like(sums),
                         where=counts > 0)
    if call.func is AggregateFunction.MIN:
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, group_ids, numeric)
        return out
    if call.func is AggregateFunction.MAX:
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, group_ids, numeric)
        return out
    raise ValueError("unsupported aggregate %r" % call.func)


def aggregate_batch(batch: Batch, group_by: Sequence[ScalarExpression],
                    items: Sequence[OutputItem]) -> Batch:
    """Group ``batch`` and compute the SELECT-list items.

    The output batch contains one column per item, keyed by the item's output
    name; non-aggregate items are evaluated on the first row of each group
    (they are group-by expressions in a well-formed query).
    """
    group_ids, first_rows, num_groups = _group_ids(batch, group_by)
    if num_groups == 0:
        return Batch({item.name: np.asarray([]) for item in items})
    columns: Dict[str, np.ndarray] = {}
    resolve = batch.resolver()
    for item in items:
        if isinstance(item.expression, AggregateCall):
            columns[item.name] = _aggregate_column(item.expression, batch,
                                                   group_ids, num_groups)
        else:
            values = np.asarray(item.expression.evaluate(resolve))
            if values.ndim == 0:
                values = np.full(batch.num_rows, values)
            columns[item.name] = values[first_rows]
    return Batch(columns)
