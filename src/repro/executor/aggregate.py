"""Hash aggregation over column batches.

NULL semantics follow the SQL standard (see ``docs/nulls.md``): SUM / AVG /
MIN / MAX skip NULL inputs and return NULL for groups with no valid input,
``COUNT(col)`` counts only non-null values while ``COUNT(*)`` counts rows,
and GROUP BY treats NULL as a single group of its own (distinct from every
value, equal to itself for grouping purposes).  Columns without a null mask
take exactly the pre-mask vectorised code paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import (
    AggregateCall,
    AggregateFunction,
    ScalarExpression,
    fill_masked,
)
from ..core.query import OutputItem
from .batch import Batch
from .keys import combine_key_columns


def _expand(values: np.ndarray, mask: Optional[np.ndarray], num_rows: int,
            ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Broadcast a scalar evaluation result (and its mask) to batch length."""
    values = np.asarray(values)
    if values.ndim == 0:
        values = np.full(num_rows, values)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim == 0:
            mask = np.full(num_rows, bool(mask))
    return values, mask


def _group_ids(batch: Batch, group_by: Sequence[ScalarExpression],
               ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Assign a dense group id to every row.

    NULL group keys are canonicalised (filler value + the mask itself joins
    the key) so all NULL rows land in one group regardless of the filler
    underneath.

    Returns ``(group_ids, first_row_index_per_group, num_groups)``.
    """
    if not group_by:
        ids = np.zeros(batch.num_rows, dtype=np.int64)
        first = np.zeros(1 if batch.num_rows else 0, dtype=np.int64)
        return ids, first, 1 if batch.num_rows else 0
    resolve = batch.masked_resolver()
    key_columns: List[np.ndarray] = []
    for expr in group_by:
        values, mask = expr.evaluate_masked(resolve)
        values, mask = _expand(values, mask, batch.num_rows)
        if mask is not None and not mask.any():
            mask = None  # filters upstream dropped every NULL
        if mask is not None:
            # The mask itself joins the key, so the canonical filler can
            # never merge a NULL group with a value group — it only has to
            # be sortable against the valid values (fill_masked borrows one
            # for object columns; None does not order against str).
            key_columns.append(fill_masked(values, mask))
            # int64, not bool: keeps combine_key_columns on its packed
            # two-int fast path for a single nullable integer group key.
            key_columns.append(mask.astype(np.int64))
        else:
            key_columns.append(values)
    combined = combine_key_columns(key_columns)
    _, first, inverse = np.unique(combined, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first.astype(np.int64), int(first.shape[0])


def _aggregate_column(call: AggregateCall, batch: Batch, group_ids: np.ndarray,
                      num_groups: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Compute one aggregate over all groups; returns ``(values, null_mask)``."""
    if call.operand is None:
        # COUNT(*) counts rows regardless of null content.
        values = np.ones(batch.num_rows, dtype=np.float64)
        null_mask: Optional[np.ndarray] = None
    else:
        values, null_mask = call.operand.evaluate_masked(
            batch.masked_resolver())
        values, null_mask = _expand(values, null_mask, batch.num_rows)
        if null_mask is not None and not null_mask.any():
            null_mask = None

    # Aggregates over a column skip NULL inputs entirely.
    if null_mask is not None:
        keep = ~null_mask
        values = values[keep]
        group_ids = group_ids[keep]

    if call.distinct and call.operand is not None:
        # Distinct aggregates: reduce to one row per (group, value) first.
        pair_key = combine_key_columns([group_ids, np.asarray(values)])
        _, keep = np.unique(pair_key, return_index=True)
        group_ids = group_ids[keep]
        values = values[keep]

    valid_counts = np.bincount(group_ids, minlength=num_groups)
    if call.func is AggregateFunction.COUNT:
        return valid_counts.astype(np.float64), None

    # Groups with no valid input aggregate to NULL (SQL semantics).
    empty = valid_counts == 0
    result_mask = empty if bool(empty.any()) else None

    numeric = values.astype(np.float64)
    if call.func is AggregateFunction.SUM:
        out = np.bincount(group_ids, weights=numeric, minlength=num_groups)
    elif call.func is AggregateFunction.AVG:
        sums = np.bincount(group_ids, weights=numeric, minlength=num_groups)
        out = np.divide(sums, valid_counts, out=np.zeros_like(sums),
                        where=valid_counts > 0)
    elif call.func is AggregateFunction.MIN:
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, group_ids, numeric)
    elif call.func is AggregateFunction.MAX:
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, group_ids, numeric)
    else:
        raise ValueError("unsupported aggregate %r" % call.func)
    if result_mask is not None:
        out = out.copy()
        out[result_mask] = 0.0  # filler under the mask, never read as data
    return out, result_mask


def aggregate_batch(batch: Batch, group_by: Sequence[ScalarExpression],
                    items: Sequence[OutputItem]) -> Batch:
    """Group ``batch`` and compute the SELECT-list items.

    The output batch contains one column per item, keyed by the item's output
    name; non-aggregate items are evaluated on the first row of each group
    (they are group-by expressions in a well-formed query).
    """
    group_ids, first_rows, num_groups = _group_ids(batch, group_by)
    if num_groups == 0:
        if group_by or any(not isinstance(item.expression, AggregateCall)
                           for item in items):
            return Batch({item.name: np.asarray([]) for item in items})
        # SQL: a global aggregate over zero input rows still yields exactly
        # one row — COUNT 0, every other aggregate NULL.  The aggregation
        # below produces that from the empty batch once told there is one
        # group.
        num_groups = 1
    columns: Dict[str, np.ndarray] = {}
    masks: Dict[str, Optional[np.ndarray]] = {}
    resolve = batch.masked_resolver()
    for item in items:
        if isinstance(item.expression, AggregateCall):
            columns[item.name], masks[item.name] = _aggregate_column(
                item.expression, batch, group_ids, num_groups)
        else:
            values, mask = item.expression.evaluate_masked(resolve)
            values, mask = _expand(values, mask, batch.num_rows)
            columns[item.name] = values[first_rows]
            mask = mask[first_rows] if mask is not None else None
            if mask is not None and not mask.any():
                mask = None  # all surviving group keys are valid
            masks[item.name] = mask
    return Batch(columns, masks)
