"""Hash aggregation over column batches.

NULL semantics follow the SQL standard (see ``docs/nulls.md``): SUM / AVG /
MIN / MAX skip NULL inputs and return NULL for groups with no valid input,
``COUNT(col)`` counts only non-null values while ``COUNT(*)`` counts rows,
and GROUP BY treats NULL as a single group of its own (distinct from every
value, equal to itself for grouping purposes).  Columns without a null mask
take exactly the pre-mask vectorised code paths.

Aggregation is *two-phase*: group ids are assigned over the whole batch,
then every non-distinct aggregate folds fixed-width row segments
(:data:`AGG_SEGMENT_ROWS`) into per-segment partial states (count + sum /
min / max; AVG carries sum and count) which are merged in segment order.
The segment width is a constant — never derived from worker count or morsel
size — so the partial fold decomposes the same way no matter how many
workers compute the partials: serial, thread-parallel and process-parallel
executions produce bit-identical floats.  A batch that fits one segment
takes the historical single-pass code path exactly.  DISTINCT aggregates
dedup against the whole batch and stay single-phase.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import (
    AggregateCall,
    AggregateFunction,
    ScalarExpression,
    fill_masked,
)
from ..core.query import OutputItem
from .batch import Batch
from .keys import combine_key_columns
from .shm import ShmArena, attach_array

#: Fixed partial-state segment width (rows).  Per-morsel thread-local
#: partials are computed over these segments and merged left-to-right;
#: keeping the width independent of ``executor_workers`` / ``morsel_size``
#: is what makes floating-point aggregate results decomposition-invariant.
AGG_SEGMENT_ROWS = 65_536

#: One aggregate call's full-batch input: ``(function, values, null_mask)``
#: where ``values`` is ``None`` for ``COUNT(*)``.
CallData = Tuple[AggregateFunction, Optional[np.ndarray], Optional[np.ndarray]]

#: One call's per-segment partial state: ``(valid_counts, statistic)`` where
#: the statistic is ``None`` for COUNT, per-group sums for SUM/AVG and
#: per-group running min/max for MIN/MAX.
Partial = Tuple[np.ndarray, Optional[np.ndarray]]

#: Maps ``(calls_data, group_ids, num_groups, spans)`` to per-span partial
#: lists — the hook the executor uses to fan segment work out to a backend.
PartialsMap = Callable[[Sequence[CallData], np.ndarray, int,
                        Sequence[Tuple[int, int]]], List[List[Partial]]]


def _expand(values: np.ndarray, mask: Optional[np.ndarray], num_rows: int,
            ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Broadcast a scalar evaluation result (and its mask) to batch length."""
    values = np.asarray(values)
    if values.ndim == 0:
        values = np.full(num_rows, values)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim == 0:
            mask = np.full(num_rows, bool(mask))
    return values, mask


def _group_ids(batch: Batch, group_by: Sequence[ScalarExpression],
               ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Assign a dense group id to every row.

    NULL group keys are canonicalised (filler value + the mask itself joins
    the key) so all NULL rows land in one group regardless of the filler
    underneath.

    Returns ``(group_ids, first_row_index_per_group, num_groups)``.
    """
    if not group_by:
        ids = np.zeros(batch.num_rows, dtype=np.int64)
        first = np.zeros(1 if batch.num_rows else 0, dtype=np.int64)
        return ids, first, 1 if batch.num_rows else 0
    resolve = batch.masked_resolver()
    key_columns: List[np.ndarray] = []
    for expr in group_by:
        values, mask = expr.evaluate_masked(resolve)
        values, mask = _expand(values, mask, batch.num_rows)
        if mask is not None and not mask.any():
            mask = None  # filters upstream dropped every NULL
        if mask is not None:
            # The mask itself joins the key, so the canonical filler can
            # never merge a NULL group with a value group — it only has to
            # be sortable against the valid values (fill_masked borrows one
            # for object columns; None does not order against str).
            key_columns.append(fill_masked(values, mask))
            # int64, not bool: keeps combine_key_columns on its packed
            # two-int fast path for a single nullable integer group key.
            key_columns.append(mask.astype(np.int64))
        else:
            key_columns.append(values)
    combined = combine_key_columns(key_columns)
    _, first, inverse = np.unique(combined, return_index=True, return_inverse=True)
    return inverse.astype(np.int64), first.astype(np.int64), int(first.shape[0])


def _aggregate_column(call: AggregateCall, batch: Batch, group_ids: np.ndarray,
                      num_groups: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Compute one aggregate over all groups; returns ``(values, null_mask)``."""
    if call.operand is None:
        # COUNT(*) counts rows regardless of null content.
        values = np.ones(batch.num_rows, dtype=np.float64)
        null_mask: Optional[np.ndarray] = None
    else:
        values, null_mask = call.operand.evaluate_masked(
            batch.masked_resolver())
        values, null_mask = _expand(values, null_mask, batch.num_rows)
        if null_mask is not None and not null_mask.any():
            null_mask = None

    # Aggregates over a column skip NULL inputs entirely.
    if null_mask is not None:
        keep = ~null_mask
        values = values[keep]
        group_ids = group_ids[keep]

    if call.distinct and call.operand is not None:
        # Distinct aggregates: reduce to one row per (group, value) first.
        pair_key = combine_key_columns([group_ids, np.asarray(values)])
        _, keep = np.unique(pair_key, return_index=True)
        group_ids = group_ids[keep]
        values = values[keep]

    valid_counts = np.bincount(group_ids, minlength=num_groups)
    if call.func is AggregateFunction.COUNT:
        return valid_counts.astype(np.float64), None

    # Groups with no valid input aggregate to NULL (SQL semantics).
    empty = valid_counts == 0
    result_mask = empty if bool(empty.any()) else None

    numeric = values.astype(np.float64)
    if call.func is AggregateFunction.SUM:
        out = np.bincount(group_ids, weights=numeric, minlength=num_groups)
    elif call.func is AggregateFunction.AVG:
        sums = np.bincount(group_ids, weights=numeric, minlength=num_groups)
        out = np.divide(sums, valid_counts, out=np.zeros_like(sums),
                        where=valid_counts > 0)
    elif call.func is AggregateFunction.MIN:
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, group_ids, numeric)
    elif call.func is AggregateFunction.MAX:
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, group_ids, numeric)
    else:
        raise ValueError("unsupported aggregate %r" % call.func)
    if result_mask is not None:
        out = out.copy()
        out[result_mask] = 0.0  # filler under the mask, never read as data
    return out, result_mask


# -- two-phase segment partials ---------------------------------------------

def segment_spans(num_rows: int) -> List[Tuple[int, int]]:
    """Fixed-width partial-state segments covering ``num_rows`` rows.

    Always at least one span — an empty batch yields one empty segment, so
    the zero-row global aggregate still produces its partial state (COUNT 0,
    everything else NULL).
    """
    if num_rows <= 0:
        return [(0, 0)]
    return [(start, min(start + AGG_SEGMENT_ROWS, num_rows))
            for start in range(0, num_rows, AGG_SEGMENT_ROWS)]


def _call_input(call: AggregateCall, batch: Batch) -> CallData:
    """Evaluate one aggregate call's operand over the whole batch."""
    if call.operand is None:
        # COUNT(*) counts rows regardless of null content.
        return call.func, None, None
    values, null_mask = call.operand.evaluate_masked(batch.masked_resolver())
    values, null_mask = _expand(values, null_mask, batch.num_rows)
    if null_mask is not None and not null_mask.any():
        null_mask = None
    return call.func, np.asarray(values), null_mask


def compute_segment_partials(calls_data: Sequence[CallData],
                             group_ids: np.ndarray, num_groups: int,
                             start: int, stop: int) -> List[Partial]:
    """Partial aggregate states of one row segment, one per call.

    Pure over read-only slices (runs unchanged in worker threads and worker
    processes).  A single whole-batch segment performs exactly the
    historical one-pass aggregation, operation for operation.
    """
    segment_ids = group_ids[start:stop]
    partials: List[Partial] = []
    for func, values, null_mask in calls_data:
        ids = segment_ids
        keep: Optional[np.ndarray] = None
        if null_mask is not None:
            # Aggregates over a column skip NULL inputs entirely.
            keep = ~null_mask[start:stop]
            ids = ids[keep]
        counts = np.bincount(ids, minlength=num_groups)
        if values is None or func is AggregateFunction.COUNT:
            partials.append((counts, None))
            continue
        numeric = values[start:stop]
        if keep is not None:
            numeric = numeric[keep]
        numeric = numeric.astype(np.float64)
        if func in (AggregateFunction.SUM, AggregateFunction.AVG):
            stat = np.bincount(ids, weights=numeric, minlength=num_groups)
        elif func is AggregateFunction.MIN:
            stat = np.full(num_groups, np.inf)
            np.minimum.at(stat, ids, numeric)
        elif func is AggregateFunction.MAX:
            stat = np.full(num_groups, -np.inf)
            np.maximum.at(stat, ids, numeric)
        else:
            raise ValueError("unsupported aggregate %r" % func)
        partials.append((counts, stat))
    return partials


def merge_partials(func: AggregateFunction, partials: Sequence[Partial],
                   ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Fold per-segment partials (in segment order) into final group values.

    The fold is left-to-right over the canonical segment sequence, so its
    floating-point result depends only on the segment width, never on which
    backend computed the partials.
    """
    counts = partials[0][0]
    for partial in partials[1:]:
        counts = counts + partial[0]
    if func is AggregateFunction.COUNT:
        return counts.astype(np.float64), None

    # Groups with no valid input aggregate to NULL (SQL semantics).
    empty = counts == 0
    result_mask: Optional[np.ndarray] = empty if bool(empty.any()) else None

    stat = partials[0][1]
    for partial in partials[1:]:
        if func in (AggregateFunction.SUM, AggregateFunction.AVG):
            stat = stat + partial[1]
        elif func is AggregateFunction.MIN:
            stat = np.minimum(stat, partial[1])
        else:
            stat = np.maximum(stat, partial[1])
    if func is AggregateFunction.AVG:
        out = np.divide(stat, counts, out=np.zeros_like(stat),
                        where=counts > 0)
    else:
        out = stat
    if result_mask is not None:
        out = out.copy()
        out[result_mask] = 0.0  # filler under the mask, never read as data
    return out, result_mask


# -- process-backend partials kernel ------------------------------------------

def export_partials_task(arena: ShmArena, calls_data: Sequence[CallData],
                         group_ids: np.ndarray,
                         num_groups: int) -> Dict[str, Any]:
    """Publish the full-batch aggregation inputs for worker processes.

    Operand values, null masks and the group-id vector are exported once
    (memoized) into shared memory; every segment task reuses the same
    pages and pickles back only its ``num_groups``-sized partials.
    """
    return {
        "calls": [(func.name,
                   arena.export_optional(values),
                   arena.export_optional(null_mask))
                  for func, values, null_mask in calls_data],
        "group_ids": arena.export(group_ids),
        "num_groups": num_groups,
    }


def segment_partials_kernel(payload: Dict[str, Any], start: int,
                            stop: int) -> List[Partial]:
    """Process-pool kernel: one segment's partials from shared-memory views."""
    calls_data: List[CallData] = [
        (AggregateFunction[name], attach_array(values_ref),
         attach_array(mask_ref))
        for name, values_ref, mask_ref in payload["calls"]]
    return compute_segment_partials(calls_data,
                                    attach_array(payload["group_ids"]),
                                    payload["num_groups"], start, stop)


def _inline_partials_map(calls_data: Sequence[CallData],
                         group_ids: np.ndarray, num_groups: int,
                         spans: Sequence[Tuple[int, int]],
                         ) -> List[List[Partial]]:
    """The serial fallback :data:`PartialsMap` (no pool, no cancel hooks)."""
    return [compute_segment_partials(calls_data, group_ids, num_groups,
                                     start, stop)
            for start, stop in spans]


def _segmented(call: AggregateCall) -> bool:
    """True when the call aggregates via decomposable segment partials."""
    # DISTINCT dedups against the whole batch; it stays single-phase.
    return not (call.distinct and call.operand is not None)


def aggregate_batch(batch: Batch, group_by: Sequence[ScalarExpression],
                    items: Sequence[OutputItem],
                    partials_map: Optional[PartialsMap] = None) -> Batch:
    """Group ``batch`` and compute the SELECT-list items.

    The output batch contains one column per item, keyed by the item's output
    name; non-aggregate items are evaluated on the first row of each group
    (they are group-by expressions in a well-formed query).

    ``partials_map`` is the executor's hook for computing segment partials
    on a worker backend; results are bit-identical to the inline fallback
    because the segmentation (and the merge order) never varies with it.
    """
    group_ids, first_rows, num_groups = _group_ids(batch, group_by)
    if num_groups == 0:
        if group_by or any(not isinstance(item.expression, AggregateCall)
                           for item in items):
            return Batch({item.name: np.asarray([]) for item in items})
        # SQL: a global aggregate over zero input rows still yields exactly
        # one row — COUNT 0, every other aggregate NULL.  The aggregation
        # below produces that from the empty batch once told there is one
        # group.
        num_groups = 1

    segmented = [item for item in items
                 if isinstance(item.expression, AggregateCall)
                 and _segmented(item.expression)]
    merged: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
    if segmented:
        calls_data = [_call_input(item.expression, batch)
                      for item in segmented]
        spans = segment_spans(batch.num_rows)
        if partials_map is None or len(spans) == 1:
            per_span = _inline_partials_map(calls_data, group_ids,
                                            num_groups, spans)
        else:
            per_span = partials_map(calls_data, group_ids, num_groups, spans)
        for position, item in enumerate(segmented):
            partials = [span_partials[position] for span_partials in per_span]
            merged[item.name] = merge_partials(item.expression.func, partials)

    columns: Dict[str, np.ndarray] = {}
    masks: Dict[str, Optional[np.ndarray]] = {}
    resolve = batch.masked_resolver()
    for item in items:
        if item.name in merged:
            columns[item.name], masks[item.name] = merged[item.name]
        elif isinstance(item.expression, AggregateCall):
            columns[item.name], masks[item.name] = _aggregate_column(
                item.expression, batch, group_ids, num_groups)
        else:
            values, mask = item.expression.evaluate_masked(resolve)
            values, mask = _expand(values, mask, batch.num_rows)
            columns[item.name] = values[first_rows]
            mask = mask[first_rows] if mask is not None else None
            if mask is not None and not mask.any():
                mask = None  # all surviving group keys are valid
            masks[item.name] = mask
    return Batch(columns, masks)
