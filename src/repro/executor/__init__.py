"""Vectorised execution engine with runtime metrics."""

from .aggregate import aggregate_batch
from .backend import EXECUTOR_BACKENDS, MorselPools, resolve_backend
from .batch import Batch
from .breaker import CircuitBreaker
from .cancel import CancelToken
from .context import (
    DEFAULT_MORSEL_SIZE,
    ExecutionContext,
    FilterScope,
    executor_overrides,
)
from .joins import (
    combine_key_columns,
    cross_join,
    equi_join,
    join_indices,
    merge_join,
    nested_loop_join,
    sort_search_join_indices,
    spill_equi_join,
)
from .keys import CompositeKeyIndex, FactorizedKeys
from .memory import (
    MemoryBudget,
    MemoryGovernor,
    MemoryStats,
    default_governor,
    reset_default_governor,
)
from .metrics import ExecutionMetrics, OperatorMetrics
from .runtime import ExecutionResult, Executor
from .shm import ArrayRef, ShmArena, attach_array, live_segment_names, \
    live_segment_stats, sweep_arenas
from .sort import combined_sort_key, parallel_sort_order, spill_sort_order

__all__ = [
    "ArrayRef",
    "Batch",
    "CancelToken",
    "CircuitBreaker",
    "CompositeKeyIndex",
    "DEFAULT_MORSEL_SIZE",
    "EXECUTOR_BACKENDS",
    "executor_overrides",
    "ExecutionContext",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FactorizedKeys",
    "FilterScope",
    "MemoryBudget",
    "MemoryGovernor",
    "MemoryStats",
    "MorselPools",
    "OperatorMetrics",
    "ShmArena",
    "aggregate_batch",
    "attach_array",
    "combine_key_columns",
    "combined_sort_key",
    "cross_join",
    "default_governor",
    "equi_join",
    "join_indices",
    "live_segment_names",
    "live_segment_stats",
    "merge_join",
    "nested_loop_join",
    "parallel_sort_order",
    "reset_default_governor",
    "resolve_backend",
    "sort_search_join_indices",
    "spill_equi_join",
    "spill_sort_order",
    "sweep_arenas",
]
