"""Vectorised execution engine with runtime metrics."""

from .aggregate import aggregate_batch
from .batch import Batch
from .cancel import CancelToken
from .context import (
    DEFAULT_MORSEL_SIZE,
    ExecutionContext,
    FilterScope,
    executor_overrides,
)
from .joins import (
    combine_key_columns,
    cross_join,
    equi_join,
    join_indices,
    merge_join,
    nested_loop_join,
    sort_search_join_indices,
)
from .keys import CompositeKeyIndex, FactorizedKeys
from .metrics import ExecutionMetrics, OperatorMetrics
from .runtime import ExecutionResult, Executor

__all__ = [
    "Batch",
    "CancelToken",
    "CompositeKeyIndex",
    "DEFAULT_MORSEL_SIZE",
    "executor_overrides",
    "ExecutionContext",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FactorizedKeys",
    "FilterScope",
    "OperatorMetrics",
    "aggregate_batch",
    "combine_key_columns",
    "cross_join",
    "equi_join",
    "join_indices",
    "merge_join",
    "nested_loop_join",
    "sort_search_join_indices",
]
