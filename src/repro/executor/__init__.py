"""Vectorised execution engine with runtime metrics."""

from .aggregate import aggregate_batch
from .batch import Batch
from .context import ExecutionContext, FilterScope
from .joins import (
    combine_key_columns,
    cross_join,
    equi_join,
    join_indices,
    merge_join,
    nested_loop_join,
)
from .metrics import ExecutionMetrics, OperatorMetrics
from .runtime import ExecutionResult, Executor

__all__ = [
    "Batch",
    "ExecutionContext",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FilterScope",
    "OperatorMetrics",
    "aggregate_batch",
    "combine_key_columns",
    "cross_join",
    "equi_join",
    "join_indices",
    "merge_join",
    "nested_loop_join",
]
