"""Parallel merge sort over combined rank keys.

The executor's serial sort is a stable ``np.lexsort`` over the ORDER BY key
arrays.  A stable ascending permutation is *unique*, so any algorithm that
(1) orders rows by the same lexicographic comparison and (2) breaks ties by
original position produces the identical permutation — which is what makes
the parallel path bit-identical to serial by construction rather than by
accident:

1. :func:`combined_sort_key` folds the key arrays (in ``lexsort``'s
   least-significant-first convention, including null-mask and hidden sort
   keys) into one int64 array via order-preserving rank codes
   (:func:`repro.executor.keys.column_ranks`).
2. Each morsel span is stable-argsorted into a run — independently, on any
   backend (:func:`sort_run` in threads, :func:`sort_run_kernel` in worker
   processes over a shared-memory key).
3. Runs are merged pairwise (:func:`merge_runs`): a vectorised
   ``searchsorted`` with ``side="right"`` places every right-run element
   after all equal left-run elements, preserving stability because left
   runs always hold lower original row numbers.

Descending keys and NULLS FIRST/LAST are already encoded in the key arrays
by the executor (rank inversion and mask-outranks-value), so this module
only ever sorts ascending.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .keys import _fold_codes, column_ranks
from .memory import MemoryBudget
from .shm import ArrayRef, attach_array

__all__ = [
    "combined_sort_key",
    "estimate_sort_bytes",
    "merge_run_list",
    "merge_runs",
    "parallel_sort_order",
    "sort_run",
    "sort_run_kernel",
    "spill_sort_order",
]


def estimate_sort_bytes(num_rows: int) -> int:
    """Bytes the in-memory sort pins: the int64 key plus the permutation.

    A merge round holds the combined rank key, the run permutations and
    one merged output — sixteen bytes per row of int64 state on top of the
    key itself, so twenty-four bytes per row is the reservation the sort
    asks its budget for before staying in memory.
    """
    return 24 * max(int(num_rows), 0)

#: A runner maps a function over items, preserving item order (the
#: executor's morsel dispatch hook; an inline loop is a valid runner).
Runner = Callable[[Callable[[Tuple[int, int]], np.ndarray],
                   Sequence[Tuple[int, int]]], List[np.ndarray]]


def combined_sort_key(keys: Sequence[np.ndarray]) -> np.ndarray:
    """One int64 key whose stable argsort equals ``np.lexsort(keys)``.

    ``keys`` follows the ``lexsort`` convention: the *last* array is the
    primary sort key.  Each column is rank-coded (order-preserving, exact
    for every dtype including strings and NaN floats) and the codes are
    folded most-significant-first, densifying on overflow, so distinct key
    tuples always map to distinct int64 values in the same relative order.
    """
    code_columns = []
    for values in reversed(keys):
        code_columns.append(column_ranks(values))
    return _fold_codes(code_columns)[0]


def sort_run(key: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Stable-sorted row indices of one span (a sorted *run*)."""
    order = np.argsort(key[start:stop], kind="stable")
    return order.astype(np.int64, copy=False) + np.int64(start)


def sort_run_kernel(key_ref: ArrayRef, start: int, stop: int) -> np.ndarray:
    """Process-pool kernel: form one run from the shared-memory key."""
    return sort_run(attach_array(key_ref), start, stop)


def merge_runs(key: np.ndarray, left: np.ndarray,
               right: np.ndarray) -> np.ndarray:
    """Stable two-way merge of sorted runs (``left`` precedes on ties).

    Every ``left`` row index is smaller than every ``right`` row index (runs
    cover disjoint ascending spans), so inserting right elements *after*
    equal left elements (``side="right"``) is exactly the stable order.
    """
    positions = np.searchsorted(key[left], key[right], side="right")
    # lint: allow(unaccounted-allocation) — merge scratch bounded by the
    # run sizes: the in-memory path reserved estimate_sort_bytes up front
    # and the spill path charges each two-run merge via budget.require.
    out = np.empty(left.size + right.size, dtype=np.int64)
    right_slots = positions + np.arange(right.size, dtype=np.int64)
    out[right_slots] = right
    # lint: allow(unaccounted-allocation) — same merge-scratch bound as
    # the output buffer above (one bool per merged row).
    left_slots = np.ones(out.size, dtype=bool)
    left_slots[right_slots] = False
    out[left_slots] = left
    return out


def merge_run_list(key: np.ndarray, runs: List[np.ndarray],
                   runner: Optional[Runner] = None) -> np.ndarray:
    """Merge sorted runs pairwise until one permutation remains.

    Adjacent runs are merged per round (preserving span order, hence
    stability); ``runner`` parallelises the independent merges of one round
    when there are several.  The merge tree shape depends only on the run
    count, so the result is deterministic for a given segmentation.
    """
    if not runs:
        return np.zeros(0, dtype=np.int64)
    while len(runs) > 1:
        pairs = [(runs[i], runs[i + 1]) for i in range(0, len(runs) - 1, 2)]
        tail = [runs[-1]] if len(runs) % 2 else []
        if runner is not None and len(pairs) > 1:
            merged = runner(lambda pair: merge_runs(key, *pair), pairs)
        else:
            merged = [merge_runs(key, left, right) for left, right in pairs]
        runs = merged + tail
    return runs[0]


def parallel_sort_order(key: np.ndarray, spans: Sequence[Tuple[int, int]],
                        runner: Optional[Runner] = None) -> np.ndarray:
    """The stable ascending permutation of ``key``, computed morsel-wise.

    Equal to ``np.argsort(key, kind="stable")`` — and therefore to
    ``np.lexsort`` over the original key arrays — for any span partition.
    """
    if runner is not None and len(spans) > 1:
        runs = runner(lambda span: sort_run(key, *span), spans)
    else:
        runs = [sort_run(key, start, stop) for start, stop in spans]
    return merge_run_list(key, runs, runner)


def spill_sort_order(key: np.ndarray, spans: Sequence[Tuple[int, int]],
                     budget: MemoryBudget,
                     poll: Optional[Callable[[], None]] = None) -> np.ndarray:
    """External merge sort, bit-identical to :func:`parallel_sort_order`.

    The degraded path when the run permutations do not fit the budget:
    every span's run goes straight to a spill file, then the merge rounds
    replay :func:`merge_run_list`'s exact pairing discipline (adjacent
    pairs per round, odd tail carried) with only two runs resident at a
    time.  Each merge step is the same :func:`merge_runs` call over the
    same in-memory key, so the resulting permutation is the one the
    in-memory merge tree produces, bit for bit.  ``poll`` runs once per
    run and per merge (the spill-chunk granularity) for cancellation.
    """
    budget.count_operator_spill("sort")
    paths: List[str] = []
    for start, stop in spans:
        if poll is not None:
            poll()
        paths.append(budget.write_spill(
            "sort", {"run": sort_run(key, start, stop)}))
    if not paths:
        return np.zeros(0, dtype=np.int64)
    while len(paths) > 1:
        pairs = [(paths[i], paths[i + 1])
                 for i in range(0, len(paths) - 1, 2)]
        tail = [paths[-1]] if len(paths) % 2 else []
        merged_paths: List[str] = []
        for left_path, right_path in pairs:
            if poll is not None:
                poll()
            left = MemoryBudget.read_spill(left_path)["run"]
            right = MemoryBudget.read_spill(right_path)["run"]
            MemoryBudget.drop_spill(left_path)
            MemoryBudget.drop_spill(right_path)
            chunk_bytes = int(left.nbytes + right.nbytes)
            budget.require(chunk_bytes, "sort spill merge")
            try:
                merged = merge_runs(key, left, right)
            finally:
                budget.release(chunk_bytes)
            merged_paths.append(budget.write_spill("sort", {"run": merged}))
        paths = merged_paths + tail
    final = MemoryBudget.read_spill(paths[0])["run"]
    MemoryBudget.drop_spill(paths[0])
    return final
