"""Column batches flowing between executor operators.

A :class:`Batch` is the executor's unit of data: a set of equal-length numpy
arrays keyed by ``alias.column``.  Keeping the relation alias in the key means
columns from different relations never collide after joins, and expression
evaluation can resolve a :class:`~repro.core.expressions.ColumnRef` directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from ..core.expressions import ColumnRef


class Batch:
    """An immutable set of named columns of equal length."""

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for key, values in columns.items():
            array = np.asarray(values)
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise ValueError("column %r has %d rows, expected %d"
                                 % (key, array.shape[0], length))
            self._columns[key] = array
        self._num_rows = length or 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_table(cls, alias: str, table) -> "Batch":
        """Wrap a storage table's columns under ``alias.column`` keys."""
        return cls({"%s.%s" % (alias, name): table.column(name)
                    for name in table.column_names})

    @classmethod
    def empty(cls) -> "Batch":
        """A batch with no columns and no rows."""
        return cls({})

    # -- accessors -----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def keys(self) -> List[str]:
        return list(self._columns)

    def column(self, key: str) -> np.ndarray:
        if key not in self._columns:
            raise KeyError("batch has no column %r (available: %r)"
                           % (key, sorted(self._columns)))
        return self._columns[key]

    def has_column(self, key: str) -> bool:
        return key in self._columns

    def resolver(self):
        """Column resolver usable by expression evaluation."""

        def resolve(ref: ColumnRef) -> np.ndarray:
            return self.column("%s.%s" % (ref.relation, ref.column))

        return resolve

    def resolve(self, ref: ColumnRef) -> np.ndarray:
        """Array for one column reference."""
        return self.column("%s.%s" % (ref.relation, ref.column))

    # -- derivation ------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Batch":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return Batch({key: values[mask] for key, values in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Batch":
        """Rows at the given positions (may repeat / reorder)."""
        indices = np.asarray(indices)
        return Batch({key: values[indices] for key, values in self._columns.items()})

    def merge(self, other: "Batch") -> "Batch":
        """Column-wise concatenation of two batches with equal row counts."""
        if other.num_rows != self.num_rows:
            raise ValueError("cannot merge batches with %d and %d rows"
                             % (self.num_rows, other.num_rows))
        combined = dict(self._columns)
        for key in other.keys:
            if key in combined:
                raise ValueError("duplicate column %r while merging batches" % key)
            combined[key] = other.column(key)
        return Batch(combined)

    def with_columns(self, extra: Mapping[str, np.ndarray]) -> "Batch":
        """A copy with additional columns appended."""
        combined = dict(self._columns)
        combined.update({key: np.asarray(values) for key, values in extra.items()})
        return Batch(combined)

    def select(self, keys: Iterable[str]) -> "Batch":
        """A copy containing only the listed columns."""
        return Batch({key: self.column(key) for key in keys})

    def head(self, n: int) -> "Batch":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    def to_dict(self) -> Dict[str, np.ndarray]:
        """The underlying columns (shared arrays, do not mutate)."""
        return dict(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Batch(rows=%d, columns=%d)" % (self._num_rows, len(self._columns))
