"""Column batches flowing between executor operators.

A :class:`Batch` is the executor's unit of data: a set of equal-length numpy
arrays keyed by ``alias.column``.  Keeping the relation alias in the key means
columns from different relations never collide after joins, and expression
evaluation can resolve a :class:`~repro.core.expressions.ColumnRef` directly.

Every column may carry an optional *null mask*: a boolean array of the same
length with ``True`` marking NULL rows.  ``None`` means "all rows valid" and
is the fast path — all-valid columns take exactly the pre-mask vectorised
code, so NULL support costs nothing on NULL-free workloads (see
``docs/nulls.md``).  Values at masked positions are unspecified filler and
must never be interpreted as data.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.expressions import ColumnRef, ColumnResolver, MaskedColumnResolver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.table import Table


class Batch:
    """An immutable set of named columns of equal length, with null masks."""

    def __init__(self, columns: Mapping[str, np.ndarray],
                 masks: Optional[Mapping[str, Optional[np.ndarray]]] = None,
                 ) -> None:
        self._columns: Dict[str, np.ndarray] = {}
        self._masks: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for key, values in columns.items():
            array = np.asarray(values)
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise ValueError("column %r has %d rows, expected %d"
                                 % (key, array.shape[0], length))
            self._columns[key] = array
        if masks:
            for key, mask in masks.items():
                if mask is None:
                    continue
                if key not in self._columns:
                    raise ValueError("null mask for unknown column %r" % key)
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != self._columns[key].shape:
                    raise ValueError("null mask of column %r has shape %r, "
                                     "expected %r" % (key, mask.shape,
                                                      self._columns[key].shape))
                self._masks[key] = mask
        self._num_rows = length or 0
        #: Per-batch kernel state (factorized join keys, unique valid values)
        #: keyed by (kernel kind, column keys); see :meth:`kernel_memo`.
        self._kernel_memo: Dict[Hashable, Any] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_table(cls, alias: str, table: "Table",
                   start: Optional[int] = None,
                   stop: Optional[int] = None) -> "Batch":
        """Wrap a storage table's columns under ``alias.column`` keys.

        ``start``/``stop`` select a contiguous row span (a morsel) without
        copying — numpy slices are views, so emitting a table as many small
        batches costs no more memory than one big batch.
        """
        span = slice(start or 0, stop)
        columns = {}
        masks = {}
        for name in table.column_names:
            key = "%s.%s" % (alias, name)
            columns[key] = table.column(name)[span]
            mask = table.null_mask(name)
            if mask is not None:
                masks[key] = mask[span]
        return cls(columns, masks)

    @classmethod
    def empty(cls) -> "Batch":
        """A batch with no columns and no rows."""
        return cls({})

    @classmethod
    def concat(cls, pieces: Sequence["Batch"]) -> "Batch":
        """Row-wise concatenation of same-schema batches, mask-aware.

        Columns keep their order from the first piece; a column carries a
        mask in the result iff any piece masks it (mask-free pieces
        contribute all-valid rows).  Used to stitch morsel outputs back
        together in canonical order.
        """
        if len(pieces) == 1:
            return pieces[0]
        columns = {}
        masks = {}
        for key in pieces[0].keys:
            # lint: allow(mask-accessor-bypass) — this IS the accessor layer:
            # the matching masks are concatenated in lockstep right below.
            columns[key] = np.concatenate([piece.column(key)
                                           for piece in pieces])
            piece_masks = [piece.null_mask(key) for piece in pieces]
            if any(mask is not None for mask in piece_masks):
                masks[key] = np.concatenate([
                    mask if mask is not None
                    else np.zeros(piece.num_rows, dtype=bool)
                    for piece, mask in zip(pieces, piece_masks)])
        return cls(columns, masks)

    # -- accessors -----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def keys(self) -> List[str]:
        return list(self._columns)

    @property
    def nbytes(self) -> int:
        """Resident bytes of this batch's columns and null masks.

        The number a memory reservation for the batch must cover — views
        report their viewed extent, so zero-copy morsels count their own
        rows, not the whole parent array.
        """
        total = sum(array.nbytes for array in self._columns.values())
        total += sum(mask.nbytes for mask in self._masks.values())
        return int(total)

    def column(self, key: str) -> np.ndarray:
        if key not in self._columns:
            raise KeyError("batch has no column %r (available: %r)"
                           % (key, sorted(self._columns)))
        return self._columns[key]

    def null_mask(self, key: str) -> Optional[np.ndarray]:
        """Null mask of ``key`` (``None`` when every row is valid)."""
        if key not in self._columns:
            raise KeyError("batch has no column %r (available: %r)"
                           % (key, sorted(self._columns)))
        return self._masks.get(key)

    def has_masks(self) -> bool:
        """True if any column carries a null mask."""
        return bool(self._masks)

    def has_column(self, key: str) -> bool:
        return key in self._columns

    def freeze(self) -> "Batch":
        """Mark every column and null mask read-only, in place.

        Applied to batches shared between callers — result-cache entries and
        collapsed ``execute_many`` requests — so one caller mutating its
        arrays (or a fetched null mask) raises ``ValueError`` instead of
        silently corrupting every other caller's view.  Clearing the
        writeable flag is always legal on views and never copies; the
        storage arrays a zero-copy scan sliced from stay writable.
        """
        for array in self._columns.values():
            array.flags.writeable = False
        for mask in self._masks.values():
            mask.flags.writeable = False
        return self

    def kernel_memo(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Memoized per-batch kernel state (batches are immutable).

        A build side probed repeatedly — by every morsel of the probe side,
        or by several joins / Bloom builds sharing one batch — pays for key
        factorization exactly once; the memo keeps the derived structure
        alive exactly as long as the batch itself.  Benign under concurrent
        executions: a race recomputes an equivalent value, never a wrong one.
        """
        try:
            return self._kernel_memo[key]
        except KeyError:
            # lint: allow(worker-shared-mutation) — benign race by design: a
            # losing thread recomputes an equivalent immutable value; the
            # dict store itself is atomic under the GIL (see docstring).
            value = self._kernel_memo[key] = compute()
            return value

    def unique_valid(self, key: str) -> np.ndarray:
        """Memoized sorted distinct *valid* values of one column.

        Bloom filters are sets, so building them from the distinct valid
        values yields the identical bit vector while hashing each key once.
        """

        def compute() -> np.ndarray:
            values = self.column(key)
            mask = self._masks.get(key)
            if mask is not None:
                values = values[~mask]
            return np.unique(values)

        return self.kernel_memo(("unique_valid", key), compute)

    def resolver(self) -> ColumnResolver:
        """Values-only column resolver (legacy NULL-oblivious evaluation)."""

        def resolve(ref: ColumnRef) -> np.ndarray:
            return self.column("%s.%s" % (ref.relation, ref.column))

        return resolve

    def masked_resolver(self) -> MaskedColumnResolver:
        """Masked column resolver usable by three-valued evaluation."""

        def resolve(ref: ColumnRef) -> Tuple[np.ndarray, Optional[np.ndarray]]:
            key = "%s.%s" % (ref.relation, ref.column)
            return self.column(key), self._masks.get(key)

        return resolve

    def resolve(self, ref: ColumnRef) -> np.ndarray:
        """Array for one column reference."""
        return self.column("%s.%s" % (ref.relation, ref.column))

    def resolve_masked(self, ref: ColumnRef,
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``(values, null_mask)`` for one column reference."""
        key = "%s.%s" % (ref.relation, ref.column)
        return self.column(key), self._masks.get(key)

    # -- derivation ------------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Batch":
        """Rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return Batch({key: values[mask] for key, values in self._columns.items()},
                     {key: nulls[mask] for key, nulls in self._masks.items()})

    def take(self, indices: np.ndarray) -> "Batch":
        """Rows at the given positions (may repeat / reorder)."""
        indices = np.asarray(indices)
        return Batch({key: values[indices]
                      for key, values in self._columns.items()},
                     {key: nulls[indices]
                      for key, nulls in self._masks.items()})

    def merge(self, other: "Batch") -> "Batch":
        """Column-wise concatenation of two batches with equal row counts."""
        if other.num_rows != self.num_rows:
            raise ValueError("cannot merge batches with %d and %d rows"
                             % (self.num_rows, other.num_rows))
        combined = dict(self._columns)
        masks = dict(self._masks)
        for key in other.keys:
            if key in combined:
                raise ValueError("duplicate column %r while merging batches" % key)
            combined[key] = other.column(key)
            mask = other.null_mask(key)
            if mask is not None:
                masks[key] = mask
        return Batch(combined, masks)

    def with_columns(self, extra: Mapping[str, np.ndarray],
                     extra_masks: Optional[Mapping[str, Optional[np.ndarray]]]
                     = None) -> "Batch":
        """A copy with additional columns (and optional masks) appended."""
        combined = dict(self._columns)
        combined.update({key: np.asarray(values) for key, values in extra.items()})
        masks: Dict[str, Optional[np.ndarray]] = dict(self._masks)
        if extra_masks:
            masks.update(extra_masks)
        return Batch(combined, masks)

    def select(self, keys: Iterable[str]) -> "Batch":
        """A copy containing only the listed columns."""
        keys = list(keys)
        return Batch({key: self.column(key) for key in keys},
                     {key: self._masks[key] for key in keys
                      if key in self._masks})

    def row_span(self, start: int, stop: int) -> "Batch":
        """Rows ``[start, stop)`` as a zero-copy view batch (a morsel)."""
        return Batch({key: values[start:stop]
                      for key, values in self._columns.items()},
                     {key: nulls[start:stop]
                      for key, nulls in self._masks.items()})

    def spans(self, morsel_size: int) -> List[Tuple[int, int]]:
        """Morsel spans ``[(start, stop), ...]`` covering this batch's rows.

        The canonical segmentation used by the morsel join probe and
        parallel sort: contiguous, in row order, every span at most
        ``morsel_size`` rows (an empty batch yields no spans).
        """
        size = max(int(morsel_size), 1)
        return [(start, min(start + size, self._num_rows))
                for start in range(0, self._num_rows, size)]

    def head(self, n: int) -> "Batch":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.num_rows)))

    def to_dict(self) -> Dict[str, np.ndarray]:
        """The underlying columns (shared arrays, do not mutate)."""
        return dict(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Batch(rows=%d, columns=%d)" % (self._num_rows, len(self._columns))
