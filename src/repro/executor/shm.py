"""Shared-memory column transport for the process morsel backend.

The GIL-escape process backend must hand worker processes the arrays a
morsel kernel reads — build-side join indexes, group-id vectors, sort keys —
without pickling the data through the task queue.  An :class:`ShmArena`
exports a numpy array into a ``multiprocessing.shared_memory`` segment
exactly once (one copy on export, memoized per array) and hands out a
picklable :class:`ArrayRef` descriptor; the worker side attaches the segment
and reconstructs a **zero-copy read-only view** over the same physical
pages.  Only the small task descriptors and the (morsel-sized) results cross
the process boundary through pickle.

Object-dtype columns cannot live in a flat buffer, so their refs fall back
to an inline pickle payload — the descriptor records which transport was
used, and ``docs/executor.md`` documents the memory model.

Lifetimes: the arena (parent side) owns its segments and unlinks them in
:meth:`ShmArena.close`; segment names are never reused, so the worker-side
attach cache (bounded, LRU) can never resurrect a stale mapping.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ArrayRef", "ShmArena", "attach_array"]

#: Worker-side cap on cached segment attachments; evicted segments are
#: closed (the parent's unlink already happened or will happen — closing a
#: mapping is always safe, the memory lives until every handle is gone).
_ATTACH_CACHE_LIMIT = 256


@dataclass(frozen=True)
class ArrayRef:
    """Picklable descriptor of one exported array.

    ``shm_name`` names the shared-memory segment holding the raw buffer
    (``dtype``/``shape`` reconstruct the view); ``inline`` carries a pickled
    copy instead for dtypes that cannot live in a flat buffer (object
    columns) — exactly one of the two transports is used.
    """

    shm_name: Optional[str]
    dtype: str
    shape: Tuple[int, ...]
    inline: Optional[bytes] = None

    @property
    def zero_copy(self) -> bool:
        """True when the worker view aliases shared pages (no pickling)."""
        return self.shm_name is not None


class ShmArena:
    """Parent-side owner of shared-memory segments for one export scope.

    ``export`` is memoized by array identity: a build-side index probed by
    fifty morsels is copied into shared memory once, not fifty times.  The
    arena keeps the exported arrays alive (so the identity memo can never
    alias a collected array) and owns every segment until :meth:`close`.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._memo: Dict[int, ArrayRef] = {}
        self._keepalive: list[np.ndarray] = []
        self._bytes_exported = 0
        self._closed = False

    @property
    def bytes_exported(self) -> int:
        """Total shared-memory bytes this arena has published."""
        return self._bytes_exported

    def export(self, array: np.ndarray) -> ArrayRef:
        """Publish ``array`` and return its picklable descriptor.

        Non-contiguous inputs are compacted during the (single) export copy;
        object-dtype arrays fall back to an inline pickle payload.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        array = np.asarray(array)
        ref = self._memo.get(id(array))
        if ref is not None:
            return ref
        if array.dtype.kind == "O" or array.nbytes == 0:
            ref = ArrayRef(shm_name=None, dtype=array.dtype.str,
                           shape=tuple(array.shape),
                           inline=pickle.dumps(array, protocol=-1))
        else:
            segment = shared_memory.SharedMemory(create=True,
                                                 size=array.nbytes)
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf)
            view[...] = array
            self._segments.append(segment)
            self._bytes_exported += array.nbytes
            ref = ArrayRef(shm_name=segment.name, dtype=array.dtype.str,
                           shape=tuple(array.shape))
        self._memo[id(array)] = ref
        self._keepalive.append(array)
        return ref

    def export_optional(self, array: Optional[np.ndarray],
                        ) -> Optional[ArrayRef]:
        """Export an optional array (``None`` passes through)."""
        return None if array is None else self.export(array)

    def close(self) -> None:
        """Unlink and release every segment (idempotent).

        Worker processes holding an attachment keep the pages alive until
        their own handles close; unlinking only removes the name.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._memo.clear()
        self._keepalive.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Worker-process attachment cache: segment name -> open handle.  Process
#: local by construction (each worker has its own module instance), bounded
#: so long-lived pools do not accumulate mappings without end.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        # lint: allow(worker-shared-mutation) — process-local attachment
        # cache: each worker process owns its private copy of this module.
        _ATTACHED[name] = segment
        while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
            _, evicted = _ATTACHED.popitem(last=False)
            evicted.close()
    else:
        _ATTACHED.move_to_end(name)
    return segment


def attach_array(ref: Optional[ArrayRef]) -> Optional[np.ndarray]:
    """Worker-side reconstruction of an exported array.

    Shared-memory refs come back as read-only zero-copy views over the
    exported pages; inline refs unpickle their payload.  ``None`` passes
    through so optional masks need no special-casing at call sites.
    """
    if ref is None:
        return None
    if ref.shm_name is None:
        assert ref.inline is not None
        return pickle.loads(ref.inline)
    segment = _attach_segment(ref.shm_name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                      buffer=segment.buf)
    view.flags.writeable = False
    return view
