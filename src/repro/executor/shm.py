"""Shared-memory column transport for the process morsel backend.

The GIL-escape process backend must hand worker processes the arrays a
morsel kernel reads — build-side join indexes, group-id vectors, sort keys —
without pickling the data through the task queue.  An :class:`ShmArena`
exports a numpy array into a ``multiprocessing.shared_memory`` segment
exactly once (one copy on export, memoized per array) and hands out a
picklable :class:`ArrayRef` descriptor; the worker side attaches the segment
and reconstructs a **zero-copy read-only view** over the same physical
pages.  Only the small task descriptors and the (morsel-sized) results cross
the process boundary through pickle.

Object-dtype columns cannot live in a flat buffer, so their refs fall back
to an inline pickle payload — the descriptor records which transport was
used, and ``docs/executor.md`` documents the memory model.

Degradation: shared memory is an optimization, never a requirement.  If a
segment cannot be allocated (``OSError`` — real ``/dev/shm`` exhaustion or
an injected ``shm-allocate`` fault) or the freshly written segment cannot be
handed off (``shm-attach``), the export silently falls back to the inline
pickle transport and the query proceeds; ``ShmArena.fallback_count`` and the
pool-level ``shm_fallbacks`` stat record every degradation.

Lifetimes: the arena (parent side) owns its segments and unlinks them in
:meth:`ShmArena.close`; segment names are never reused, so the worker-side
attach cache (bounded, LRU) can never resurrect a stale mapping.  Every
arena additionally registers itself in a module-level weak registry swept at
interpreter exit (:func:`sweep_arenas`), so even an exit path that skips the
executor's ``finally`` cannot leak ``/dev/shm`` segments; the chaos suite
asserts :func:`live_segment_names` is empty after induced failures.
"""

from __future__ import annotations

import atexit
import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults import FaultPlan, SITE_SHM_ALLOCATE, SITE_SHM_ATTACH

__all__ = ["ArrayRef", "ShmArena", "attach_array", "live_segment_names",
           "live_segment_stats", "sweep_arenas"]

#: Worker-side cap on cached segment attachments; evicted segments are
#: closed (the parent's unlink already happened or will happen — closing a
#: mapping is always safe, the memory lives until every handle is gone).
_ATTACH_CACHE_LIMIT = 256


@dataclass(frozen=True)
class ArrayRef:
    """Picklable descriptor of one exported array.

    ``shm_name`` names the shared-memory segment holding the raw buffer
    (``dtype``/``shape`` reconstruct the view); ``inline`` carries a pickled
    copy instead for dtypes that cannot live in a flat buffer (object
    columns) — exactly one of the two transports is used.
    """

    shm_name: Optional[str]
    dtype: str
    shape: Tuple[int, ...]
    inline: Optional[bytes] = None

    @property
    def zero_copy(self) -> bool:
        """True when the worker view aliases shared pages (no pickling)."""
        return self.shm_name is not None


class ShmArena:
    """Parent-side owner of shared-memory segments for one export scope.

    ``export`` is memoized by array identity: a build-side index probed by
    fifty morsels is copied into shared memory once, not fifty times.  The
    arena keeps the exported arrays alive (so the identity memo can never
    alias a collected array) and owns every segment until :meth:`close`.
    """

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._memo: Dict[int, ArrayRef] = {}
        self._keepalive: list[np.ndarray] = []
        self._bytes_exported = 0
        self._fallbacks = 0
        self._faults = faults
        self._closed = False
        _LIVE_ARENAS.add(self)

    @property
    def bytes_exported(self) -> int:
        """Total shared-memory bytes this arena has published."""
        return self._bytes_exported

    @property
    def fallback_count(self) -> int:
        """Exports that degraded to inline transport under shm pressure."""
        return self._fallbacks

    @property
    def segment_names(self) -> List[str]:
        """Names of the live segments this arena currently owns."""
        return [segment.name for segment in self._segments]

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident in this arena's live segments."""
        return sum(segment.size for segment in self._segments)

    def export(self, array: np.ndarray) -> ArrayRef:
        """Publish ``array`` and return its picklable descriptor.

        Non-contiguous inputs are compacted during the (single) export copy;
        object-dtype arrays fall back to an inline pickle payload, and
        shared-memory pressure (allocation or hand-off failure) degrades to
        the same inline transport instead of failing the query.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        array = np.asarray(array)
        ref = self._memo.get(id(array))
        if ref is not None:
            return ref
        if array.dtype.kind == "O" or array.nbytes == 0:
            ref = self._inline_ref(array)
        else:
            ref = self._export_shared(array)
        self._memo[id(array)] = ref
        self._keepalive.append(array)
        return ref

    @staticmethod
    def _inline_ref(array: np.ndarray) -> ArrayRef:
        return ArrayRef(shm_name=None, dtype=array.dtype.str,
                        shape=tuple(array.shape),
                        inline=pickle.dumps(array, protocol=-1))

    def _export_shared(self, array: np.ndarray) -> ArrayRef:
        """Export into shared memory, degrading inline on shm pressure.

        A segment is never left behind on any failure path: once created it
        is either published into ``self._segments`` (and unlinked by
        :meth:`close`) or unlinked right here before the fallback/raise.
        """
        try:
            if self._faults is not None:
                self._faults.check(SITE_SHM_ALLOCATE)
            segment = shared_memory.SharedMemory(create=True,
                                                 size=array.nbytes)
        except OSError:
            self._fallbacks += 1
            return self._inline_ref(array)
        try:
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf)
            view[...] = array
            del view
            if self._faults is not None:
                self._faults.check(SITE_SHM_ATTACH)
        except OSError:
            _unlink_segment(segment)
            self._fallbacks += 1
            return self._inline_ref(array)
        except BaseException:
            _unlink_segment(segment)
            raise
        self._segments.append(segment)
        self._bytes_exported += array.nbytes
        return ArrayRef(shm_name=segment.name, dtype=array.dtype.str,
                        shape=tuple(array.shape))

    def export_optional(self, array: Optional[np.ndarray],
                        ) -> Optional[ArrayRef]:
        """Export an optional array (``None`` passes through)."""
        return None if array is None else self.export(array)

    def close(self) -> None:
        """Unlink and release every segment (idempotent).

        Worker processes holding an attachment keep the pages alive until
        their own handles close; unlinking only removes the name.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            _unlink_segment(segment)
        self._segments.clear()
        self._memo.clear()
        self._keepalive.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating an already-removed name."""
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


#: Weak registry of every arena ever constructed; the crash-safe backstop
#: behind :func:`sweep_arenas`.  Weak so a collected arena (whose segments
#: were already unlinked by ``close``) costs nothing.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def live_segment_names() -> List[str]:
    """Segment names currently owned by any live arena.

    Empty whenever no query is mid-execution; the chaos suite asserts this
    after induced failures to prove nothing leaked into ``/dev/shm``.
    """
    names: List[str] = []
    for arena in list(_LIVE_ARENAS):
        names.extend(arena.segment_names)
    return names


def live_segment_stats() -> Dict[str, int]:
    """Live shared-memory accounting across every arena.

    ``{"live_segments": n, "resident_bytes": b}`` — the pair
    ``executor_stats()`` surfaces so memory dashboards see shm residency
    next to the budget counters.  Both are zero whenever no query is
    mid-execution; the chaos suite asserts exactly that after teardown.
    """
    segments = 0
    resident = 0
    for arena in list(_LIVE_ARENAS):
        segments += len(arena.segment_names)
        resident += arena.resident_bytes
    return {"live_segments": segments, "resident_bytes": resident}


def sweep_arenas() -> int:
    """Close every live arena, returning how many segments were unlinked.

    Registered with :mod:`atexit` so segments are guaranteed to be unlinked
    on any orderly interpreter exit, even when an exit path skipped the
    executor's per-query ``finally``.  (Nothing can run after ``SIGKILL``;
    the next process's sweep is the only remedy there.)
    """
    unlinked = 0
    for arena in list(_LIVE_ARENAS):
        unlinked += len(arena.segment_names)
        arena.close()
    return unlinked


atexit.register(sweep_arenas)


#: Worker-process attachment cache: segment name -> open handle.  Process
#: local by construction (each worker has its own module instance), bounded
#: so long-lived pools do not accumulate mappings without end.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        # lint: allow(worker-shared-mutation) — process-local attachment
        # cache: each worker process owns its private copy of this module.
        _ATTACHED[name] = segment
        while len(_ATTACHED) > _ATTACH_CACHE_LIMIT:
            _, evicted = _ATTACHED.popitem(last=False)
            evicted.close()
    else:
        _ATTACHED.move_to_end(name)
    return segment


def attach_array(ref: Optional[ArrayRef]) -> Optional[np.ndarray]:
    """Worker-side reconstruction of an exported array.

    Shared-memory refs come back as read-only zero-copy views over the
    exported pages; inline refs unpickle their payload.  ``None`` passes
    through so optional masks need no special-casing at call sites.
    """
    if ref is None:
        return None
    if ref.shm_name is None:
        assert ref.inline is not None
        return pickle.loads(ref.inline)
    segment = _attach_segment(ref.shm_name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                      buffer=segment.buf)
    view.flags.writeable = False
    return view
