"""Memory governance: a process-wide pool, per-query budgets and spill files.

The governance model has three layers (``docs/memory.md`` for the full
degradation ladder):

* :class:`MemoryGovernor` — one process-wide byte pool shared by every
  query (and consulted by the serving tier's admission queue).  The pool
  size comes from ``Database(memory_pool_bytes=...)`` or, for the default
  governor, the ``REPRO_MEMORY_POOL_BYTES`` environment variable — which is
  how ``make chaos-mem`` runs the whole suite under a constrained pool
  without touching any test.
* :class:`MemoryBudget` — one per-query grant handed out by the executor at
  the top of :meth:`~repro.executor.runtime.Executor.execute`.  Operators
  *reserve* bytes for unbounded state (hash-join build indexes, aggregation
  partials, sort-run permutations, materialized batches) before allocating
  it.  A denied reservation is not an error: it is the signal to degrade to
  the operator's spill path, which keeps only bounded chunks in memory.
* The **runaway-query watchdog** — per-query ``max_memory_bytes`` /
  ``max_spill_bytes`` / ``max_rows`` limits enforced by the budget with a
  typed :class:`~repro.errors.ResourceExhaustedError`.  Per-query limits
  are permanent (a retry hits the same wall); only pool *contention*
  (:class:`~repro.errors.GovernorExhaustedError`) is transient, so the
  serving tier's :class:`~repro.serving.retry.RetryPolicy` composes.

Reservations are advisory for correctness and mandatory for accounting:
every denial and every spilled byte is counted exactly (surfaced through
``executor_stats()["memory"]``), and the deterministic ``memory-pressure``
fault site (:data:`repro.faults.SITE_MEMORY_PRESSURE`) denies grants on
scripted hit ordinals so the chaos suite can force every spill path and
assert bit-identical results.

Spill files are plain uncompressed ``.npz`` archives under a per-budget
temporary directory, removed when the budget closes (including on error
paths) — a crashed query leaves no residue.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import GovernorExhaustedError, ResourceExhaustedError
from ..faults import SITE_MEMORY_PRESSURE, FaultPlan

__all__ = [
    "MemoryBudget",
    "MemoryGovernor",
    "MemoryStats",
    "POOL_ENV_VAR",
    "default_governor",
    "reset_default_governor",
]

#: Environment variable giving the default governor's pool size in bytes;
#: unset or empty means an unbounded pool (accounting only, no denials).
POOL_ENV_VAR = "REPRO_MEMORY_POOL_BYTES"

#: Operator names used for per-operator spill counters.
SPILL_OPERATORS = ("join", "aggregate", "sort")


class MemoryGovernor:
    """The process-wide memory pool every query draws its grants from.

    ``pool_bytes=None`` means unbounded: every acquisition succeeds and the
    governor only keeps the accounting.  Thread-safe; one instance is shared
    by all sessions of a :class:`~repro.api.database.Database` and by its
    serving tier's admission queue.
    """

    def __init__(self, pool_bytes: Optional[int] = None) -> None:
        if pool_bytes is not None and pool_bytes <= 0:
            raise ValueError("pool_bytes must be positive or None, got %r"
                             % pool_bytes)
        #: Pool capacity in bytes (``None`` = unbounded).
        self.pool_bytes = pool_bytes
        self._granted = 0
        self._peak = 0
        self._denials = 0
        self._lock = threading.Lock()

    def try_acquire(self, nbytes: int) -> bool:
        """Grant ``nbytes`` from the pool, or refuse without side effects."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0, got %r" % nbytes)
        with self._lock:
            if self.pool_bytes is not None \
                    and self._granted + nbytes > self.pool_bytes:
                self._denials += 1
                return False
            self._granted += nbytes
            self._peak = max(self._peak, self._granted)
            return True

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool (never below zero)."""
        with self._lock:
            self._granted = max(0, self._granted - nbytes)

    def available(self) -> Optional[int]:
        """Bytes currently grantable (``None`` = unbounded pool)."""
        with self._lock:
            if self.pool_bytes is None:
                return None
            return max(0, self.pool_bytes - self._granted)

    @property
    def granted_bytes(self) -> int:
        """Bytes currently granted across all live budgets."""
        with self._lock:
            return self._granted

    def stats(self) -> Dict[str, object]:
        """Pool capacity, live grant, high-water mark and denial count."""
        with self._lock:
            return {"pool_bytes": self.pool_bytes,
                    "granted_bytes": self._granted,
                    "peak_granted_bytes": self._peak,
                    "denials": self._denials}


_DEFAULT_GOVERNOR: Optional[MemoryGovernor] = None
_DEFAULT_LOCK = threading.Lock()


def default_governor() -> MemoryGovernor:
    """The lazily created process-default governor.

    Its pool size is read from :data:`POOL_ENV_VAR` once, at first use;
    databases constructed without an explicit ``memory_pool_bytes`` share
    this instance, which is what makes the pool genuinely process-wide.
    """
    global _DEFAULT_GOVERNOR
    with _DEFAULT_LOCK:
        if _DEFAULT_GOVERNOR is None:
            raw = os.environ.get(POOL_ENV_VAR, "").strip()
            _DEFAULT_GOVERNOR = MemoryGovernor(int(raw) if raw else None)
        return _DEFAULT_GOVERNOR


def reset_default_governor() -> None:
    """Drop the cached default governor (tests re-reading the env var)."""
    global _DEFAULT_GOVERNOR
    with _DEFAULT_LOCK:
        _DEFAULT_GOVERNOR = None


@dataclass
class MemoryStats:
    """Cumulative memory counters owned by one execution context.

    Budgets write into this bag as they run, so the counters survive
    individual queries and ``executor_stats()`` reports session totals —
    the same pattern the morsel pools use for dispatch counters.
    """

    #: Bytes currently reserved by live budgets of this context.
    reserved_bytes: int = 0
    #: High-water mark of :attr:`reserved_bytes`.
    peak_reserved_bytes: int = 0
    #: Cumulative bytes ever reserved (grants, not peak).
    total_reserved_bytes: int = 0
    #: Reservations denied for any reason (cap, pool, injected pressure).
    reservation_denials: int = 0
    #: Denials caused by the ``memory-pressure`` fault site specifically.
    pressure_faults: int = 0
    #: Bytes written to spill files.
    spill_bytes_written: int = 0
    #: Spill files written (one per chunk; the cancellation granularity).
    spill_chunks: int = 0
    #: Times each operator entered its spill path, keyed by operator name.
    operator_spills: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in SPILL_OPERATORS})

    def as_dict(self) -> Dict[str, object]:
        """Flat counter mapping for ``executor_stats()``."""
        counters: Dict[str, object] = {
            "reserved_bytes": self.reserved_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "total_reserved_bytes": self.total_reserved_bytes,
            "reservation_denials": self.reservation_denials,
            "pressure_faults": self.pressure_faults,
            "spill_bytes_written": self.spill_bytes_written,
            "spill_chunks": self.spill_chunks,
        }
        for name in SPILL_OPERATORS:
            counters["%s_spills" % name] = self.operator_spills.get(name, 0)
        return counters


class MemoryBudget:
    """One query's grant from the governor, plus its runaway watchdog.

    The reservation protocol:

    * :meth:`try_reserve` — ask before allocating unbounded operator state.
      ``False`` means *degrade*: the per-query cap or the governor pool
      cannot cover the bytes (or the ``memory-pressure`` fault fired), and
      the caller must take its spill path instead.  Never raises.
    * :meth:`require` — reserve bytes the caller cannot do without (the
      bounded per-chunk scratch of a spill path).  Raises
      :class:`~repro.errors.GovernorExhaustedError` (transient) on pool
      contention; per-query caps never apply to required scratch, because
      spilling *is* the degraded path already.
    * :meth:`release` — return bytes when the state dies.

    Spill writes go through :meth:`write_spill`, which enforces
    ``max_spill_bytes``; materialized row counts go through
    :meth:`check_rows`, which enforces ``max_rows``.  :meth:`close`
    releases every outstanding byte and removes the spill directory, and
    is safe to call on error paths.
    """

    def __init__(self, *, governor: Optional[MemoryGovernor] = None,
                 max_memory_bytes: Optional[int] = None,
                 max_spill_bytes: Optional[int] = None,
                 max_rows: Optional[int] = None,
                 spill_dir: Optional[str] = None,
                 faults: Optional[FaultPlan] = None,
                 stats: Optional[MemoryStats] = None) -> None:
        self.governor = governor if governor is not None \
            else default_governor()
        self.max_memory_bytes = max_memory_bytes
        self.max_spill_bytes = max_spill_bytes
        self.max_rows = max_rows
        self.faults = faults
        self.stats = stats if stats is not None else MemoryStats()
        self._spill_root = spill_dir
        self._spill_path: Optional[str] = None
        self._spill_seq = 0
        self._reserved = 0
        self._spilled = 0
        self._closed = False
        self._lock = threading.Lock()

    # -- reservations -------------------------------------------------------

    @property
    def reserved_bytes(self) -> int:
        """Bytes this budget currently holds from the governor."""
        with self._lock:
            return self._reserved

    @property
    def spill_bytes(self) -> int:
        """Bytes this budget has written to spill files."""
        with self._lock:
            return self._spilled

    def try_reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` for unbounded state, or signal "spill".

        The single decision point of the degradation ladder: the scripted
        ``memory-pressure`` fault, the per-query ``max_memory_bytes`` cap
        and the governor pool are consulted in that order, and any of them
        denying turns the caller down its spill path.  Never raises — a
        denial is a degradation signal, not a failure.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            return True
        if self.faults is not None \
                and self.faults.fire(SITE_MEMORY_PRESSURE) is not None:
            with self._lock:
                self.stats.pressure_faults += 1
                self.stats.reservation_denials += 1
            return False
        with self._lock:
            if self.max_memory_bytes is not None \
                    and self._reserved + nbytes > self.max_memory_bytes:
                self.stats.reservation_denials += 1
                return False
            if not self.governor.try_acquire(nbytes):
                self.stats.reservation_denials += 1
                return False
            self._account_locked(nbytes)
        return True

    def require(self, nbytes: int, context: str) -> None:
        """Reserve bytes the caller cannot degrade away from.

        Used for the *bounded* scratch of spill paths (one chunk at a
        time).  Pool contention raises
        :class:`~repro.errors.GovernorExhaustedError` — transient, because
        concurrent queries releasing their grants lets a retry succeed.
        The ``memory-pressure`` fault never fires here: forced denial of a
        bounded chunk would fail the query instead of degrading it.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        with self._lock:
            if not self.governor.try_acquire(nbytes):
                self.stats.reservation_denials += 1
                raise GovernorExhaustedError(
                    "memory pool exhausted: %s needs %d bytes but the "
                    "governor has %r available" %
                    (context, nbytes, self.governor.available()))
            self._account_locked(nbytes)

    def _account_locked(self, nbytes: int) -> None:
        self._reserved += nbytes
        self.stats.reserved_bytes += nbytes
        self.stats.total_reserved_bytes += nbytes
        self.stats.peak_reserved_bytes = max(
            self.stats.peak_reserved_bytes, self.stats.reserved_bytes)

    def release(self, nbytes: int) -> None:
        """Return previously reserved bytes to the governor."""
        nbytes = int(nbytes)
        if nbytes <= 0:
            return
        with self._lock:
            nbytes = min(nbytes, self._reserved)
            self._reserved -= nbytes
            self.stats.reserved_bytes -= nbytes
        self.governor.release(nbytes)

    # -- the runaway watchdog -----------------------------------------------

    def check_rows(self, num_rows: int, context: str) -> None:
        """Enforce the per-query ``max_rows`` materialization limit."""
        if self.max_rows is not None and num_rows > self.max_rows:
            raise ResourceExhaustedError(
                "%s materialized %d rows, above the per-query max_rows "
                "limit of %d" % (context, num_rows, self.max_rows),
                resource="rows")

    def count_operator_spill(self, operator: str) -> None:
        """Record one operator entering its spill path."""
        with self._lock:
            spills = self.stats.operator_spills
            spills[operator] = spills.get(operator, 0) + 1

    # -- spill files --------------------------------------------------------

    def _spill_dir(self) -> str:
        """The budget's spill directory, created on first use."""
        with self._lock:
            if self._spill_path is None:
                if self._spill_root is not None:
                    os.makedirs(self._spill_root, exist_ok=True)
                self._spill_path = tempfile.mkdtemp(
                    prefix="repro-spill-", dir=self._spill_root)
            return self._spill_path

    def write_spill(self, operator: str,
                    arrays: Dict[str, np.ndarray]) -> str:
        """Write one spill chunk and charge it against ``max_spill_bytes``.

        Chunks are uncompressed ``.npz`` archives; the returned path feeds
        :meth:`read_spill`.  Exceeding the per-query spill limit raises a
        permanent :class:`~repro.errors.ResourceExhaustedError` — the
        watchdog against a runaway query trading RAM for unbounded disk.
        """
        directory = self._spill_dir()
        with self._lock:
            sequence = self._spill_seq
            self._spill_seq += 1
        path = os.path.join(directory,
                            "%s-%06d.npz" % (operator, sequence))
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        nbytes = os.path.getsize(path)
        with self._lock:
            self._spilled += nbytes
            self.stats.spill_bytes_written += nbytes
            self.stats.spill_chunks += 1
            over = self.max_spill_bytes is not None \
                and self._spilled > self.max_spill_bytes
        if over:
            raise ResourceExhaustedError(
                "query spilled %d bytes, above the per-query "
                "max_spill_bytes limit of %d"
                % (self._spilled, self.max_spill_bytes), resource="spill")
        return path

    @staticmethod
    def read_spill(path: str) -> Dict[str, np.ndarray]:
        """Load one spill chunk back into memory."""
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}

    @staticmethod
    def drop_spill(path: str) -> None:
        """Delete one spill chunk that has been fully consumed."""
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release every outstanding byte and remove the spill directory.

        Idempotent and safe on error paths: a query failing mid-spill
        leaves neither governor grants nor spill files behind.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = self._reserved
            self._reserved = 0
            self.stats.reserved_bytes -= outstanding
            spill_path = self._spill_path
            self._spill_path = None
        self.governor.release(outstanding)
        if spill_path is not None:
            shutil.rmtree(spill_path, ignore_errors=True)

    def __enter__(self) -> "MemoryBudget":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
