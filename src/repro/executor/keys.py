"""Key combination and factorized hash-index kernels.

Every equality-keyed executor kernel — hash joins, group-by, distinct
aggregation — reduces one or more key columns to a single comparable array
and then groups equal keys.  This module holds the shared machinery:

* :func:`combine_key_columns` maps multi-column keys onto a single sortable
  array.  Composite keys no longer degrade to a per-row Python tuple loop:
  each column is factorized with ``np.unique`` (codes are *ranks*, so the
  combination preserves lexicographic order exactly like the old tuple
  fallback) and the codes are packed into one int64, re-densified on the
  rare overflow.
* :class:`FactorizedKeys` is the sorted-unique hash index over one combined
  key array: built once per build side, probed many times.
* :class:`CompositeKeyIndex` is the build-side index over raw key columns.
  It owns the per-column factorization, so probing maps probe values into
  the *build-side* code space — probe rows whose value never occurs on the
  build side are unmatched by construction.  Because nothing about the index
  depends on the probe input, a build side that is probed repeatedly (morsel
  execution, a batch reused by several joins) is factorized exactly once —
  :meth:`repro.executor.batch.Batch.kernel_memo` keeps the instance alive
  alongside the batch.

All kernels return bit-identical results to the legacy ``argsort`` +
``searchsorted`` sort/search kernel (asserted by the property tests in
``tests/test_parallel_execution.py``); they differ only in cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Packed composite codes must stay below this bound; beyond it the running
#: combination is re-densified ("compressed") before the next column is
#: folded in.  Tests shrink it to force the compression path.
_PACK_LIMIT = 2 ** 62


def _two_int_packable(arrays: Sequence[np.ndarray]) -> bool:
    """True when two integer columns fit the exact ``(a << 32) | b`` packing."""
    return (len(arrays) == 2
            and all(a.dtype.kind in ("i", "u") for a in arrays)
            and all(a.size == 0 or (a.min() >= 0 and a.max() < 2 ** 31)
                    for a in arrays))


def _pack_two_ints(arrays: Sequence[np.ndarray]) -> np.ndarray:
    return (arrays[0].astype(np.int64) << np.int64(32)) \
        | arrays[1].astype(np.int64)


def _column_codes(array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factorize one column: ``(uniques, rank codes)`` via ``np.unique``."""
    uniques, codes = np.unique(array, return_inverse=True)
    return uniques, codes.astype(np.int64, copy=False)


def _fold_codes(code_columns: Sequence[Tuple[np.ndarray, int]],
                ) -> Tuple[np.ndarray, List[Tuple[int, Optional[np.ndarray]]]]:
    """Fold per-column rank codes into one order-preserving int64 array.

    ``code_columns`` is a sequence of ``(codes, cardinality)`` pairs.  The
    running combination is multiplied out left-to-right (lexicographic order,
    matching Python tuple comparison); when the key-space product would
    overflow the packing bound the combination is re-densified with
    ``np.unique`` — codes are ranks, so densification preserves order.

    Returns ``(packed, steps)`` where ``steps`` records, for every column
    after the first, ``(cardinality, compress_uniques)`` —
    ``compress_uniques`` is the sorted distinct running combination captured
    when densification fired (``None`` otherwise).  Replaying the steps maps
    further arrays (probe sides) into the identical code space; the single
    copy of the fold/densify algorithm shared by group-by combination and
    the join index.
    """
    steps: List[Tuple[int, Optional[np.ndarray]]] = []
    combined, size = None, 1
    for codes, cardinality in code_columns:
        cardinality = max(int(cardinality), 1)
        if combined is None:
            combined, size = codes, cardinality
            continue
        compress = None
        if size * cardinality > _PACK_LIMIT:
            compress, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
            size = max(int(compress.shape[0]), 1)
        combined = combined * np.int64(cardinality) + codes
        size *= cardinality
        steps.append((cardinality, compress))
    if combined is None:
        combined = np.zeros(0, dtype=np.int64)
    return combined, steps


def column_ranks(values: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense order-preserving rank codes of one sort-key column.

    Ranks compare exactly like the raw values under a stable sort, which is
    what lets the parallel merge sort fold multiple key columns into one
    int64 key (:func:`repro.executor.sort.combined_sort_key`).  NaNs are
    collapsed to a single rank above every ordinary value — the same
    equivalence a stable ``lexsort`` round gives them (all NaNs move to the
    end preserving prior order) — independent of the numpy version's
    ``np.unique`` NaN behaviour.

    Returns ``(codes, cardinality)``.
    """
    values = np.asarray(values)
    uniques, codes = np.unique(values, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    cardinality = int(uniques.shape[0])
    if values.dtype.kind == "f" and cardinality:
        nan_uniques = np.isnan(uniques)
        if nan_uniques.any():
            first_nan = int(np.argmax(nan_uniques))
            codes = np.where(np.isnan(values), np.int64(first_nan), codes)
            cardinality = first_nan + 1
    return codes, cardinality


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine one or more key columns into a single sortable key array.

    Two non-negative 32-bit-ranged integer columns are packed exactly into one
    int64 key; any other composite key is factorized column-by-column and the
    rank codes are packed (order-preserving, so grouping and sort order match
    the historical per-row tuple representation exactly, without the Python
    loop).
    """
    if len(columns) == 1:
        return np.asarray(columns[0])
    arrays = [np.asarray(col) for col in columns]
    if _two_int_packable(arrays):
        return _pack_two_ints(arrays)
    code_columns = []
    for array in arrays:
        uniques, codes = _column_codes(array)
        code_columns.append((codes, uniques.shape[0]))
    return _fold_codes(code_columns)[0]


class FactorizedKeys:
    """A sorted-unique hash index over one build-side key array.

    Construction factorizes the keys once (``np.unique`` + one stable argsort
    of the rank codes); every probe is then a single ``searchsorted`` over
    the distinct keys — on skewed build sides this is both smaller and better
    cached than re-sorting the full build array per probe, and the index is
    reusable across probes.

    Matching pairs come out in exactly the order the legacy sort/search
    kernel produced: probe rows in input order, equal build keys in ascending
    build-row order (stable argsort).
    """

    __slots__ = ("uniques", "counts", "starts", "row_order", "num_rows")

    def __init__(self, uniques: np.ndarray, counts: np.ndarray,
                 starts: np.ndarray, row_order: np.ndarray,
                 num_rows: int) -> None:
        self.uniques = uniques
        self.counts = counts
        self.starts = starts
        self.row_order = row_order
        self.num_rows = num_rows

    @classmethod
    def from_keys(cls, build_keys: np.ndarray) -> "FactorizedKeys":
        """Factorize a build-side key array into a probeable index."""
        build_keys = np.asarray(build_keys)
        if build_keys.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return cls(build_keys, empty, empty, empty, 0)
        uniques, codes = np.unique(build_keys, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        counts = np.bincount(codes, minlength=uniques.shape[0]).astype(np.int64)
        starts = np.cumsum(counts) - counts
        row_order = np.argsort(codes, kind="stable").astype(np.int64)
        return cls(uniques, counts, starts, row_order, int(build_keys.shape[0]))

    # ------------------------------------------------------------------

    def probe_counts(self, probe_keys: np.ndarray,
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-probe-row match counts plus the matched unique-key positions."""
        probe_keys = np.asarray(probe_keys)
        if self.num_rows == 0 or probe_keys.size == 0:
            zeros = np.zeros(probe_keys.shape[0], dtype=np.int64)
            return zeros, zeros
        pos = np.searchsorted(self.uniques, probe_keys)
        pos = np.minimum(pos, self.uniques.shape[0] - 1).astype(np.int64)
        found = self.uniques[pos] == probe_keys
        if self.uniques.dtype.kind == "f":
            # Keep bit-identity with the sort/search kernel for raw NaN key
            # data (NULLs are masked out long before this kernel): argsort +
            # searchsorted bracket the build side's NaN run, so a NaN probe
            # matches every build NaN.  np.unique collapses the build NaNs
            # to one code whose count is that run length, so flagging the
            # NaN-to-NaN positions as found reproduces the same pairs.
            nan_probe = np.isnan(probe_keys)
            if nan_probe.any():
                found = found | (nan_probe & np.isnan(self.uniques[pos]))
        counts = np.where(found, self.counts[pos], 0).astype(np.int64)
        return counts, pos

    def probe(self, probe_keys: np.ndarray,
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All matching ``(probe_idx, build_idx, counts)`` index pairs."""
        counts, pos = self.probe_counts(probe_keys)
        return self._expand(counts, pos)

    def _expand(self, counts: np.ndarray, pos: np.ndarray,
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, counts
        probe_idx = np.repeat(np.arange(counts.shape[0], dtype=np.int64),
                              counts)
        starts = np.repeat(self.starts[pos], counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts)
        build_idx = self.row_order[starts + offsets]
        return probe_idx, build_idx, counts


class CompositeKeyIndex:
    """Build-side hash index over one or more raw key columns.

    The index owns the column combination, which is what makes it reusable:
    multi-column keys are factorized against the *build side only* and probe
    columns are mapped into that code space at probe time (values absent
    from the build side can never match, so they are flagged unmatched
    instead of extending the code space).  Single columns and the exact
    two-int packing skip the factorization entirely.
    """

    _MODE_SINGLE = "single"
    _MODE_PACKED = "packed"
    _MODE_CODES = "codes"

    def __init__(self, build_columns: Sequence[np.ndarray]) -> None:
        arrays = [np.asarray(col) for col in build_columns]
        if not arrays:
            raise ValueError("composite key index needs at least one column")
        self._num_columns = len(arrays)
        self._column_uniques: List[np.ndarray] = []
        if len(arrays) == 1:
            self._mode = self._MODE_SINGLE
            keys = arrays[0]
        elif _two_int_packable(arrays):
            self._mode = self._MODE_PACKED
            keys = _pack_two_ints(arrays)
        else:
            self._mode = self._MODE_CODES
            code_columns = []
            for array in arrays:
                uniques, codes = _column_codes(array)
                self._column_uniques.append(uniques)
                code_columns.append((codes, uniques.shape[0]))
            keys, self._pack_steps = _fold_codes(code_columns)
        self.index = FactorizedKeys.from_keys(keys)

    @property
    def num_rows(self) -> int:
        """Build-side row count the index was built over."""
        return self.index.num_rows

    # -- packing shared by build and probe sides ---------------------------

    def _pack_with_steps(self, code_arrays: Sequence[np.ndarray],
                         valid: Optional[np.ndarray] = None) -> np.ndarray:
        """Replay the build side's :func:`_fold_codes` schedule over probes.

        Mapping through the recorded densification tables lands probe codes
        in the identical space as the build codes.  ``valid`` marks rows
        whose codes are meaningful; invalid rows carry arbitrary in-range
        codes and are masked out by the caller, they only need to not break
        the densification lookups.
        """
        combined = code_arrays[0]
        for (cardinality, compress), codes in zip(self._pack_steps,
                                                  code_arrays[1:]):
            if compress is not None:
                pos = np.searchsorted(compress, combined)
                pos = np.minimum(pos, compress.shape[0] - 1)
                if valid is not None:
                    valid &= compress[pos] == combined
                combined = pos.astype(np.int64, copy=False)
            combined = combined * np.int64(cardinality) + codes
        return combined

    # -- probing -----------------------------------------------------------

    def _probe_keys(self, probe_columns: Sequence[np.ndarray],
                    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Map probe columns into build-key space; returns ``(keys, valid)``."""
        arrays = [np.asarray(col) for col in probe_columns]
        if len(arrays) != self._num_columns:
            raise ValueError("probe has %d key columns, index has %d"
                             % (len(arrays), self._num_columns))
        if self._mode == self._MODE_SINGLE:
            return arrays[0], None
        if self._mode == self._MODE_PACKED:
            if _two_int_packable(arrays):
                return _pack_two_ints(arrays), None
            # Probe values outside the packable range can never equal a
            # packed build value; pack the in-range rows, mask the rest.
            valid = np.ones(arrays[0].shape[0], dtype=bool)
            clipped = []
            for array in arrays:
                if array.dtype.kind not in ("i", "u"):
                    raise TypeError(
                        "probe key dtype %s does not match integer-packed "
                        "build keys" % array.dtype)
                in_range = (array >= 0) & (array < 2 ** 31)
                valid &= in_range
                clipped.append(np.where(in_range, array, 0))
            return _pack_two_ints(clipped), valid
        valid = np.ones(arrays[0].shape[0], dtype=bool)
        code_arrays = []
        for uniques, array in zip(self._column_uniques, arrays):
            if uniques.shape[0] == 0:
                return (np.zeros(arrays[0].shape[0], dtype=np.int64),
                        np.zeros(arrays[0].shape[0], dtype=bool))
            pos = np.searchsorted(uniques, array)
            pos = np.minimum(pos, uniques.shape[0] - 1).astype(np.int64)
            valid &= uniques[pos] == array
            code_arrays.append(pos)
        return self._pack_with_steps(code_arrays, valid), valid

    def probe(self, probe_columns: Sequence[np.ndarray],
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Match probe key columns; returns ``(probe_idx, build_idx, counts)``.

        Semantics and pair ordering are identical to running the legacy
        sort/search kernel over jointly combined key arrays.
        """
        keys, valid = self._probe_keys(probe_columns)
        counts, pos = self.index.probe_counts(keys)
        if valid is not None:
            counts = np.where(valid, counts, 0)
        return self.index._expand(counts, pos)
