"""Runtime metrics: observed row counts and the simulated latency model.

The paper reports wall-clock latencies on a 48-core server running GaussDB.
Our substitution (documented in DESIGN.md) is a deterministic *work-unit*
latency model: during execution every operator charges work proportional to
the rows it actually processed, using the same constants as the optimizer's
cost model.  This keeps the latency measurements deterministic and scale-free
while preserving the property that matters for reproducing the paper's
results: plans that move fewer rows through joins and exchanges are faster.
Wall-clock time is also recorded for reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.plans import PlanNode


@dataclass
class OperatorMetrics:
    """Observed behaviour of a single plan node during execution."""

    node_id: int
    label: str
    estimated_rows: float
    actual_rows: float = 0.0
    work_units: float = 0.0
    input_rows: float = 0.0
    #: Plan-node class name (``"JoinNode"``, ``"AggregateNode"``, ...), used
    #: to slice the scaling model per operator kind.
    kind: str = ""
    #: The morsel-parallelisable share of :attr:`work_units` — derived from
    #: the cost model's row counts, so it is identical on serial and
    #: parallel executions of the same plan.
    parallel_work_units: float = 0.0
    #: Rows the parallel phase is spread over (determines how many morsels —
    #: and therefore how many effective workers — the operator can use).
    parallel_rows: float = 0.0


@dataclass
class ExecutionMetrics:
    """Aggregated metrics of one query execution."""

    operators: Dict[int, OperatorMetrics] = field(default_factory=dict)
    rows_scanned: float = 0.0
    rows_bloom_filtered: float = 0.0
    bloom_probes: float = 0.0
    rows_hash_built: float = 0.0
    rows_hash_probed: float = 0.0
    rows_exchanged: float = 0.0
    bytes_exchanged: float = 0.0
    total_work_units: float = 0.0
    wall_time_seconds: float = 0.0
    bloom_filters_built: int = 0
    bloom_filters_applied: int = 0

    def record(self, node: PlanNode, actual_rows: float, work_units: float,
               input_rows: float = 0.0, parallel_work: float = 0.0,
               parallel_rows: float = 0.0) -> None:
        """Record one operator's actuals (accumulates work in the totals).

        ``parallel_work`` is the share of ``work_units`` the morsel executor
        can spread across workers and ``parallel_rows`` the row count it is
        spread over; both are functions of observed row counts only, so a
        serial and a parallel execution of the same plan record identical
        metrics (the bit-identity contract of ``docs/executor.md``).
        """
        entry = self.operators.get(id(node))
        if entry is None:
            entry = OperatorMetrics(node_id=id(node), label=node.label(),
                                    estimated_rows=node.rows,
                                    kind=type(node).__name__)
            self.operators[id(node)] = entry
        entry.actual_rows = actual_rows
        entry.work_units += work_units
        entry.input_rows = input_rows
        entry.parallel_work_units += parallel_work
        entry.parallel_rows = max(entry.parallel_rows, parallel_rows)
        self.total_work_units += work_units

    # -- derived reports ---------------------------------------------------

    @property
    def simulated_latency(self) -> float:
        """The deterministic latency proxy (total work units)."""
        return self.total_work_units

    def simulated_latency_at(self, workers: int, morsel_size: int,
                             kind: Optional[str] = None) -> float:
        """Derived latency with the parallel share spread over workers.

        The deterministic scaling model behind the throughput benchmark's
        per-operator curves: each operator's ``parallel_work_units`` run on
        ``min(workers, ceil(parallel_rows / morsel_size))`` effective
        workers (an operator cannot use more workers than it has morsels);
        the serial remainder — hash-table builds, merge phases, Bloom
        builds — is charged in full.  ``workers <= 1`` reproduces
        :attr:`simulated_latency` exactly.  ``kind`` restricts the report to
        operators of one plan-node class (e.g. ``"JoinNode"``), excluding
        the non-operator extras.
        """
        workers = max(int(workers), 1)
        morsel = max(int(morsel_size), 1)
        ops = [op for op in self.operators.values()
               if kind is None or op.kind == kind]
        latency = (self.total_work_units if kind is None
                   else sum(op.work_units for op in ops))
        if workers <= 1:
            return latency
        for op in ops:
            parallel = min(op.parallel_work_units, op.work_units)
            if parallel <= 0.0:
                continue
            morsels = max(int(math.ceil(op.parallel_rows / morsel)), 1)
            effective = min(workers, morsels)
            latency -= parallel * (1.0 - 1.0 / effective)
        return latency

    def actual_rows_by_node(self) -> Dict[int, float]:
        """Mapping ``id(node) -> observed rows`` for EXPLAIN ANALYZE output."""
        return {node_id: op.actual_rows for node_id, op in self.operators.items()}

    def estimation_errors(self) -> List[float]:
        """Absolute estimation error per operator (for the MAE experiment).

        Exchange and limit-style operators inherit their child's cardinality,
        so every operator is included just as the paper's "all intermediate
        plan nodes" metric is.
        """
        return [abs(op.estimated_rows - op.actual_rows)
                for op in self.operators.values()]

    def mean_absolute_error(self) -> float:
        """Mean absolute error of cardinality estimates across operators."""
        errors = self.estimation_errors()
        return sum(errors) / len(errors) if errors else 0.0
