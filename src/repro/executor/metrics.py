"""Runtime metrics: observed row counts and the simulated latency model.

The paper reports wall-clock latencies on a 48-core server running GaussDB.
Our substitution (documented in DESIGN.md) is a deterministic *work-unit*
latency model: during execution every operator charges work proportional to
the rows it actually processed, using the same constants as the optimizer's
cost model.  This keeps the latency measurements deterministic and scale-free
while preserving the property that matters for reproducing the paper's
results: plans that move fewer rows through joins and exchanges are faster.
Wall-clock time is also recorded for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.plans import PlanNode


@dataclass
class OperatorMetrics:
    """Observed behaviour of a single plan node during execution."""

    node_id: int
    label: str
    estimated_rows: float
    actual_rows: float = 0.0
    work_units: float = 0.0
    input_rows: float = 0.0


@dataclass
class ExecutionMetrics:
    """Aggregated metrics of one query execution."""

    operators: Dict[int, OperatorMetrics] = field(default_factory=dict)
    rows_scanned: float = 0.0
    rows_bloom_filtered: float = 0.0
    bloom_probes: float = 0.0
    rows_hash_built: float = 0.0
    rows_hash_probed: float = 0.0
    rows_exchanged: float = 0.0
    bytes_exchanged: float = 0.0
    total_work_units: float = 0.0
    wall_time_seconds: float = 0.0
    bloom_filters_built: int = 0
    bloom_filters_applied: int = 0

    def record(self, node: PlanNode, actual_rows: float, work_units: float,
               input_rows: float = 0.0) -> None:
        """Record one operator's actuals (accumulates work in the totals)."""
        entry = self.operators.get(id(node))
        if entry is None:
            entry = OperatorMetrics(node_id=id(node), label=node.label(),
                                    estimated_rows=node.rows)
            self.operators[id(node)] = entry
        entry.actual_rows = actual_rows
        entry.work_units += work_units
        entry.input_rows = input_rows
        self.total_work_units += work_units

    # -- derived reports ---------------------------------------------------

    @property
    def simulated_latency(self) -> float:
        """The deterministic latency proxy (total work units)."""
        return self.total_work_units

    def actual_rows_by_node(self) -> Dict[int, float]:
        """Mapping ``id(node) -> observed rows`` for EXPLAIN ANALYZE output."""
        return {node_id: op.actual_rows for node_id, op in self.operators.items()}

    def estimation_errors(self) -> List[float]:
        """Absolute estimation error per operator (for the MAE experiment).

        Exchange and limit-style operators inherit their child's cardinality,
        so every operator is included just as the paper's "all intermediate
        plan nodes" metric is.
        """
        return [abs(op.estimated_rows - op.actual_rows)
                for op in self.operators.values()]

    def mean_absolute_error(self) -> float:
        """Mean absolute error of cardinality estimates across operators."""
        errors = self.estimation_errors()
        return sum(errors) / len(errors) if errors else 0.0
