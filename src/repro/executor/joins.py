"""Vectorised join kernels.

Equi-joins run on a *factorized hash kernel*: the build side's keys are
factorized once into a :class:`~repro.executor.keys.CompositeKeyIndex`
(``np.unique``-based, memoized on the build :class:`Batch` so repeated probes
— morsels, or a batch reused across joins — never re-sort the build side) and
each probe is a single ``searchsorted`` over the distinct build keys.  The
legacy ``argsort`` + ``searchsorted`` sort/search kernel is retained as
:func:`sort_search_join_indices`, both as the executable specification the
property tests compare against and as the baseline for the kernel-speedup
benchmark gate.

NULL handling follows SQL equality semantics: a NULL key never matches
anything (not even another NULL), so null-keyed rows are excluded from the
match kernel on both sides.  Outer joins do not pad unmatched rows with
sentinel values — padded columns carry an all-null mask, so a legitimate
``-1`` key or empty string in the data can never collide with padding (see
``docs/nulls.md``).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import ColumnRef
from ..core.query import JoinClause, JoinType
from ..errors import ExecutionError
from .batch import Batch
from .keys import CompositeKeyIndex, FactorizedKeys, combine_key_columns
from .memory import MemoryBudget
from .shm import ShmArena, attach_array

__all__ = [
    "DEFAULT_MAX_CROSS_JOIN_ROWS",
    "SPILL_JOIN_PARTITIONS",
    "build_probe_state",
    "clause_key_columns",
    "combine_key_columns",
    "concat_pair_results",
    "cross_join",
    "equi_join",
    "export_probe_task",
    "join_indices",
    "merge_join",
    "nested_loop_join",
    "probe_morsel_kernel",
    "probe_span_pairs",
    "sort_search_join_indices",
    "spill_equi_join",
    "stitch_equi_join",
]

#: Alias for the ``(probe_idx, build_idx, counts)`` triple every probe
#: kernel returns.
PairResult = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Safety net for cross joins reached outside the executor (which passes the
#: :class:`~repro.executor.context.ExecutionContext` knob explicitly): a
#: Cartesian product beyond this many output rows raises instead of silently
#: allocating ``n * m`` rows.
DEFAULT_MAX_CROSS_JOIN_ROWS = 10_000_000


def sort_search_join_indices(probe_keys: np.ndarray, build_keys: np.ndarray,
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The legacy sort/search match kernel over all-valid key arrays.

    Re-sorts the full build side on every call; kept as the executable
    specification of the match semantics (the factorized kernel must produce
    bit-identical output) and as the benchmark baseline.
    """
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        # lint: allow(unaccounted-allocation) — one int64 per probe row in
        # the reference kernel; the executor reserved the build side plus
        # 8 bytes per row before probing (estimate_build_bytes).
        return empty, empty, np.zeros(probe_keys.shape[0], dtype=np.int64)
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    left = np.searchsorted(sorted_build, probe_keys, side="left")
    right = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, counts
    probe_idx = np.repeat(np.arange(probe_keys.shape[0], dtype=np.int64), counts)
    starts = np.repeat(left.astype(np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts)
    build_idx = order[starts + offsets]
    return probe_idx, build_idx, counts


class BuildSideIndex:
    """Null-aware factorized index over a build side's key columns.

    Wraps :class:`~repro.executor.keys.CompositeKeyIndex` built over the
    *valid* build rows (NULL keys never match, so they are excluded up
    front) and remembers the valid-row selection so probe results map back
    to original build row numbers.  Instances are memoized per build
    :class:`Batch` and key-column set via :meth:`Batch.kernel_memo`.
    """

    def __init__(self, build_columns: Sequence[np.ndarray],
                 build_null: Optional[np.ndarray]) -> None:
        if build_null is not None and not build_null.any():
            build_null = None
        if build_null is not None:
            self.selection: Optional[np.ndarray] = np.flatnonzero(~build_null)
            build_columns = [np.asarray(col)[self.selection]
                             for col in build_columns]
        else:
            self.selection = None
        self.index = CompositeKeyIndex(build_columns)

    def probe(self, probe_columns: Sequence[np.ndarray],
              probe_null: Optional[np.ndarray],
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(probe_idx, build_idx, counts)`` over original row numbers."""
        # Filters upstream may have dropped every NULL: an all-False mask is
        # semantically None, and the plain kernel is much cheaper than the
        # subset-and-remap path.
        if probe_null is not None and not probe_null.any():
            probe_null = None
        if probe_null is not None:
            probe_sel = np.flatnonzero(~probe_null)
            probe_columns = [np.asarray(col)[probe_sel]
                             for col in probe_columns]
        else:
            probe_sel = None
        probe_idx, build_idx, sub_counts = self.index.probe(probe_columns)
        if self.selection is not None:
            build_idx = self.selection[build_idx]
        if probe_sel is not None:
            probe_idx = probe_sel[probe_idx]
            # lint: allow(unaccounted-allocation) — per-probe-row match
            # counts: the 8 bytes per row estimate_build_bytes added to
            # the build-side reservation.
            counts = np.zeros(
                probe_null.shape[0] if probe_null is not None else 0,
                dtype=np.int64)
            counts[probe_sel] = sub_counts
        else:
            counts = sub_counts
        return probe_idx, build_idx, counts


def join_indices(probe_keys: np.ndarray, build_keys: np.ndarray,
                 probe_null: Optional[np.ndarray] = None,
                 build_null: Optional[np.ndarray] = None,
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Matching row index pairs between probe and build key arrays.

    Null-masked keys (``True`` in the optional masks) never match any row;
    their match count is 0, so outer-join padding and anti-join retention
    fall out of the counts exactly as for keys with no partner.

    Returns:
        ``(probe_idx, build_idx, match_counts)`` where the first two arrays are
        parallel and give every matching pair, and ``match_counts[i]`` is the
        number of build matches for probe row ``i`` (used for outer / semi /
        anti semantics).
    """
    probe_keys = np.asarray(probe_keys)
    build_keys = np.asarray(build_keys)
    index = BuildSideIndex([build_keys], build_null)
    return index.probe([probe_keys], probe_null)


def clause_key_columns(clauses: Sequence[JoinClause], probe: Batch,
                       build: Batch) -> Tuple[np.ndarray, np.ndarray,
                                              Optional[np.ndarray],
                                              Optional[np.ndarray]]:
    """Extract and combine the probe-side and build-side key arrays.

    Returns ``(probe_keys, build_keys, probe_null, build_null)``; the null
    masks mark rows where *any* key component is NULL (a composite key with a
    NULL component compares UNKNOWN, hence never matches).
    """
    probe_cols, build_cols, probe_null, build_null, _ = _clause_key_parts(
        clauses, probe, build)
    return (combine_key_columns(probe_cols), combine_key_columns(build_cols),
            probe_null, build_null)


def _clause_key_parts(clauses: Sequence[JoinClause], probe: Batch,
                      build: Batch) -> Tuple[List[np.ndarray],
                                             List[np.ndarray],
                                             Optional[np.ndarray],
                                             Optional[np.ndarray],
                                             Tuple[str, ...]]:
    """Raw per-clause key columns, null masks and build key names."""
    probe_cols: List[np.ndarray] = []
    build_cols: List[np.ndarray] = []
    build_names: List[str] = []
    probe_null: Optional[np.ndarray] = None
    build_null: Optional[np.ndarray] = None
    for clause in clauses:
        left_key = "%s.%s" % (clause.left.relation, clause.left.column)
        right_key = "%s.%s" % (clause.right.relation, clause.right.column)
        if probe.has_column(left_key):
            probe_key, build_key = left_key, right_key
        else:
            probe_key, build_key = right_key, left_key
        probe_cols.append(probe.column(probe_key))
        build_cols.append(build.column(build_key))
        build_names.append(build_key)
        pmask = probe.null_mask(probe_key)
        if pmask is not None:
            probe_null = pmask if probe_null is None else (probe_null | pmask)
        bmask = build.null_mask(build_key)
        if bmask is not None:
            build_null = bmask if build_null is None else (build_null | bmask)
    return probe_cols, build_cols, probe_null, build_null, tuple(build_names)


def _null_batch(like: Batch, num_rows: int) -> Batch:
    """A ``num_rows``-row batch of NULL rows matching ``like``'s columns.

    Every column keeps its original dtype (so concatenating matched and
    padded rows never silently promotes the column type) and carries an
    all-null mask; the filler values underneath are zero / empty and are
    never read as data.
    """
    columns = {}
    masks = {}
    # lint: allow(unaccounted-allocation) — NULL padding is part of the
    # join's output batch, which the executor charges per operator output
    # (check_rows / the downstream reservation), not build-side state.
    all_null = np.ones(num_rows, dtype=bool)
    for key in like.keys:
        dtype = like.column(key).dtype
        if dtype.kind == "O":
            # lint: allow(unaccounted-allocation) — output-batch padding,
            # same accounting as the all-null mask above.
            columns[key] = np.full(num_rows, None, dtype=object)
        else:
            # lint: allow(unaccounted-allocation) — output-batch padding,
            # same accounting as the all-null mask above.
            columns[key] = np.zeros(num_rows, dtype=dtype)
        masks[key] = all_null
    return Batch(columns, masks)


def build_probe_state(probe: Batch, build: Batch,
                      clauses: Sequence[JoinClause],
                      ) -> Tuple[BuildSideIndex, List[np.ndarray],
                                 Optional[np.ndarray]]:
    """The memoized build index plus the probe-side key columns and mask.

    This is the *build phase* of the morsel hash join, factored out so the
    executor can run it exactly once and then probe any number of morsels
    against it (serially, on the thread pool, or in worker processes).  The
    memo key matches the one :func:`equi_join` always used, so serial and
    morsel executions share one factorization per build batch.
    """
    probe_cols, build_cols, probe_null, build_null, build_names = \
        _clause_key_parts(clauses, probe, build)
    index = build.kernel_memo(
        ("build_index", build_names),
        lambda: BuildSideIndex(build_cols, build_null))
    return index, probe_cols, probe_null


def probe_span_pairs(index: BuildSideIndex,
                     probe_cols: Sequence[np.ndarray],
                     probe_null: Optional[np.ndarray],
                     start: int, stop: int) -> PairResult:
    """Probe one morsel ``[start, stop)`` of the probe side.

    Key columns and mask are sliced (zero-copy views) and the resulting
    probe indices are shifted back to whole-batch row numbers.  Because the
    match kernel emits pairs in probe-row order with a per-row count vector,
    concatenating span results in span order reproduces the whole-batch
    probe bit-for-bit (see :func:`concat_pair_results`).
    """
    cols = [np.asarray(col)[start:stop] for col in probe_cols]
    null = probe_null[start:stop] if probe_null is not None else None
    probe_idx, build_idx, counts = index.probe(cols, null)
    if start:
        probe_idx = probe_idx + np.int64(start)
    return probe_idx, build_idx, counts


def concat_pair_results(results: Sequence[PairResult]) -> PairResult:
    """Stitch ordered per-span probe results back into whole-batch pairs."""
    if len(results) == 1:
        return results[0]
    probe_idx = np.concatenate([pairs[0] for pairs in results])
    build_idx = np.concatenate([pairs[1] for pairs in results])
    counts = np.concatenate([pairs[2] for pairs in results])
    return probe_idx, build_idx, counts


def stitch_equi_join(probe: Batch, build: Batch, join_type: JoinType,
                     probe_idx: np.ndarray, build_idx: np.ndarray,
                     counts: np.ndarray) -> Batch:
    """Materialise a join's output rows from whole-batch match pairs.

    This serial tail is shared by every probe strategy: the pair arrays are
    already in canonical (probe-row) order, so SEMI/ANTI filtering, INNER
    gathering and LEFT/FULL null-padding produce the identical row order no
    matter how the pairs were computed.
    """
    if join_type is JoinType.SEMI:
        return probe.filter(counts > 0)
    if join_type is JoinType.ANTI:
        return probe.filter(counts == 0)

    matched = probe.take(probe_idx).merge(build.take(build_idx))
    if join_type is JoinType.INNER:
        return matched
    if join_type in (JoinType.LEFT, JoinType.FULL):
        pieces = [matched]
        unmatched_mask = counts == 0
        if unmatched_mask.any():
            unmatched = probe.filter(unmatched_mask)
            pieces.append(unmatched.merge(_null_batch(build,
                                                      unmatched.num_rows)))
        if join_type is JoinType.FULL:
            # lint: allow(unaccounted-allocation) — one bool per build row,
            # within the build-side reservation held while stitching.
            build_matched = np.zeros(build.num_rows, dtype=bool)
            build_matched[build_idx] = True
            if not build_matched.all():
                unmatched_build = build.filter(~build_matched)
                pieces.append(_null_batch(
                    probe, unmatched_build.num_rows).merge(unmatched_build))
        return Batch.concat(pieces)
    raise ValueError("unsupported join type %r" % join_type)


def equi_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
              join_type: JoinType = JoinType.INNER,
              max_cross_join_rows: Optional[int] = None) -> Batch:
    """Join two batches on the given equi-join clauses.

    ``probe`` corresponds to the plan's outer input and ``build`` to the inner
    input; for LEFT joins the probe side is the row-preserving side, matching
    how the enumerator orients non-inner joins.  FULL joins preserve both
    sides: unmatched probe rows are null-padded on the build columns and
    unmatched build rows are null-padded on the probe columns.  Null-keyed
    probe rows count as unmatched (preserved by LEFT/FULL and ANTI, dropped
    by INNER and SEMI) and null-keyed build rows never match.
    """
    if not clauses:
        return cross_join(probe, build, max_cross_join_rows)
    index, probe_cols, probe_null = build_probe_state(probe, build, clauses)
    probe_idx, build_idx, counts = index.probe(probe_cols, probe_null)
    return stitch_equi_join(probe, build, join_type,
                            probe_idx, build_idx, counts)


# -- grace-style spill join --------------------------------------------------

#: Partition fan-out of the spill join.  Constant (not derived from the data)
#: so the chaos suite's spill-chunk counters are exactly reproducible.
SPILL_JOIN_PARTITIONS = 8

#: Multiplier applied when an equal float key must land in one partition:
#: signed zeros are collapsed by adding +0.0 and NaNs by rewriting to one
#: canonical bit pattern, mirroring the match kernel's NaN-matches-NaN rule.
_CANONICAL_NAN_BITS = np.float64(np.nan).view(np.int64)


def estimate_build_bytes(build: Batch) -> int:
    """Bytes the in-memory build phase pins: the batch plus index overhead.

    The factorized index keeps an int64 ``row_order`` (plus smaller
    unique/count arrays) alongside the build batch itself, so the
    reservation a hash join asks its budget for is the batch's resident
    bytes plus eight bytes per build row.
    """
    return build.nbytes + 8 * build.num_rows


def _column_hash_bits(values: np.ndarray) -> np.ndarray:
    """Value-stable int64 hash input for one key column.

    Partitioning must send equal keys from *both* sides to the same
    partition, so the mapping may depend only on values, never on per-batch
    factorization.  Floats are canonicalised first (``-0.0`` folded into
    ``+0.0``, every NaN to one bit pattern) because the match kernel treats
    those as equal; strings/objects hash their distinct values through
    ``crc32`` so both sides agree without sharing a code space.
    """
    values = np.asarray(values)
    kind = values.dtype.kind
    if kind in ("i", "u", "b"):
        return values.astype(np.int64, copy=False)
    if kind == "f":
        floats = values.astype(np.float64, copy=False) + 0.0
        bits = floats.view(np.int64).copy()
        nan = np.isnan(floats)
        if nan.any():
            bits[nan] = _CANONICAL_NAN_BITS
        return bits
    if kind in ("M", "m"):
        return values.view(np.int64).astype(np.int64, copy=False)
    uniques, codes = np.unique(values, return_inverse=True)
    unique_bits = np.fromiter(
        (zlib.crc32(repr(value).encode("utf-8")) for value in uniques),
        dtype=np.int64, count=uniques.shape[0])
    return unique_bits[codes]


def _partition_ids(columns: Sequence[np.ndarray],
                   num_partitions: int) -> np.ndarray:
    """Deterministic per-row partition ids over composite key columns."""
    combined: Optional[np.ndarray] = None
    for column in columns:
        bits = _column_hash_bits(column)
        if combined is None:
            combined = bits.copy()
        else:
            combined = combined * np.int64(0x9E3779B1) + bits
    if combined is None:
        return np.zeros(0, dtype=np.int64)
    # Cheap avalanche so dense consecutive keys spread over partitions.
    combined = combined * np.int64(0x9E3779B1) + np.int64(0x85EBCA6B)
    return combined % np.int64(num_partitions)


def spill_equi_join(probe: Batch, build: Batch,
                    clauses: Sequence[JoinClause], join_type: JoinType,
                    budget: MemoryBudget,
                    poll: Optional[Callable[[], None]] = None,
                    num_partitions: int = SPILL_JOIN_PARTITIONS) -> Batch:
    """Grace-style partitioned hash join, bit-identical to :func:`equi_join`.

    The degraded path taken when the budget denies the build-side
    reservation: valid build rows are hash-partitioned *by key value* into
    spill files, then each partition is loaded back one at a time, indexed,
    and probed with the matching probe partition.  Because every key maps
    to exactly one partition, each probe row's matches all come from one
    partition in ascending build-row order — a stable sort of the combined
    pairs by probe row therefore reproduces the canonical pair order of the
    in-memory kernel exactly, and :func:`stitch_equi_join` does the rest.

    ``poll`` is called once per partition (the spill-chunk granularity), so
    a cancelled query stops within one partition of work.
    """
    probe_cols, build_cols, probe_null, build_null, _ = _clause_key_parts(
        clauses, probe, build)
    if probe_null is not None and not probe_null.any():
        probe_null = None
    if build_null is not None and not build_null.any():
        build_null = None
    build_valid = np.flatnonzero(~build_null) if build_null is not None \
        else np.arange(build.num_rows, dtype=np.int64)
    probe_valid = np.flatnonzero(~probe_null) if probe_null is not None \
        else np.arange(probe.num_rows, dtype=np.int64)

    budget.count_operator_spill("join")
    build_parts = _partition_ids(
        [np.asarray(col)[build_valid] for col in build_cols], num_partitions)
    probe_parts = _partition_ids(
        [np.asarray(col)[probe_valid] for col in probe_cols], num_partitions)

    # Build phase: every non-empty build partition goes to a spill file; the
    # in-memory footprint from here on is one partition at a time.
    spill_paths: List[Optional[str]] = [None] * num_partitions
    for part in range(num_partitions):
        rows = build_valid[build_parts == part]
        if rows.shape[0] == 0:
            continue
        arrays: Dict[str, np.ndarray] = {
            "col%d" % i: np.ascontiguousarray(np.asarray(col)[rows])
            for i, col in enumerate(build_cols)}
        arrays["rows"] = rows
        spill_paths[part] = budget.write_spill("join", arrays)

    # Probe phase, partition-wise.  NULL-keyed and unmatched rows keep
    # count 0, exactly as the in-memory kernel leaves them.
    counts = np.zeros(probe.num_rows, dtype=np.int64)
    pair_pieces: List[Tuple[np.ndarray, np.ndarray]] = []
    for part in range(num_partitions):
        if poll is not None:
            poll()
        path = spill_paths[part]
        if path is None:
            continue
        arrays = MemoryBudget.read_spill(path)
        MemoryBudget.drop_spill(path)
        part_rows = arrays["rows"]
        part_cols = [arrays["col%d" % i] for i in range(len(build_cols))]
        chunk_bytes = int(sum(array.nbytes for array in arrays.values()))
        budget.require(chunk_bytes, "join spill partition %d" % part)
        try:
            index = BuildSideIndex(part_cols, None)
            probe_rows = probe_valid[probe_parts == part]
            if probe_rows.shape[0]:
                sub_cols = [np.asarray(col)[probe_rows]
                            for col in probe_cols]
                sub_probe, sub_build, sub_counts = index.probe(sub_cols,
                                                               None)
                counts[probe_rows] = sub_counts
                if sub_probe.shape[0]:
                    pair_pieces.append((probe_rows[sub_probe],
                                        part_rows[sub_build]))
        finally:
            budget.release(chunk_bytes)

    if pair_pieces:
        probe_idx = np.concatenate([piece[0] for piece in pair_pieces])
        build_idx = np.concatenate([piece[1] for piece in pair_pieces])
        order = np.argsort(probe_idx, kind="stable")
        probe_idx = probe_idx[order]
        build_idx = build_idx[order]
    else:
        probe_idx = np.zeros(0, dtype=np.int64)
        build_idx = np.zeros(0, dtype=np.int64)
    return stitch_equi_join(probe, build, join_type,
                            probe_idx, build_idx, counts)


# -- process-backend probe kernel -------------------------------------------

def export_probe_task(index: BuildSideIndex,
                      probe_cols: Sequence[np.ndarray],
                      probe_null: Optional[np.ndarray],
                      arena: ShmArena) -> Dict[str, Any]:
    """Publish a probe task's shared state for worker processes.

    The build index's arrays and the full probe key columns go into the
    arena exactly once (exports are memoized by array identity, so fifty
    morsels of one join ship one copy); the returned payload contains only
    picklable :class:`~repro.executor.shm.ArrayRef` descriptors and scalars.
    """
    composite = index.index
    keys = composite.index
    payload: Dict[str, Any] = {
        "selection": arena.export_optional(index.selection),
        "mode": composite._mode,
        "num_columns": composite._num_columns,
        "column_uniques": [arena.export(uniques)
                           for uniques in composite._column_uniques],
        "pack_steps": None,
        "uniques": arena.export(keys.uniques),
        "counts": arena.export(keys.counts),
        "starts": arena.export(keys.starts),
        "row_order": arena.export(keys.row_order),
        "num_build_rows": keys.num_rows,
        "probe_cols": [arena.export(np.asarray(col)) for col in probe_cols],
        "probe_null": arena.export_optional(probe_null),
    }
    if composite._mode == CompositeKeyIndex._MODE_CODES:
        payload["pack_steps"] = [
            (cardinality, arena.export_optional(compress))
            for cardinality, compress in composite._pack_steps]
    return payload


def _index_from_payload(payload: Dict[str, Any]) -> BuildSideIndex:
    """Worker-side reconstruction of an exported :class:`BuildSideIndex`.

    Pure wiring: every array is a zero-copy view over the exported shared
    pages, so rebuilding the index per morsel costs a handful of attribute
    assignments, not a re-factorization.
    """
    keys = FactorizedKeys(attach_array(payload["uniques"]),
                          attach_array(payload["counts"]),
                          attach_array(payload["starts"]),
                          attach_array(payload["row_order"]),
                          payload["num_build_rows"])
    composite = CompositeKeyIndex.__new__(CompositeKeyIndex)
    composite._mode = payload["mode"]
    composite._num_columns = payload["num_columns"]
    composite._column_uniques = [attach_array(ref)
                                 for ref in payload["column_uniques"]]
    if payload["pack_steps"] is not None:
        composite._pack_steps = [(cardinality, attach_array(ref))
                                 for cardinality, ref in payload["pack_steps"]]
    composite.index = keys
    index = BuildSideIndex.__new__(BuildSideIndex)
    index.selection = attach_array(payload["selection"])
    index.index = composite
    return index


def probe_morsel_kernel(payload: Dict[str, Any], start: int,
                        stop: int) -> PairResult:
    """Process-pool kernel: probe one morsel against an exported index.

    Runs in a worker process; only the morsel-sized pair arrays are pickled
    back to the parent.  Output is bit-identical to
    :func:`probe_span_pairs` over the same span.
    """
    index = _index_from_payload(payload)
    cols = [attach_array(ref)[start:stop] for ref in payload["probe_cols"]]
    null_full = attach_array(payload["probe_null"])
    null = null_full[start:stop] if null_full is not None else None
    probe_idx, build_idx, counts = index.probe(cols, null)
    if start:
        probe_idx = probe_idx + np.int64(start)
    return probe_idx, build_idx, counts


def cross_join(probe: Batch, build: Batch,
               max_rows: Optional[int] = None) -> Batch:
    """Cartesian product of two batches (only used for tiny inputs).

    Raises :class:`~repro.errors.ExecutionError` when the product would
    exceed ``max_rows`` (the executor passes its ``max_cross_join_rows``
    knob; ``None`` falls back to :data:`DEFAULT_MAX_CROSS_JOIN_ROWS`, and a
    non-positive limit disables the guard) — a disconnected join graph over
    large tables should fail loudly instead of silently allocating ``n * m``
    rows.
    """
    n, m = probe.num_rows, build.num_rows
    limit = DEFAULT_MAX_CROSS_JOIN_ROWS if max_rows is None else max_rows
    if limit > 0 and n * m > limit:
        raise ExecutionError(
            "cross join of %d x %d rows would produce %d rows, above the "
            "configured max_cross_join_rows=%d; add a join predicate or "
            "raise the limit" % (n, m, n * m, limit))
    probe_idx = np.repeat(np.arange(n, dtype=np.int64), m)
    build_idx = np.tile(np.arange(m, dtype=np.int64), n)
    return probe.take(probe_idx).merge(build.take(build_idx))


def merge_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
               join_type: JoinType = JoinType.INNER,
               max_cross_join_rows: Optional[int] = None) -> Batch:
    """Sort-merge join; semantically identical to :func:`equi_join`.

    The kernel is already order-based, so the merge join reuses it — the cost
    difference between hash and merge joins is modelled by the optimizer, not
    re-measured here.
    """
    return equi_join(probe, build, clauses, join_type, max_cross_join_rows)


def nested_loop_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
                     join_type: JoinType = JoinType.INNER,
                     max_cross_join_rows: Optional[int] = None) -> Batch:
    """Nested-loop join; with equi-clauses it degenerates to the same kernel."""
    if clauses:
        return equi_join(probe, build, clauses, join_type, max_cross_join_rows)
    return cross_join(probe, build, max_cross_join_rows)
