"""Vectorised join kernels.

All equi-joins are implemented with a sort/search kernel over the build-side
keys (``join_indices``), which handles duplicate keys exactly and works for
integer, float, string and composite keys.  The higher-level functions apply
inner / left / semi / anti semantics on top of the matching index pairs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.expressions import ColumnRef
from ..core.query import JoinClause, JoinType
from .batch import Batch


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine one or more key columns into a single sortable key array.

    Two non-negative 32-bit-ranged integer columns are packed exactly into one
    int64 key; anything else falls back to per-row Python tuples (exact but
    slower), which only happens for unusual composite keys in the workload.
    """
    if len(columns) == 1:
        return np.asarray(columns[0])
    arrays = [np.asarray(col) for col in columns]
    if (len(arrays) == 2
            and all(a.dtype.kind in ("i", "u") for a in arrays)
            and all(a.size == 0 or (a.min() >= 0 and a.max() < 2 ** 31)
                    for a in arrays)):
        return (arrays[0].astype(np.int64) << np.int64(32)) | arrays[1].astype(np.int64)
    length = arrays[0].shape[0]
    combined = np.empty(length, dtype=object)
    for i in range(length):
        combined[i] = tuple(a[i] for a in arrays)
    return combined


def join_indices(probe_keys: np.ndarray,
                 build_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Matching row index pairs between probe and build key arrays.

    Returns:
        ``(probe_idx, build_idx, match_counts)`` where the first two arrays are
        parallel and give every matching pair, and ``match_counts[i]`` is the
        number of build matches for probe row ``i`` (used for outer / semi /
        anti semantics).
    """
    probe_keys = np.asarray(probe_keys)
    build_keys = np.asarray(build_keys)
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(probe_keys.shape[0], dtype=np.int64)
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    left = np.searchsorted(sorted_build, probe_keys, side="left")
    right = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, counts
    probe_idx = np.repeat(np.arange(probe_keys.shape[0], dtype=np.int64), counts)
    starts = np.repeat(left.astype(np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts)
    build_idx = order[starts + offsets]
    return probe_idx, build_idx, counts


def clause_key_columns(clauses: Sequence[JoinClause], probe: Batch,
                       build: Batch) -> Tuple[np.ndarray, np.ndarray]:
    """Extract and combine the probe-side and build-side key arrays."""
    probe_cols: List[np.ndarray] = []
    build_cols: List[np.ndarray] = []
    for clause in clauses:
        left_key = "%s.%s" % (clause.left.relation, clause.left.column)
        right_key = "%s.%s" % (clause.right.relation, clause.right.column)
        if probe.has_column(left_key):
            probe_cols.append(probe.column(left_key))
            build_cols.append(build.column(right_key))
        else:
            probe_cols.append(probe.column(right_key))
            build_cols.append(build.column(left_key))
    return combine_key_columns(probe_cols), combine_key_columns(build_cols)


def _fill_value_for(array: np.ndarray):
    """Null substitute for non-matching outer-join rows."""
    if array.dtype.kind in ("i", "u"):
        return -1
    if array.dtype.kind == "f":
        return np.nan
    if array.dtype.kind == "b":
        return False
    if array.dtype.kind in ("U", "S"):
        return array.dtype.type()  # empty string of the column's dtype
    return None


def _pad_columns(batch: Batch, num_rows: int) -> Batch:
    """A ``num_rows``-row batch of null substitutes matching ``batch``'s
    columns — with every column keeping its original dtype, so concatenating
    matched and padded rows never silently promotes the column type."""
    pad = {}
    for key in batch.keys:
        column = batch.column(key)
        pad[key] = np.full(num_rows, _fill_value_for(column),
                           dtype=column.dtype)
    return Batch(pad)


def equi_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
              join_type: JoinType = JoinType.INNER) -> Batch:
    """Join two batches on the given equi-join clauses.

    ``probe`` corresponds to the plan's outer input and ``build`` to the inner
    input; for LEFT joins the probe side is the row-preserving side, matching
    how the enumerator orients non-inner joins.  FULL joins preserve both
    sides: unmatched probe rows are padded on the build columns and unmatched
    build rows are padded on the probe columns.
    """
    if not clauses:
        return cross_join(probe, build)
    probe_keys, build_keys = clause_key_columns(clauses, probe, build)
    probe_idx, build_idx, counts = join_indices(probe_keys, build_keys)

    if join_type is JoinType.SEMI:
        return probe.filter(counts > 0)
    if join_type is JoinType.ANTI:
        return probe.filter(counts == 0)

    matched = probe.take(probe_idx).merge(build.take(build_idx))
    if join_type is JoinType.INNER:
        return matched
    if join_type in (JoinType.LEFT, JoinType.FULL):
        pieces = [matched]
        unmatched_mask = counts == 0
        if unmatched_mask.any():
            unmatched = probe.filter(unmatched_mask)
            pieces.append(unmatched.merge(_pad_columns(build,
                                                       unmatched.num_rows)))
        if join_type is JoinType.FULL:
            build_matched = np.zeros(build.num_rows, dtype=bool)
            build_matched[build_idx] = True
            if not build_matched.all():
                unmatched_build = build.filter(~build_matched)
                pieces.append(_pad_columns(
                    probe, unmatched_build.num_rows).merge(unmatched_build))
        if len(pieces) == 1:
            return matched
        combined = {}
        for key in matched.keys:
            combined[key] = np.concatenate([piece.column(key)
                                            for piece in pieces])
        return Batch(combined)
    raise ValueError("unsupported join type %r" % join_type)


def cross_join(probe: Batch, build: Batch) -> Batch:
    """Cartesian product of two batches (only used for tiny inputs)."""
    n, m = probe.num_rows, build.num_rows
    probe_idx = np.repeat(np.arange(n, dtype=np.int64), m)
    build_idx = np.tile(np.arange(m, dtype=np.int64), n)
    return probe.take(probe_idx).merge(build.take(build_idx))


def merge_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
               join_type: JoinType = JoinType.INNER) -> Batch:
    """Sort-merge join; semantically identical to :func:`equi_join`.

    The kernel is already sort-based, so the merge join reuses it — the cost
    difference between hash and merge joins is modelled by the optimizer, not
    re-measured here.
    """
    return equi_join(probe, build, clauses, join_type)


def nested_loop_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
                     join_type: JoinType = JoinType.INNER) -> Batch:
    """Nested-loop join; with equi-clauses it degenerates to the same kernel."""
    if clauses:
        return equi_join(probe, build, clauses, join_type)
    return cross_join(probe, build)
