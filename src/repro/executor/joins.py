"""Vectorised join kernels.

All equi-joins are implemented with a sort/search kernel over the build-side
keys (``join_indices``), which handles duplicate keys exactly and works for
integer, float, string and composite keys.  The higher-level functions apply
inner / left / semi / anti semantics on top of the matching index pairs.

NULL handling follows SQL equality semantics: a NULL key never matches
anything (not even another NULL), so null-keyed rows are excluded from the
match kernel on both sides.  Outer joins no longer pad unmatched rows with
sentinel values — padded columns carry an all-null mask, so a legitimate
``-1`` key or empty string in the data can never collide with padding (see
``docs/nulls.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.expressions import ColumnRef
from ..core.query import JoinClause, JoinType
from .batch import Batch


def combine_key_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine one or more key columns into a single sortable key array.

    Two non-negative 32-bit-ranged integer columns are packed exactly into one
    int64 key; anything else falls back to per-row Python tuples (exact but
    slower), which only happens for unusual composite keys in the workload.
    """
    if len(columns) == 1:
        return np.asarray(columns[0])
    arrays = [np.asarray(col) for col in columns]
    if (len(arrays) == 2
            and all(a.dtype.kind in ("i", "u") for a in arrays)
            and all(a.size == 0 or (a.min() >= 0 and a.max() < 2 ** 31)
                    for a in arrays)):
        return (arrays[0].astype(np.int64) << np.int64(32)) | arrays[1].astype(np.int64)
    length = arrays[0].shape[0]
    combined = np.empty(length, dtype=object)
    for i in range(length):
        combined[i] = tuple(a[i] for a in arrays)
    return combined


def _valid_join_indices(probe_keys: np.ndarray, build_keys: np.ndarray,
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The sort/search match kernel over all-valid key arrays."""
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(probe_keys.shape[0], dtype=np.int64)
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    left = np.searchsorted(sorted_build, probe_keys, side="left")
    right = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = (right - left).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, counts
    probe_idx = np.repeat(np.arange(probe_keys.shape[0], dtype=np.int64), counts)
    starts = np.repeat(left.astype(np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts)
    build_idx = order[starts + offsets]
    return probe_idx, build_idx, counts


def join_indices(probe_keys: np.ndarray, build_keys: np.ndarray,
                 probe_null: Optional[np.ndarray] = None,
                 build_null: Optional[np.ndarray] = None,
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Matching row index pairs between probe and build key arrays.

    Null-masked keys (``True`` in the optional masks) never match any row;
    their match count is 0, so outer-join padding and anti-join retention
    fall out of the counts exactly as for keys with no partner.

    Returns:
        ``(probe_idx, build_idx, match_counts)`` where the first two arrays are
        parallel and give every matching pair, and ``match_counts[i]`` is the
        number of build matches for probe row ``i`` (used for outer / semi /
        anti semantics).
    """
    probe_keys = np.asarray(probe_keys)
    build_keys = np.asarray(build_keys)
    # Filters upstream may have dropped every NULL: an all-False mask is
    # semantically None, and the plain kernel is much cheaper than the
    # subset-and-remap path.
    if probe_null is not None and not probe_null.any():
        probe_null = None
    if build_null is not None and not build_null.any():
        build_null = None
    if probe_null is None and build_null is None:
        return _valid_join_indices(probe_keys, build_keys)
    if probe_null is not None:
        probe_sel = np.flatnonzero(~probe_null)
        probe_sub = probe_keys[probe_sel]
    else:
        probe_sel = None
        probe_sub = probe_keys
    if build_null is not None:
        build_sel = np.flatnonzero(~build_null)
        build_sub = build_keys[build_sel]
    else:
        build_sel = None
        build_sub = build_keys
    probe_idx, build_idx, sub_counts = _valid_join_indices(probe_sub, build_sub)
    if build_sel is not None:
        build_idx = build_sel[build_idx]
    if probe_sel is not None:
        probe_idx = probe_sel[probe_idx]
        counts = np.zeros(probe_keys.shape[0], dtype=np.int64)
        counts[probe_sel] = sub_counts
    else:
        counts = sub_counts
    return probe_idx, build_idx, counts


def clause_key_columns(clauses: Sequence[JoinClause], probe: Batch,
                       build: Batch) -> Tuple[np.ndarray, np.ndarray,
                                              Optional[np.ndarray],
                                              Optional[np.ndarray]]:
    """Extract and combine the probe-side and build-side key arrays.

    Returns ``(probe_keys, build_keys, probe_null, build_null)``; the null
    masks mark rows where *any* key component is NULL (a composite key with a
    NULL component compares UNKNOWN, hence never matches).
    """
    probe_cols: List[np.ndarray] = []
    build_cols: List[np.ndarray] = []
    probe_null: Optional[np.ndarray] = None
    build_null: Optional[np.ndarray] = None
    for clause in clauses:
        left_key = "%s.%s" % (clause.left.relation, clause.left.column)
        right_key = "%s.%s" % (clause.right.relation, clause.right.column)
        if probe.has_column(left_key):
            probe_key, build_key = left_key, right_key
        else:
            probe_key, build_key = right_key, left_key
        probe_cols.append(probe.column(probe_key))
        build_cols.append(build.column(build_key))
        pmask = probe.null_mask(probe_key)
        if pmask is not None:
            probe_null = pmask if probe_null is None else (probe_null | pmask)
        bmask = build.null_mask(build_key)
        if bmask is not None:
            build_null = bmask if build_null is None else (build_null | bmask)
    return (combine_key_columns(probe_cols), combine_key_columns(build_cols),
            probe_null, build_null)


def _null_batch(like: Batch, num_rows: int) -> Batch:
    """A ``num_rows``-row batch of NULL rows matching ``like``'s columns.

    Every column keeps its original dtype (so concatenating matched and
    padded rows never silently promotes the column type) and carries an
    all-null mask; the filler values underneath are zero / empty and are
    never read as data.
    """
    columns = {}
    masks = {}
    all_null = np.ones(num_rows, dtype=bool)
    for key in like.keys:
        dtype = like.column(key).dtype
        if dtype.kind == "O":
            columns[key] = np.full(num_rows, None, dtype=object)
        else:
            columns[key] = np.zeros(num_rows, dtype=dtype)
        masks[key] = all_null
    return Batch(columns, masks)


def _concat_batches(pieces: Sequence[Batch]) -> Batch:
    """Row-wise concatenation of same-schema batches, mask-aware."""
    if len(pieces) == 1:
        return pieces[0]
    columns = {}
    masks = {}
    for key in pieces[0].keys:
        columns[key] = np.concatenate([piece.column(key) for piece in pieces])
        piece_masks = [piece.null_mask(key) for piece in pieces]
        if any(mask is not None for mask in piece_masks):
            masks[key] = np.concatenate([
                mask if mask is not None else np.zeros(piece.num_rows, dtype=bool)
                for piece, mask in zip(pieces, piece_masks)])
    return Batch(columns, masks)


def equi_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
              join_type: JoinType = JoinType.INNER) -> Batch:
    """Join two batches on the given equi-join clauses.

    ``probe`` corresponds to the plan's outer input and ``build`` to the inner
    input; for LEFT joins the probe side is the row-preserving side, matching
    how the enumerator orients non-inner joins.  FULL joins preserve both
    sides: unmatched probe rows are null-padded on the build columns and
    unmatched build rows are null-padded on the probe columns.  Null-keyed
    probe rows count as unmatched (preserved by LEFT/FULL and ANTI, dropped
    by INNER and SEMI) and null-keyed build rows never match.
    """
    if not clauses:
        return cross_join(probe, build)
    probe_keys, build_keys, probe_null, build_null = clause_key_columns(
        clauses, probe, build)
    probe_idx, build_idx, counts = join_indices(probe_keys, build_keys,
                                                probe_null, build_null)

    if join_type is JoinType.SEMI:
        return probe.filter(counts > 0)
    if join_type is JoinType.ANTI:
        return probe.filter(counts == 0)

    matched = probe.take(probe_idx).merge(build.take(build_idx))
    if join_type is JoinType.INNER:
        return matched
    if join_type in (JoinType.LEFT, JoinType.FULL):
        pieces = [matched]
        unmatched_mask = counts == 0
        if unmatched_mask.any():
            unmatched = probe.filter(unmatched_mask)
            pieces.append(unmatched.merge(_null_batch(build,
                                                      unmatched.num_rows)))
        if join_type is JoinType.FULL:
            build_matched = np.zeros(build.num_rows, dtype=bool)
            build_matched[build_idx] = True
            if not build_matched.all():
                unmatched_build = build.filter(~build_matched)
                pieces.append(_null_batch(
                    probe, unmatched_build.num_rows).merge(unmatched_build))
        return _concat_batches(pieces)
    raise ValueError("unsupported join type %r" % join_type)


def cross_join(probe: Batch, build: Batch) -> Batch:
    """Cartesian product of two batches (only used for tiny inputs)."""
    n, m = probe.num_rows, build.num_rows
    probe_idx = np.repeat(np.arange(n, dtype=np.int64), m)
    build_idx = np.tile(np.arange(m, dtype=np.int64), n)
    return probe.take(probe_idx).merge(build.take(build_idx))


def merge_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
               join_type: JoinType = JoinType.INNER) -> Batch:
    """Sort-merge join; semantically identical to :func:`equi_join`.

    The kernel is already sort-based, so the merge join reuses it — the cost
    difference between hash and merge joins is modelled by the optimizer, not
    re-measured here.
    """
    return equi_join(probe, build, clauses, join_type)


def nested_loop_join(probe: Batch, build: Batch, clauses: Sequence[JoinClause],
                     join_type: JoinType = JoinType.INNER) -> Batch:
    """Nested-loop join; with equi-clauses it degenerates to the same kernel."""
    if clauses:
        return equi_join(probe, build, clauses, join_type)
    return cross_join(probe, build)
