"""Execution context: catalog access, Bloom filter scoping, tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bloom import BloomFilter, PartitionedBloomFilter
from ..core.cost import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from ..storage.catalog import Catalog


class FilterScope:
    """Bloom filters published during a *single* plan execution.

    Build-side hash joins publish their filters here and the probe-side scans
    below them fetch them.  Each :meth:`Executor.execute
    <repro.executor.runtime.Executor.execute>` call creates its own scope, so
    two in-flight executions against one shared :class:`ExecutionContext`
    (e.g. two API sessions over the same catalog) can never observe — or
    clobber — each other's filters.
    """

    def __init__(self) -> None:
        self._filters: Dict[str, BloomFilter] = {}
        self._partitioned_filters: Dict[str, PartitionedBloomFilter] = {}

    def register_filter(self, filter_id: str, bloom: BloomFilter,
                        partitioned: Optional[PartitionedBloomFilter] = None) -> None:
        """Publish a built Bloom filter so probe-side scans can fetch it."""
        self._filters[filter_id] = bloom
        if partitioned is not None:
            self._partitioned_filters[filter_id] = partitioned

    def get_filter(self, filter_id: str) -> BloomFilter:
        """Fetch a previously built Bloom filter.

        Raises ``KeyError`` if the filter has not been built yet — this mirrors
        the paper's semantics that "table scans wait for all Bloom filter
        partitions to become available before scanning can proceed": in our
        single-threaded executor the build side of the resolving hash join is
        always executed before the probe side, so a missing filter indicates a
        plan bug rather than a race.
        """
        if filter_id not in self._filters:
            raise KeyError("Bloom filter %r has not been built before its "
                           "probe-side scan" % filter_id)
        return self._filters[filter_id]

    def has_filter(self, filter_id: str) -> bool:
        """True if the filter has already been built."""
        return filter_id in self._filters

    def clear(self) -> None:
        """Drop all registered filters."""
        self._filters.clear()
        self._partitioned_filters.clear()


@dataclass
class ExecutionContext:
    """Shared state for query executions against one catalog.

    Attributes:
        catalog: Source of table data.
        cost_model: Charges work units for the simulated latency model; uses
            the same constants as the optimizer so estimated and observed
            costs are comparable.
        degree_of_parallelism: Simulated DOP used when charging broadcast and
            per-worker hash-table build work.
        bloom_partitions: Number of partial Bloom filters built per filter,
            emulating the partition-join strategies of Section 3.9 (1 means a
            single monolithic filter, as in build-side broadcast).
        bloom_bits_per_key: Sizing knob forwarded to runtime Bloom filters.

    Bloom filters built at runtime are *not* shared context state: every
    execution publishes them into its own :class:`FilterScope` (see
    :meth:`new_filter_scope`), which keeps concurrent executions on one
    context independent.  Callers driving scans by hand construct a scope,
    register filters on it and pass it to
    :meth:`Executor.execute(plan, filters=scope)
    <repro.executor.runtime.Executor.execute>`.
    """

    catalog: Catalog
    cost_model: CostModel = field(default_factory=lambda: CostModel(DEFAULT_COST_PARAMETERS))
    degree_of_parallelism: int = 48
    bloom_partitions: int = 1
    bloom_bits_per_key: int = 8

    @classmethod
    def for_catalog(cls, catalog: Catalog,
                    parameters: Optional[CostParameters] = None,
                    degree_of_parallelism: int = 48) -> "ExecutionContext":
        """Convenience constructor mirroring the optimizer's defaults."""
        params = parameters or DEFAULT_COST_PARAMETERS
        return cls(catalog=catalog, cost_model=CostModel(params),
                   degree_of_parallelism=degree_of_parallelism)

    # -- Bloom filter scoping -------------------------------------------------

    def new_filter_scope(self) -> FilterScope:
        """A fresh, empty filter scope for one plan execution."""
        return FilterScope()
