"""Execution context: catalog access, Bloom filter scoping, tuning knobs."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bloom import BloomFilter, PartitionedBloomFilter
from ..core.cost import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from ..faults import FaultPlan
from ..storage.catalog import Catalog
from .backend import EXECUTOR_BACKENDS, MorselPools, resolve_backend
from .breaker import CircuitBreaker
from .cancel import CancelToken
from .joins import DEFAULT_MAX_CROSS_JOIN_ROWS
from .memory import MemoryGovernor, MemoryStats, default_governor
from .shm import live_segment_stats

#: Default morsel row count: large enough that per-morsel dispatch overhead
#: stays negligible, small enough that a skewed partition still splits into
#: several work units.
DEFAULT_MORSEL_SIZE = 65_536


def executor_overrides(executor_workers: Optional[int] = None,
                       morsel_size: Optional[int] = None,
                       max_cross_join_rows: Optional[int] = None,
                       executor_backend: Optional[str] = None,
                       max_memory_bytes: Optional[int] = None,
                       max_spill_bytes: Optional[int] = None,
                       max_rows: Optional[int] = None,
                       spill_dir: Optional[str] = None) -> dict:
    """Non-``None`` executor knobs as an override-ready dict.

    Shared by :class:`repro.api.Database` and :class:`repro.api.Session` so
    the two override layers expose the identical knob set and cannot drift
    (the executor-side twin of
    :func:`repro.core.heuristics.planner_overrides`).  Validates eagerly: a
    nonsensical ``morsel_size`` fails at construction time, not mid-query.
    """
    if morsel_size is not None and morsel_size <= 0:
        raise ValueError("morsel_size must be positive, got %r" % morsel_size)
    if executor_workers is not None and executor_workers < 0:
        raise ValueError("executor_workers must be non-negative, got %r"
                         % executor_workers)
    if executor_backend is not None \
            and executor_backend not in EXECUTOR_BACKENDS:
        raise ValueError("executor_backend must be one of %r, got %r"
                         % (EXECUTOR_BACKENDS, executor_backend))
    for name, value in (("max_memory_bytes", max_memory_bytes),
                        ("max_spill_bytes", max_spill_bytes),
                        ("max_rows", max_rows)):
        if value is not None and value <= 0:
            raise ValueError("%s must be positive or None, got %r"
                             % (name, value))
    return {key: value for key, value in (
        ("executor_workers", executor_workers),
        ("morsel_size", morsel_size),
        ("max_cross_join_rows", max_cross_join_rows),
        ("executor_backend", executor_backend),
        ("max_memory_bytes", max_memory_bytes),
        ("max_spill_bytes", max_spill_bytes),
        ("max_rows", max_rows),
        ("spill_dir", spill_dir)) if value is not None}


class FilterScope:
    """Bloom filters published during a *single* plan execution.

    Build-side hash joins publish their filters here and the probe-side scans
    below them fetch them.  Each :meth:`Executor.execute
    <repro.executor.runtime.Executor.execute>` call creates its own scope, so
    two in-flight executions against one shared :class:`ExecutionContext`
    (e.g. two API sessions over the same catalog) can never observe — or
    clobber — each other's filters.
    """

    def __init__(self) -> None:
        self._filters: Dict[str, BloomFilter] = {}
        self._partitioned_filters: Dict[str, PartitionedBloomFilter] = {}

    def register_filter(self, filter_id: str, bloom: BloomFilter,
                        partitioned: Optional[PartitionedBloomFilter] = None) -> None:
        """Publish a built Bloom filter so probe-side scans can fetch it."""
        self._filters[filter_id] = bloom
        if partitioned is not None:
            self._partitioned_filters[filter_id] = partitioned

    def get_filter(self, filter_id: str) -> BloomFilter:
        """Fetch a previously built Bloom filter.

        Raises ``KeyError`` if the filter has not been built yet — this mirrors
        the paper's semantics that "table scans wait for all Bloom filter
        partitions to become available before scanning can proceed": in our
        single-threaded executor the build side of the resolving hash join is
        always executed before the probe side, so a missing filter indicates a
        plan bug rather than a race.
        """
        if filter_id not in self._filters:
            raise KeyError("Bloom filter %r has not been built before its "
                           "probe-side scan" % filter_id)
        return self._filters[filter_id]

    def has_filter(self, filter_id: str) -> bool:
        """True if the filter has already been built."""
        return filter_id in self._filters

    def clear(self) -> None:
        """Drop all registered filters."""
        self._filters.clear()
        self._partitioned_filters.clear()


@dataclass
class ExecutionContext:
    """Shared state for query executions against one catalog.

    Attributes:
        catalog: Source of table data.
        cost_model: Charges work units for the simulated latency model; uses
            the same constants as the optimizer so estimated and observed
            costs are comparable.
        degree_of_parallelism: Simulated DOP used when charging broadcast and
            per-worker hash-table build work.
        bloom_partitions: Number of partial Bloom filters built per filter,
            emulating the partition-join strategies of Section 3.9 (1 means a
            single monolithic filter, as in build-side broadcast).
        bloom_bits_per_key: Sizing knob forwarded to runtime Bloom filters.
        executor_workers: Morsel-execution worker count.  ``<= 1`` runs the
            classic serial operators; above that, scans, projections, join
            probes, aggregation partials and sort runs split their input
            into morsels processed on a shared worker pool and re-combined
            in canonical order (bit-identical to serial; see
            ``docs/executor.md``).
        executor_backend: How morsels escape the interpreter: ``"thread"``
            (shared thread pool, the default), ``"process"`` (spawn-based
            process pool shipping columns through
            ``multiprocessing.shared_memory``) or ``"auto"`` (threads on
            free-threaded CPython 3.13+, processes elsewhere).  See
            :func:`repro.executor.backend.resolve_backend`.
        morsel_size: Maximum rows per morsel.  Morsel boundaries additionally
            align to storage partition boundaries so each morsel stays within
            one partition.
        max_cross_join_rows: Guard against accidental Cartesian blow-ups: a
            cross join whose output would exceed this many rows raises
            :class:`~repro.errors.ExecutionError` instead of allocating
            ``n * m`` rows (``<= 0`` disables the guard).
        cancel_token: Default :class:`~repro.executor.cancel.CancelToken`
            polled by every execution on this context (the sync-API hook for
            cooperative cancellation).  A per-call token passed to
            :meth:`Executor.execute <repro.executor.runtime.Executor.execute>`
            takes precedence — concurrent executions sharing one context
            should always use per-call tokens.
        fault_plan: Optional :class:`~repro.faults.FaultPlan` consulted at
            the named injection sites (morsel dispatch, pool submit, shm
            allocate/attach, memory pressure) by every execution on this
            context.  ``None`` (the default) costs a single ``is None``
            check per site — zero overhead in production; see
            ``docs/robustness.md``.
        memory_governor: The process-wide byte pool executions draw their
            per-query :class:`~repro.executor.memory.MemoryBudget` grants
            from.  ``None`` (the default) resolves to
            :func:`~repro.executor.memory.default_governor`, whose pool
            size comes from ``REPRO_MEMORY_POOL_BYTES``; see
            ``docs/memory.md``.
        max_memory_bytes: Per-query reserved-byte cap; a reservation above
            the cap is denied, degrading the operator to its spill path
            (``None`` = uncapped).
        max_spill_bytes: Per-query spill-file cap; exceeding it raises a
            permanent :class:`~repro.errors.ResourceExhaustedError` — the
            watchdog against a runaway query trading RAM for disk.
        max_rows: Per-query materialized-row cap enforced at operator
            outputs (``None`` = uncapped).
        spill_dir: Root directory for per-query spill directories
            (``None`` = the system temp dir).

    Bloom filters built at runtime are *not* shared context state: every
    execution publishes them into its own :class:`FilterScope` (see
    :meth:`new_filter_scope`), which keeps concurrent executions on one
    context independent.  Callers driving scans by hand construct a scope,
    register filters on it and pass it to
    :meth:`Executor.execute(plan, filters=scope)
    <repro.executor.runtime.Executor.execute>`.
    """

    catalog: Catalog
    cost_model: CostModel = field(default_factory=lambda: CostModel(DEFAULT_COST_PARAMETERS))
    degree_of_parallelism: int = 48
    bloom_partitions: int = 1
    bloom_bits_per_key: int = 8
    executor_workers: int = 0
    morsel_size: int = DEFAULT_MORSEL_SIZE
    max_cross_join_rows: int = DEFAULT_MAX_CROSS_JOIN_ROWS
    executor_backend: str = "thread"
    cancel_token: Optional[CancelToken] = None
    fault_plan: Optional[FaultPlan] = None
    memory_governor: Optional[MemoryGovernor] = None
    max_memory_bytes: Optional[int] = None
    max_spill_bytes: Optional[int] = None
    max_rows: Optional[int] = None
    spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executor_backend not in EXECUTOR_BACKENDS:
            raise ValueError("executor_backend must be one of %r, got %r"
                             % (EXECUTOR_BACKENDS, self.executor_backend))
        #: Lazily created, persistent morsel/process/batch pools shared by
        #: every execution on this context (see
        #: :class:`repro.executor.backend.MorselPools`).
        self.pools = MorselPools()
        #: Circuit breaker gating the process backend: repeated transient
        #: process-dispatch failures trip every process-eligible operator
        #: over to the thread backend until a half-open probe succeeds (see
        #: :mod:`repro.executor.breaker`).
        self.breaker = CircuitBreaker()
        #: Cumulative memory counters: every per-query budget created on
        #: this context writes its reservations, denials and spill bytes
        #: here, so ``executor_stats()["memory"]`` reports session totals.
        self.memory_stats = MemoryStats()

    def governor(self) -> MemoryGovernor:
        """The governor executions draw budget grants from (resolved)."""
        if self.memory_governor is not None:
            return self.memory_governor
        return default_governor()

    @classmethod
    def for_catalog(cls, catalog: Catalog,
                    parameters: Optional[CostParameters] = None,
                    degree_of_parallelism: int = 48,
                    executor_workers: int = 0,
                    morsel_size: int = DEFAULT_MORSEL_SIZE) -> "ExecutionContext":
        """Convenience constructor mirroring the optimizer's defaults."""
        params = parameters or DEFAULT_COST_PARAMETERS
        return cls(catalog=catalog, cost_model=CostModel(params),
                   degree_of_parallelism=degree_of_parallelism,
                   executor_workers=executor_workers,
                   morsel_size=morsel_size)

    # -- Bloom filter scoping -------------------------------------------------

    def new_filter_scope(self) -> FilterScope:
        """A fresh, empty filter scope for one plan execution."""
        return FilterScope()

    # -- morsel worker pool ---------------------------------------------------

    def morsel_pool(self) -> ThreadPoolExecutor:
        """The shared morsel thread pool, sized to ``executor_workers``.

        Created lazily and rebuilt if the knob changed since the last
        execution.  Morsel tasks never submit further pool work, so any
        number of concurrent executions can share the pool without deadlock
        (batched serving uses its own, separate pool for whole queries).
        """
        return self.pools.thread_pool(max(int(self.executor_workers), 1))

    def executor_stats(self) -> Dict[str, object]:
        """Pool-lifecycle and dispatch counters plus the resolved knobs.

        The executor-side twin of ``db.cache_stats()``: a snapshot of the
        shared pool state (creation counts, dispatched morsel/batch tasks,
        shared-memory bytes) so tests and operators can pin the
        no-pool-churn behaviour of ``execute_many`` and observe which
        backend actually runs.
        """
        stats: Dict[str, object] = dict(self.pools.stats())
        stats["executor_backend"] = self.executor_backend
        stats["resolved_backend"] = resolve_backend(self.executor_backend)
        stats["executor_workers"] = self.executor_workers
        stats["morsel_size"] = self.morsel_size
        stats["circuit_breaker"] = self.breaker.stats()
        stats["fault_injections"] = (
            {} if self.fault_plan is None else self.fault_plan.counters())
        memory: Dict[str, object] = dict(self.memory_stats.as_dict())
        memory["governor"] = self.governor().stats()
        memory["shm"] = live_segment_stats()
        stats["memory"] = memory
        return stats

    def close(self) -> None:
        """Shut every shared pool down deterministically (idempotent).

        Called by :meth:`Session.close <repro.api.session.Session.close>`;
        without it the lazily created pools' workers live until interpreter
        exit.  A later :meth:`morsel_pool` call would lazily rebuild the
        pool, but sessions guard execution after close so it never happens
        through the API.
        """
        self.pools.close()
