"""Execution context: catalog access, Bloom filter registry, tuning knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..bloom import BloomFilter, PartitionedBloomFilter
from ..core.cost import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from ..storage.catalog import Catalog


@dataclass
class ExecutionContext:
    """Shared state for one query execution.

    Attributes:
        catalog: Source of table data.
        cost_model: Charges work units for the simulated latency model; uses
            the same constants as the optimizer so estimated and observed
            costs are comparable.
        degree_of_parallelism: Simulated DOP used when charging broadcast and
            per-worker hash-table build work.
        bloom_partitions: Number of partial Bloom filters built per filter,
            emulating the partition-join strategies of Section 3.9 (1 means a
            single monolithic filter, as in build-side broadcast).
        bloom_bits_per_key: Sizing knob forwarded to runtime Bloom filters.
    """

    catalog: Catalog
    cost_model: CostModel = field(default_factory=lambda: CostModel(DEFAULT_COST_PARAMETERS))
    degree_of_parallelism: int = 48
    bloom_partitions: int = 1
    bloom_bits_per_key: int = 8
    _filters: Dict[str, BloomFilter] = field(default_factory=dict)
    _partitioned_filters: Dict[str, PartitionedBloomFilter] = field(default_factory=dict)

    @classmethod
    def for_catalog(cls, catalog: Catalog,
                    parameters: Optional[CostParameters] = None,
                    degree_of_parallelism: int = 48) -> "ExecutionContext":
        """Convenience constructor mirroring the optimizer's defaults."""
        params = parameters or DEFAULT_COST_PARAMETERS
        return cls(catalog=catalog, cost_model=CostModel(params),
                   degree_of_parallelism=degree_of_parallelism)

    # -- Bloom filter registry ------------------------------------------------

    def register_filter(self, filter_id: str, bloom: BloomFilter,
                        partitioned: Optional[PartitionedBloomFilter] = None) -> None:
        """Publish a built Bloom filter so probe-side scans can fetch it."""
        self._filters[filter_id] = bloom
        if partitioned is not None:
            self._partitioned_filters[filter_id] = partitioned

    def get_filter(self, filter_id: str) -> BloomFilter:
        """Fetch a previously built Bloom filter.

        Raises ``KeyError`` if the filter has not been built yet — this mirrors
        the paper's semantics that "table scans wait for all Bloom filter
        partitions to become available before scanning can proceed": in our
        single-threaded executor the build side of the resolving hash join is
        always executed before the probe side, so a missing filter indicates a
        plan bug rather than a race.
        """
        if filter_id not in self._filters:
            raise KeyError("Bloom filter %r has not been built before its "
                           "probe-side scan" % filter_id)
        return self._filters[filter_id]

    def has_filter(self, filter_id: str) -> bool:
        """True if the filter has already been built."""
        return filter_id in self._filters

    def reset_filters(self) -> None:
        """Drop all registered filters (between executions)."""
        self._filters.clear()
        self._partitioned_filters.clear()
