"""Morsel execution backends: thread pool, process pool, inline.

The morsel executor dispatches per-morsel work through one of three
backends, selected by the ``executor_backend`` knob:

``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor` — the default.
    Closures capture batches directly; numpy kernels release the GIL for
    parts of their work, and on free-threaded CPython (3.13+ ``--disable-
    gil`` builds) threads scale without any data shipping at all.
``process``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor` (spawn start
    method) that escapes the GIL on standard CPython.  Tasks name a
    module-level kernel (``"pkg.module:function"``) plus picklable args;
    bulk array inputs travel as zero-copy :mod:`repro.executor.shm` refs,
    and only the morsel-sized results are pickled back.
``auto``
    Resolves to ``thread`` on free-threaded builds (threads already escape
    the GIL there) and to ``process`` everywhere else.

Cancellation: the thread backend re-checks the execution's
:class:`~repro.executor.cancel.CancelToken` at the start of every morsel
(via :meth:`CancelToken.guard <repro.executor.cancel.CancelToken.guard>`);
the process backend dispatches tasks through a bounded window and polls the
token before every submission, so a cancelled query stops issuing work
within one dispatch window and its error surfaces on the next collected
future.

Supervision: a worker-process death surfaces as ``BrokenExecutor`` on the
in-flight futures.  :meth:`MorselPools.process_map` absorbs exactly one such
failure per dispatch — it rebuilds the pool and re-runs only the morsel
spans whose results were not yet collected, so the result list is
bit-identical to an undisturbed run (results concatenate in span order and
every span is pure).  A second break in the same dispatch surfaces as
:class:`~repro.errors.WorkerCrashError`, a transient error the circuit
breaker (:mod:`repro.executor.breaker`) counts toward tripping the process
backend over to threads.

Pools are created lazily, kept for the lifetime of their
:class:`~repro.executor.context.ExecutionContext` (no per-execution or
per-``execute_many`` churn) and observable through
:meth:`MorselPools.stats`.
"""

from __future__ import annotations

import importlib
import sys
import threading
from concurrent.futures import (BrokenExecutor, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ShmPressureError, WorkerCrashError
from ..faults import FaultPlan, SITE_MORSEL_DISPATCH, SITE_POOL_SUBMIT
from .cancel import CancelToken

__all__ = [
    "EXECUTOR_BACKENDS",
    "MorselPools",
    "resolve_backend",
    "run_kernel",
]

#: The accepted values of the ``executor_backend`` knob.
EXECUTOR_BACKENDS = ("thread", "process", "auto")


def free_threaded_build() -> bool:
    """True on a free-threaded (GIL-less) CPython 3.13+ build."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


def resolve_backend(backend: str) -> str:
    """Resolve the ``executor_backend`` knob to ``thread`` or ``process``.

    ``auto`` stays on threads when the interpreter is free-threaded (there
    is no GIL to escape, and threads share memory for free) and picks the
    shared-memory process backend on standard GIL builds.
    """
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError("executor_backend must be one of %r, got %r"
                         % (EXECUTOR_BACKENDS, backend))
    if backend == "auto":
        return "thread" if free_threaded_build() else "process"
    return backend


#: Worker-side kernel resolution cache (``"module:function"`` -> callable).
_KERNELS: Dict[str, Callable[..., Any]] = {}


def run_kernel(spec: str, args: tuple) -> Any:
    """Process-pool entry point: resolve and invoke a registered kernel.

    Kernels are addressed by ``"package.module:function"`` so the spawn
    start method never pickles code objects — the worker imports the module
    (inheriting the parent's ``sys.path``) and caches the callable.
    """
    kernel = _KERNELS.get(spec)
    if kernel is None:
        module_name, _, func_name = spec.partition(":")
        kernel = getattr(importlib.import_module(module_name), func_name)
        # lint: allow(worker-shared-mutation) — process-local resolution
        # cache: each worker process owns its private copy of this module.
        _KERNELS[spec] = kernel
    try:
        return kernel(*args)
    except FileNotFoundError as exc:
        # A shared-memory attach failed: the segment the parent exported is
        # gone (/dev/shm pressure or an early unlink).  Surface it as the
        # typed transient error so the serving tier knows a retry is safe.
        raise ShmPressureError(
            "worker could not attach shared memory for kernel %r: %s"
            % (spec, exc)) from exc


class MorselPools:
    """Lazily created, persistent worker pools plus their statistics.

    One instance lives on each :class:`ExecutionContext` and is shared by
    every execution on that context: the morsel thread pool, the process
    pool of the GIL-escape backend and the ``execute_many`` batch pool are
    all created at most once per size and reused until :meth:`close` —
    pool construction counts are part of :meth:`stats` precisely so tests
    can pin the no-churn behaviour.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_pool_size = 0
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_size = 0
        self._batch_pool: Optional[ThreadPoolExecutor] = None
        self._batch_pool_size = 0
        self._pools_created = 0
        self._morsel_tasks = 0
        self._process_tasks = 0
        self._batch_tasks = 0
        self._shm_bytes = 0
        self._shm_fallbacks = 0
        self._process_pool_rebuilds = 0
        self._worker_crashes = 0
        self._morsel_retries = 0

    # -- pool acquisition ---------------------------------------------------

    def thread_pool(self, workers: int) -> ThreadPoolExecutor:
        """The shared morsel thread pool, rebuilt only when resized."""
        workers = max(int(workers), 1)
        with self._lock:
            if self._thread_pool is None or self._thread_pool_size != workers:
                if self._thread_pool is not None:
                    self._thread_pool.shutdown(wait=False)
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-morsel")
                self._thread_pool_size = workers
                self._pools_created += 1
            return self._thread_pool

    def process_pool(self, workers: int) -> ProcessPoolExecutor:
        """The shared GIL-escape process pool (spawn start method).

        Spawn is chosen over fork deliberately: the engine runs worker
        threads (serving tier, batch pool) and forking a threaded parent is
        undefined-behaviour territory; spawn also propagates ``sys.path``
        so workers can import the kernels by name.
        """
        workers = max(int(workers), 1)
        with self._lock:
            if self._process_pool is None \
                    or self._process_pool_size != workers:
                if self._process_pool is not None:
                    self._process_pool.shutdown(wait=False)
                self._process_pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=get_context("spawn"))
                self._process_pool_size = workers
                self._pools_created += 1
            return self._process_pool

    def batch_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent ``execute_many`` batch pool (whole queries).

        Separate from the morsel pool so per-query morsel parallelism
        composes with batch parallelism without deadlock; reused across
        ``execute_many`` calls instead of being rebuilt per call.
        """
        workers = max(int(workers), 1)
        with self._lock:
            if self._batch_pool is None or self._batch_pool_size != workers:
                if self._batch_pool is not None:
                    self._batch_pool.shutdown(wait=False)
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serve")
                self._batch_pool_size = workers
                self._pools_created += 1
            return self._batch_pool

    # -- dispatch -----------------------------------------------------------

    def thread_map(self, fn: Callable[[Any], Any], items: Sequence[Any],
                   cancel: Optional[CancelToken], workers: int,
                   faults: Optional[FaultPlan] = None) -> List[Any]:
        """Run ``fn`` over ``items`` on the thread pool, results in order.

        Submission order is preserved, so concatenating the results
        reproduces the serial output exactly; the first worker exception
        propagates.  With a cancel token, every morsel re-checks the token
        before doing any work — a request abandoned mid-operator stops
        within one morsel: in-flight morsels finish, queued ones raise
        immediately.  With a fault plan, the ``morsel-dispatch`` site is
        consulted before each submission (hit ordinal == morsel index, so
        injection is deterministic).
        """
        pool = self.thread_pool(workers)
        if cancel is not None:
            fn = cancel.guard(fn)
        with self._lock:
            self._morsel_tasks += len(items)
        futures = []
        for item in items:
            if faults is not None:
                faults.check(SITE_MORSEL_DISPATCH)
            futures.append(pool.submit(fn, item))
        return [future.result() for future in futures]

    def process_map(self, kernel: str, args_list: Sequence[tuple],
                    cancel: Optional[CancelToken], workers: int,
                    faults: Optional[FaultPlan] = None) -> List[Any]:
        """Run a named kernel over per-morsel args on the process pool.

        Supervised: if the pool breaks mid-dispatch (a worker died), it is
        rebuilt **once** and only the spans whose results were not yet
        collected are re-submitted — spans are pure functions of their args,
        so the recovered result list is bit-identical to an undisturbed run.
        A second break in the same dispatch gives up with
        :class:`~repro.errors.WorkerCrashError` (transient, retryable).
        Results come back in submission order.
        """
        workers = max(int(workers), 1)
        with self._lock:
            self._process_tasks += len(args_list)
        results: List[Any] = [None] * len(args_list)
        pending = list(range(len(args_list)))
        rebuilt = False
        while True:
            pool = self.process_pool(workers)
            try:
                self._dispatch_window(pool, kernel, args_list, results,
                                      pending, cancel, workers, faults)
                return results
            except BrokenExecutor as exc:
                with self._lock:
                    self._worker_crashes += 1
                if rebuilt:
                    raise WorkerCrashError(
                        "process pool broke again after a rebuild while "
                        "dispatching kernel %r; giving up on this dispatch"
                        % kernel) from exc
                rebuilt = True
                with self._lock:
                    self._morsel_retries += len(pending)
                self._discard_process_pool()

    def _dispatch_window(self, pool: ProcessPoolExecutor, kernel: str,
                         args_list: Sequence[tuple], results: List[Any],
                         pending: List[int], cancel: Optional[CancelToken],
                         workers: int, faults: Optional[FaultPlan]) -> None:
        """One windowed dispatch attempt over the still-pending spans.

        Tasks flow through a bounded window (two per worker) and the cancel
        token is polled before every submission, so a cancelled query stops
        issuing new work within one dispatch step; outstanding futures are
        cancelled when an error unwinds.  ``pending`` is trimmed to the
        uncollected suffix on every exit path — that is exactly what a
        supervision re-run re-submits.
        """
        window = workers * 2
        todo = list(pending)
        futures: Dict[int, Future] = {}
        submitted = collected = 0
        try:
            while collected < len(todo):
                while submitted < len(todo) \
                        and submitted - collected < window:
                    if cancel is not None:
                        cancel.check()
                    if faults is not None:
                        faults.check(SITE_POOL_SUBMIT)
                    futures[submitted] = pool.submit(
                        run_kernel, kernel, args_list[todo[submitted]])
                    submitted += 1
                results[todo[collected]] = futures.pop(collected).result()
                collected += 1
        except BaseException:
            for future in futures.values():
                future.cancel()
            raise
        finally:
            del pending[:collected]

    def _discard_process_pool(self) -> None:
        """Drop the (broken) process pool so the next acquisition rebuilds."""
        with self._lock:
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=False)
                self._process_pool = None
                self._process_pool_size = 0
            self._process_pool_rebuilds += 1

    def count_batch_tasks(self, count: int) -> None:
        """Record ``count`` whole-query tasks dispatched to the batch pool."""
        with self._lock:
            self._batch_tasks += count

    def count_shm_bytes(self, count: int) -> None:
        """Record shared-memory bytes exported for process-backend morsels."""
        with self._lock:
            self._shm_bytes += count

    def count_shm_fallbacks(self, count: int) -> None:
        """Record exports that degraded to inline transport (shm pressure)."""
        with self._lock:
            self._shm_fallbacks += count

    # -- observability / lifecycle ------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Pool-lifecycle and dispatch counters (``executor_stats`` body)."""
        with self._lock:
            return {
                "pools_created": self._pools_created,
                "morsel_tasks": self._morsel_tasks,
                "process_tasks": self._process_tasks,
                "batch_tasks": self._batch_tasks,
                "shm_bytes_exported": self._shm_bytes,
                "shm_fallbacks": self._shm_fallbacks,
                "process_pool_rebuilds": self._process_pool_rebuilds,
                "worker_crashes": self._worker_crashes,
                "morsel_retries": self._morsel_retries,
                "thread_pool_size": self._thread_pool_size,
                "process_pool_size": self._process_pool_size,
                "batch_pool_size": self._batch_pool_size,
            }

    def close(self) -> None:
        """Shut every pool down deterministically (idempotent)."""
        with self._lock:
            if self._thread_pool is not None:
                self._thread_pool.shutdown(wait=True)
                self._thread_pool = None
                self._thread_pool_size = 0
            if self._batch_pool is not None:
                self._batch_pool.shutdown(wait=True)
                self._batch_pool = None
                self._batch_pool_size = 0
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=True)
                self._process_pool = None
                self._process_pool_size = 0
