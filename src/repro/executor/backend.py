"""Morsel execution backends: thread pool, process pool, inline.

The morsel executor dispatches per-morsel work through one of three
backends, selected by the ``executor_backend`` knob:

``thread``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor` — the default.
    Closures capture batches directly; numpy kernels release the GIL for
    parts of their work, and on free-threaded CPython (3.13+ ``--disable-
    gil`` builds) threads scale without any data shipping at all.
``process``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor` (spawn start
    method) that escapes the GIL on standard CPython.  Tasks name a
    module-level kernel (``"pkg.module:function"``) plus picklable args;
    bulk array inputs travel as zero-copy :mod:`repro.executor.shm` refs,
    and only the morsel-sized results are pickled back.
``auto``
    Resolves to ``thread`` on free-threaded builds (threads already escape
    the GIL there) and to ``process`` everywhere else.

Cancellation: the thread backend re-checks the execution's
:class:`~repro.executor.cancel.CancelToken` at the start of every morsel
(via :meth:`CancelToken.guard <repro.executor.cancel.CancelToken.guard>`);
the process backend dispatches tasks through a bounded window and polls the
token before every submission, so a cancelled query stops issuing work
within one dispatch window and its error surfaces on the next collected
future.

Pools are created lazily, kept for the lifetime of their
:class:`~repro.executor.context.ExecutionContext` (no per-execution or
per-``execute_many`` churn) and observable through
:meth:`MorselPools.stats`.
"""

from __future__ import annotations

import importlib
import sys
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cancel import CancelToken

__all__ = [
    "EXECUTOR_BACKENDS",
    "MorselPools",
    "resolve_backend",
    "run_kernel",
]

#: The accepted values of the ``executor_backend`` knob.
EXECUTOR_BACKENDS = ("thread", "process", "auto")


def free_threaded_build() -> bool:
    """True on a free-threaded (GIL-less) CPython 3.13+ build."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


def resolve_backend(backend: str) -> str:
    """Resolve the ``executor_backend`` knob to ``thread`` or ``process``.

    ``auto`` stays on threads when the interpreter is free-threaded (there
    is no GIL to escape, and threads share memory for free) and picks the
    shared-memory process backend on standard GIL builds.
    """
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError("executor_backend must be one of %r, got %r"
                         % (EXECUTOR_BACKENDS, backend))
    if backend == "auto":
        return "thread" if free_threaded_build() else "process"
    return backend


#: Worker-side kernel resolution cache (``"module:function"`` -> callable).
_KERNELS: Dict[str, Callable[..., Any]] = {}


def run_kernel(spec: str, args: tuple) -> Any:
    """Process-pool entry point: resolve and invoke a registered kernel.

    Kernels are addressed by ``"package.module:function"`` so the spawn
    start method never pickles code objects — the worker imports the module
    (inheriting the parent's ``sys.path``) and caches the callable.
    """
    kernel = _KERNELS.get(spec)
    if kernel is None:
        module_name, _, func_name = spec.partition(":")
        kernel = getattr(importlib.import_module(module_name), func_name)
        # lint: allow(worker-shared-mutation) — process-local resolution
        # cache: each worker process owns its private copy of this module.
        _KERNELS[spec] = kernel
    return kernel(*args)


class MorselPools:
    """Lazily created, persistent worker pools plus their statistics.

    One instance lives on each :class:`ExecutionContext` and is shared by
    every execution on that context: the morsel thread pool, the process
    pool of the GIL-escape backend and the ``execute_many`` batch pool are
    all created at most once per size and reused until :meth:`close` —
    pool construction counts are part of :meth:`stats` precisely so tests
    can pin the no-churn behaviour.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_pool_size = 0
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._process_pool_size = 0
        self._batch_pool: Optional[ThreadPoolExecutor] = None
        self._batch_pool_size = 0
        self._pools_created = 0
        self._morsel_tasks = 0
        self._process_tasks = 0
        self._batch_tasks = 0
        self._shm_bytes = 0

    # -- pool acquisition ---------------------------------------------------

    def thread_pool(self, workers: int) -> ThreadPoolExecutor:
        """The shared morsel thread pool, rebuilt only when resized."""
        workers = max(int(workers), 1)
        with self._lock:
            if self._thread_pool is None or self._thread_pool_size != workers:
                if self._thread_pool is not None:
                    self._thread_pool.shutdown(wait=False)
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-morsel")
                self._thread_pool_size = workers
                self._pools_created += 1
            return self._thread_pool

    def process_pool(self, workers: int) -> ProcessPoolExecutor:
        """The shared GIL-escape process pool (spawn start method).

        Spawn is chosen over fork deliberately: the engine runs worker
        threads (serving tier, batch pool) and forking a threaded parent is
        undefined-behaviour territory; spawn also propagates ``sys.path``
        so workers can import the kernels by name.
        """
        workers = max(int(workers), 1)
        with self._lock:
            if self._process_pool is None \
                    or self._process_pool_size != workers:
                if self._process_pool is not None:
                    self._process_pool.shutdown(wait=False)
                self._process_pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=get_context("spawn"))
                self._process_pool_size = workers
                self._pools_created += 1
            return self._process_pool

    def batch_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent ``execute_many`` batch pool (whole queries).

        Separate from the morsel pool so per-query morsel parallelism
        composes with batch parallelism without deadlock; reused across
        ``execute_many`` calls instead of being rebuilt per call.
        """
        workers = max(int(workers), 1)
        with self._lock:
            if self._batch_pool is None or self._batch_pool_size != workers:
                if self._batch_pool is not None:
                    self._batch_pool.shutdown(wait=False)
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-serve")
                self._batch_pool_size = workers
                self._pools_created += 1
            return self._batch_pool

    # -- dispatch -----------------------------------------------------------

    def thread_map(self, fn: Callable[[Any], Any], items: Sequence[Any],
                   cancel: Optional[CancelToken], workers: int) -> List[Any]:
        """Run ``fn`` over ``items`` on the thread pool, results in order.

        Submission order is preserved, so concatenating the results
        reproduces the serial output exactly; the first worker exception
        propagates.  With a cancel token, every morsel re-checks the token
        before doing any work — a request abandoned mid-operator stops
        within one morsel: in-flight morsels finish, queued ones raise
        immediately.
        """
        pool = self.thread_pool(workers)
        if cancel is not None:
            fn = cancel.guard(fn)
        with self._lock:
            self._morsel_tasks += len(items)
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def process_map(self, kernel: str, args_list: Sequence[tuple],
                    cancel: Optional[CancelToken], workers: int,
                    ) -> List[Any]:
        """Run a named kernel over per-morsel args on the process pool.

        Tasks flow through a bounded window (two per worker) and the cancel
        token is polled before every submission, so a cancelled query stops
        issuing new work within one dispatch step; outstanding futures are
        cancelled when an error unwinds.  Results come back in submission
        order.
        """
        workers = max(int(workers), 1)
        pool = self.process_pool(workers)
        with self._lock:
            self._process_tasks += len(args_list)
        window = workers * 2
        futures: Dict[int, Future] = {}
        results: List[Any] = [None] * len(args_list)
        submitted = collected = 0
        try:
            while collected < len(args_list):
                while submitted < len(args_list) \
                        and submitted - collected < window:
                    if cancel is not None:
                        cancel.check()
                    futures[submitted] = pool.submit(
                        run_kernel, kernel, args_list[submitted])
                    submitted += 1
                results[collected] = futures.pop(collected).result()
                collected += 1
        except BaseException:
            for future in futures.values():
                future.cancel()
            raise
        return results

    def count_batch_tasks(self, count: int) -> None:
        """Record ``count`` whole-query tasks dispatched to the batch pool."""
        with self._lock:
            self._batch_tasks += count

    def count_shm_bytes(self, count: int) -> None:
        """Record shared-memory bytes exported for process-backend morsels."""
        with self._lock:
            self._shm_bytes += count

    # -- observability / lifecycle ------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Pool-lifecycle and dispatch counters (``executor_stats`` body)."""
        with self._lock:
            return {
                "pools_created": self._pools_created,
                "morsel_tasks": self._morsel_tasks,
                "process_tasks": self._process_tasks,
                "batch_tasks": self._batch_tasks,
                "shm_bytes_exported": self._shm_bytes,
                "thread_pool_size": self._thread_pool_size,
                "process_pool_size": self._process_pool_size,
                "batch_pool_size": self._batch_pool_size,
            }

    def close(self) -> None:
        """Shut every pool down deterministically (idempotent)."""
        with self._lock:
            if self._thread_pool is not None:
                self._thread_pool.shutdown(wait=True)
                self._thread_pool = None
                self._thread_pool_size = 0
            if self._batch_pool is not None:
                self._batch_pool.shutdown(wait=True)
                self._batch_pool = None
                self._batch_pool_size = 0
            if self._process_pool is not None:
                self._process_pool.shutdown(wait=True)
                self._process_pool = None
                self._process_pool_size = 0
