"""TPC-H schema definitions (the columns used by the reproduction workload).

The full TPC-H schema has several wide text columns (comments, addresses,
phones) that play no role in any of the paper's queries; they are omitted to
keep the generated datasets small, but every join key, every predicate column
and every aggregation column used by the analysed queries is present, together
with the primary-key / foreign-key constraints the paper's Heuristic 3 relies
on.
"""

from __future__ import annotations

from typing import Dict, List

from ..storage.schema import ForeignKey, TableSchema, make_schema
from ..storage.types import DATE, FLOAT64, INT64, STRING

#: Base row counts at scale factor 1.0 (per the TPC-H specification).
BASE_ROW_COUNTS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

#: region each nation belongs to (aligned with the TPC-H specification).
NATION_REGIONS = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3,
                  4, 2, 3, 3, 1]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                   "HOUSEHOLD"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW"]
CONTAINERS = ["SM CASE", "SM BOX", "MED BOX", "MED BAG", "LG CASE", "LG BOX",
              "JUMBO PACK", "WRAP JAR"]
BRANDS = ["Brand#%d%d" % (i, j) for i in range(1, 6) for j in range(1, 6)]
TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
PART_TYPES = ["%s %s %s" % (a, b, c) for a in TYPE_SYLLABLE_1
              for b in TYPE_SYLLABLE_2 for c in TYPE_SYLLABLE_3]
PART_NAME_WORDS = ["almond", "antique", "aquamarine", "azure", "beige",
                   "bisque", "black", "blanched", "blue", "blush", "brown",
                   "burlywood", "chartreuse", "chiffon", "chocolate", "coral",
                   "cornflower", "cream", "cyan", "dark", "deep", "dim",
                   "dodger", "drab", "firebrick", "forest", "frosted",
                   "gainsboro", "ghost", "goldenrod", "green", "grey",
                   "honeydew", "hot", "indian", "ivory", "khaki", "lace",
                   "lavender", "lawn", "lemon", "light", "lime", "linen"]


def tpch_schemas() -> Dict[str, TableSchema]:
    """All eight TPC-H table schemas keyed by table name."""
    schemas: Dict[str, TableSchema] = {}
    schemas["region"] = make_schema(
        "region",
        [("r_regionkey", INT64), ("r_name", STRING)],
        primary_key=["r_regionkey"])
    schemas["nation"] = make_schema(
        "nation",
        [("n_nationkey", INT64), ("n_name", STRING), ("n_regionkey", INT64)],
        primary_key=["n_nationkey"],
        foreign_keys=[ForeignKey("n_regionkey", "region", "r_regionkey")])
    schemas["supplier"] = make_schema(
        "supplier",
        [("s_suppkey", INT64), ("s_name", STRING), ("s_nationkey", INT64),
         ("s_acctbal", FLOAT64)],
        primary_key=["s_suppkey"],
        foreign_keys=[ForeignKey("s_nationkey", "nation", "n_nationkey")])
    schemas["customer"] = make_schema(
        "customer",
        [("c_custkey", INT64), ("c_name", STRING), ("c_nationkey", INT64),
         ("c_acctbal", FLOAT64), ("c_mktsegment", STRING)],
        primary_key=["c_custkey"],
        foreign_keys=[ForeignKey("c_nationkey", "nation", "n_nationkey")])
    schemas["part"] = make_schema(
        "part",
        [("p_partkey", INT64), ("p_name", STRING), ("p_brand", STRING),
         ("p_type", STRING), ("p_size", INT64), ("p_container", STRING),
         ("p_retailprice", FLOAT64)],
        primary_key=["p_partkey"])
    schemas["partsupp"] = make_schema(
        "partsupp",
        [("ps_partkey", INT64), ("ps_suppkey", INT64), ("ps_availqty", INT64),
         ("ps_supplycost", FLOAT64)],
        primary_key=[],
        foreign_keys=[ForeignKey("ps_partkey", "part", "p_partkey"),
                      ForeignKey("ps_suppkey", "supplier", "s_suppkey")])
    schemas["orders"] = make_schema(
        "orders",
        [("o_orderkey", INT64), ("o_custkey", INT64), ("o_orderstatus", STRING),
         ("o_totalprice", FLOAT64), ("o_orderdate", DATE),
         ("o_orderpriority", STRING)],
        primary_key=["o_orderkey"],
        foreign_keys=[ForeignKey("o_custkey", "customer", "c_custkey")])
    schemas["lineitem"] = make_schema(
        "lineitem",
        [("l_orderkey", INT64), ("l_partkey", INT64), ("l_suppkey", INT64),
         ("l_linenumber", INT64), ("l_quantity", FLOAT64),
         ("l_extendedprice", FLOAT64), ("l_discount", FLOAT64),
         ("l_tax", FLOAT64), ("l_returnflag", STRING),
         ("l_shipdate", DATE), ("l_commitdate", DATE), ("l_receiptdate", DATE),
         ("l_shipmode", STRING)],
        primary_key=[],
        foreign_keys=[ForeignKey("l_orderkey", "orders", "o_orderkey"),
                      ForeignKey("l_partkey", "part", "p_partkey"),
                      ForeignKey("l_suppkey", "supplier", "s_suppkey")])
    return schemas


def scaled_row_count(table: str, scale_factor: float) -> int:
    """Row count of a table at the given scale factor (fixed-size dimensions
    like nation and region never scale)."""
    base = BASE_ROW_COUNTS[table]
    if table in ("region", "nation"):
        return base
    return max(1, int(round(base * scale_factor)))
