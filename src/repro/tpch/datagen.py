"""Deterministic, scaled TPC-H data generation.

This generator is a substitution for the official ``dbgen`` tool (documented in
DESIGN.md): it produces the same schema, the same key relationships (primary
keys, foreign keys, the ~4 lineitems per order, the 4 suppliers per part) and
value distributions that are close enough to the specification that the
predicate selectivities driving the paper's plan choices are preserved
(shipdate ranges, nation/region filters, brands, containers, ship modes,
market segments, order priorities).  All randomness is derived from a fixed
seed, so every test, example and benchmark sees the same data.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..storage.catalog import Catalog
from ..storage.statistics import synthetic_statistics
from ..storage.table import Table
from ..storage.types import date_to_int
from .schema import (
    BRANDS,
    CONTAINERS,
    MARKET_SEGMENTS,
    NATION_NAMES,
    NATION_REGIONS,
    ORDER_PRIORITIES,
    PART_NAME_WORDS,
    PART_TYPES,
    REGION_NAMES,
    SHIP_MODES,
    scaled_row_count,
    tpch_schemas,
)

#: First and last order dates used by the generator (per the specification).
START_DATE = date_to_int(1992, 1, 1)
END_DATE = date_to_int(1998, 8, 2)

DEFAULT_SEED = 20250622


def _choice(rng: np.random.Generator, values, size: int) -> np.ndarray:
    """Uniform choice from a list of strings as an object array."""
    idx = rng.integers(0, len(values), size=size)
    return np.asarray(values, dtype=object)[idx]


class TpchDataGenerator:
    """Generates all eight TPC-H tables at a given scale factor."""

    def __init__(self, scale_factor: float = 0.01,
                 seed: int = DEFAULT_SEED) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self.schemas = tpch_schemas()

    def rows(self, table: str) -> int:
        """Row count of ``table`` at this generator's scale factor."""
        return scaled_row_count(table, self.scale_factor)

    # ------------------------------------------------------------------

    def generate(self) -> Dict[str, Table]:
        """Generate every table and return them keyed by name."""
        rng = np.random.default_rng(self.seed)
        tables: Dict[str, Table] = {}
        tables["region"] = self._region()
        tables["nation"] = self._nation()
        tables["supplier"] = self._supplier(rng)
        tables["customer"] = self._customer(rng)
        tables["part"] = self._part(rng)
        tables["partsupp"] = self._partsupp(rng)
        tables["orders"] = self._orders(rng)
        tables["lineitem"] = self._lineitem(rng, tables["orders"])
        return tables

    def populate_catalog(self, catalog: Optional[Catalog] = None) -> Catalog:
        """Generate the dataset and register it (with statistics) in a catalog."""
        catalog = catalog or Catalog()
        for table in self.generate().values():
            catalog.register_table(table)
        return catalog

    # -- individual tables -------------------------------------------------

    def _region(self) -> Table:
        n = len(REGION_NAMES)
        return Table(self.schemas["region"], {
            "r_regionkey": np.arange(n, dtype=np.int64),
            "r_name": np.asarray(REGION_NAMES, dtype=object),
        })

    def _nation(self) -> Table:
        n = len(NATION_NAMES)
        return Table(self.schemas["nation"], {
            "n_nationkey": np.arange(n, dtype=np.int64),
            "n_name": np.asarray(NATION_NAMES, dtype=object),
            "n_regionkey": np.asarray(NATION_REGIONS, dtype=np.int64),
        })

    def _supplier(self, rng: np.random.Generator) -> Table:
        n = self.rows("supplier")
        return Table(self.schemas["supplier"], {
            "s_suppkey": np.arange(1, n + 1, dtype=np.int64),
            "s_name": np.asarray(["Supplier#%09d" % i for i in range(1, n + 1)],
                                 dtype=object),
            "s_nationkey": rng.integers(0, len(NATION_NAMES), size=n).astype(np.int64),
            "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n), 2),
        })

    def _customer(self, rng: np.random.Generator) -> Table:
        n = self.rows("customer")
        return Table(self.schemas["customer"], {
            "c_custkey": np.arange(1, n + 1, dtype=np.int64),
            "c_name": np.asarray(["Customer#%09d" % i for i in range(1, n + 1)],
                                 dtype=object),
            "c_nationkey": rng.integers(0, len(NATION_NAMES), size=n).astype(np.int64),
            "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, size=n), 2),
            "c_mktsegment": _choice(rng, MARKET_SEGMENTS, n),
        })

    def _part(self, rng: np.random.Generator) -> Table:
        n = self.rows("part")
        first = _choice(rng, PART_NAME_WORDS, n)
        second = _choice(rng, PART_NAME_WORDS, n)
        names = np.asarray(["%s %s" % (a, b) for a, b in zip(first, second)],
                           dtype=object)
        return Table(self.schemas["part"], {
            "p_partkey": np.arange(1, n + 1, dtype=np.int64),
            "p_name": names,
            "p_brand": _choice(rng, BRANDS, n),
            "p_type": _choice(rng, PART_TYPES, n),
            "p_size": rng.integers(1, 51, size=n).astype(np.int64),
            "p_container": _choice(rng, CONTAINERS, n),
            "p_retailprice": np.round(rng.uniform(900.0, 2000.0, size=n), 2),
        })

    def _partsupp(self, rng: np.random.Generator) -> Table:
        parts = self.rows("part")
        suppliers = self.rows("supplier")
        per_part = 4
        partkeys = np.repeat(np.arange(1, parts + 1, dtype=np.int64), per_part)
        suppkeys = rng.integers(1, suppliers + 1,
                                size=parts * per_part).astype(np.int64)
        return Table(self.schemas["partsupp"], {
            "ps_partkey": partkeys,
            "ps_suppkey": suppkeys,
            "ps_availqty": rng.integers(1, 10_000, size=parts * per_part).astype(np.int64),
            "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, size=parts * per_part), 2),
        })

    def _orders(self, rng: np.random.Generator) -> Table:
        n = self.rows("orders")
        customers = self.rows("customer")
        # Per the spec only two thirds of customers have orders.
        active_customers = max(1, (customers * 2) // 3)
        custkeys = rng.integers(1, active_customers + 1, size=n).astype(np.int64)
        orderdates = rng.integers(START_DATE, END_DATE - 120, size=n).astype(np.int64)
        return Table(self.schemas["orders"], {
            "o_orderkey": np.arange(1, n + 1, dtype=np.int64),
            "o_custkey": custkeys,
            "o_orderstatus": _choice(rng, ["O", "F", "P"], n),
            "o_totalprice": np.round(rng.uniform(1000.0, 400_000.0, size=n), 2),
            "o_orderdate": orderdates,
            "o_orderpriority": _choice(rng, ORDER_PRIORITIES, n),
        })

    def _lineitem(self, rng: np.random.Generator, orders: Table) -> Table:
        target = self.rows("lineitem")
        order_keys = orders.column("o_orderkey")
        order_dates = orders.column("o_orderdate")
        num_orders = order_keys.shape[0]
        # 1..7 lineitems per order, trimmed/extended to hit the target count.
        per_order = rng.integers(1, 8, size=num_orders)
        l_orderkey = np.repeat(order_keys, per_order)
        l_orderdate = np.repeat(order_dates, per_order)
        if l_orderkey.shape[0] > target:
            l_orderkey = l_orderkey[:target]
            l_orderdate = l_orderdate[:target]
        n = l_orderkey.shape[0]
        parts = self.rows("part")
        suppliers = self.rows("supplier")
        shipdate = l_orderdate + rng.integers(1, 122, size=n)
        commitdate = l_orderdate + rng.integers(30, 91, size=n)
        receiptdate = shipdate + rng.integers(1, 31, size=n)
        return Table(self.schemas["lineitem"], {
            "l_orderkey": l_orderkey.astype(np.int64),
            "l_partkey": rng.integers(1, parts + 1, size=n).astype(np.int64),
            "l_suppkey": rng.integers(1, suppliers + 1, size=n).astype(np.int64),
            "l_linenumber": np.ones(n, dtype=np.int64),
            "l_quantity": rng.integers(1, 51, size=n).astype(np.float64),
            "l_extendedprice": np.round(rng.uniform(900.0, 100_000.0, size=n), 2),
            "l_discount": np.round(rng.uniform(0.0, 0.10, size=n), 2),
            "l_tax": np.round(rng.uniform(0.0, 0.08, size=n), 2),
            "l_returnflag": _choice(rng, ["R", "A", "N"], n),
            "l_shipdate": shipdate.astype(np.int64),
            "l_commitdate": commitdate.astype(np.int64),
            "l_receiptdate": receiptdate.astype(np.int64),
            "l_shipmode": _choice(rng, SHIP_MODES, n),
        })


def build_catalog(scale_factor: float = 0.01,
                  seed: int = DEFAULT_SEED) -> Catalog:
    """Generate a TPC-H dataset and return a fully analysed catalog."""
    return TpchDataGenerator(scale_factor, seed).populate_catalog()


def statistics_only_catalog(scale_factor: float = 100.0) -> Catalog:
    """A catalog holding only schemas and statistics at a (large) scale factor.

    The planner-only experiments (planner latency, case studies at the paper's
    SF100 cardinalities, the naïve blow-up) use this to plan against 100 GB row
    counts without materialising any data.
    """
    catalog = Catalog()
    schemas = tpch_schemas()
    date_range = (float(START_DATE), float(END_DATE))
    ndv_overrides = {
        ("region", "r_name"): 5,
        ("nation", "n_name"): 25,
        ("nation", "n_regionkey"): 5,
        ("supplier", "s_nationkey"): 25,
        ("customer", "c_nationkey"): 25,
        ("customer", "c_mktsegment"): 5,
        ("part", "p_brand"): 25,
        ("part", "p_type"): 150,
        ("part", "p_size"): 50,
        ("part", "p_container"): 8,
        ("part", "p_name"): 44 * 44,
        ("orders", "o_orderstatus"): 3,
        ("orders", "o_orderpriority"): 5,
        ("orders", "o_orderdate"): 2_400,
        ("lineitem", "l_returnflag"): 3,
        ("lineitem", "l_shipmode"): 7,
        ("lineitem", "l_shipdate"): 2_500,
        ("lineitem", "l_commitdate"): 2_450,
        ("lineitem", "l_receiptdate"): 2_500,
        ("lineitem", "l_quantity"): 50,
    }
    for name, schema in schemas.items():
        rows = scaled_row_count(name, scale_factor)
        ndvs = {}
        ranges = {}
        for column in schema.columns:
            key = (name, column.name)
            if key in ndv_overrides:
                ndvs[column.name] = min(rows, ndv_overrides[key])
            elif schema.is_primary_key_column(column.name):
                ndvs[column.name] = rows
            elif schema.foreign_key_for(column.name) is not None:
                fk = schema.foreign_key_for(column.name)
                parent_rows = scaled_row_count(fk.ref_table, scale_factor)
                # Only two thirds of customers place orders (affects Heuristic 3
                # losslessness and semi-join selectivities involving o_custkey).
                if name == "orders" and column.name == "o_custkey":
                    parent_rows = (parent_rows * 2) // 3
                ndvs[column.name] = min(rows, parent_rows)
            else:
                ndvs[column.name] = max(1, min(rows, 10_000))
        for date_column in ("o_orderdate", "l_shipdate", "l_commitdate",
                            "l_receiptdate"):
            if schema.has_column(date_column):
                ranges[date_column] = date_range
        if schema.has_column("p_size"):
            ranges["p_size"] = (1.0, 50.0)
        if schema.has_column("l_quantity"):
            ranges["l_quantity"] = (1.0, 50.0)
        stats = synthetic_statistics(name, rows, ndvs, ranges)
        catalog.register_schema(schema, stats)
    return catalog
