"""The TPC-H workload: catalog plus bound query blocks.

:class:`TpchWorkload` bundles everything the experiments need: a generated (or
statistics-only) catalog and the analysed queries bound against it.  It is the
single entry point used by the examples, the experiment harness and the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.query import QueryBlock
from ..sql.binder import bind_sql
from ..storage.catalog import Catalog
from .datagen import DEFAULT_SEED, TpchDataGenerator, statistics_only_catalog
from .queries import ANALYZED_QUERIES, QUERY_TEXTS, query_name


@dataclass
class TpchWorkload:
    """A catalog and the bound, analysed TPC-H queries."""

    catalog: Catalog
    scale_factor: float
    queries: Dict[int, QueryBlock] = field(default_factory=dict)

    @classmethod
    def generate(cls, scale_factor: float = 0.01,
                 seed: int = DEFAULT_SEED,
                 query_numbers: Optional[List[int]] = None) -> "TpchWorkload":
        """Generate data at ``scale_factor`` and bind the analysed queries."""
        catalog = TpchDataGenerator(scale_factor, seed).populate_catalog()
        return cls._bind(catalog, scale_factor, query_numbers)

    @classmethod
    def statistics_only(cls, scale_factor: float = 100.0,
                        query_numbers: Optional[List[int]] = None) -> "TpchWorkload":
        """A planner-only workload at (by default) the paper's SF100 scale."""
        catalog = statistics_only_catalog(scale_factor)
        return cls._bind(catalog, scale_factor, query_numbers)

    @classmethod
    def _bind(cls, catalog: Catalog, scale_factor: float,
              query_numbers: Optional[List[int]]) -> "TpchWorkload":
        workload = cls(catalog=catalog, scale_factor=scale_factor)
        numbers = query_numbers if query_numbers is not None else ANALYZED_QUERIES
        for number in numbers:
            workload.queries[number] = bind_sql(catalog, QUERY_TEXTS[number],
                                                name=query_name(number))
        return workload

    # ------------------------------------------------------------------

    @property
    def query_numbers(self) -> List[int]:
        """The bound query numbers in ascending order."""
        return sorted(self.queries)

    def query(self, number: int) -> QueryBlock:
        """The bound query block for TPC-H query ``number``."""
        return self.queries[number]

    @property
    def has_data(self) -> bool:
        """True if the catalog holds materialised tables (not stats-only)."""
        return all(self.catalog.has_data(name)
                   for name in ("lineitem", "orders"))
