"""TPC-H substrate: schema, deterministic data generation and the workload."""

from .datagen import (
    DEFAULT_SEED,
    TpchDataGenerator,
    build_catalog,
    statistics_only_catalog,
)
from .queries import (
    ANALYZED_QUERIES,
    OMITTED_QUERIES,
    PLAN_CHANGED_QUERIES,
    QUERY_TEXTS,
    query_name,
    query_text,
)
from .schema import BASE_ROW_COUNTS, scaled_row_count, tpch_schemas
from .workload import TpchWorkload

__all__ = [
    "ANALYZED_QUERIES",
    "BASE_ROW_COUNTS",
    "DEFAULT_SEED",
    "OMITTED_QUERIES",
    "PLAN_CHANGED_QUERIES",
    "QUERY_TEXTS",
    "TpchDataGenerator",
    "TpchWorkload",
    "build_catalog",
    "query_name",
    "query_text",
    "scaled_row_count",
    "statistics_only_catalog",
    "tpch_schemas",
]
