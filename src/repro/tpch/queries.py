"""The TPC-H workload queries analysed by the paper, in the supported subset.

The paper evaluates the 16 TPC-H queries that involve Bloom filters (Q2-Q5,
Q7-Q12, Q16-Q21) and omits single-table queries (Q1, Q6) and queries that
never produce Bloom filters (Q13-Q15, Q22).  The texts below reproduce each
analysed query's *join block* — the part the paper's per-SPJ-block costing
operates on — with these documented simplifications (see DESIGN.md):

* correlated / nested sub-queries (Q2's min-cost sub-query, Q4/Q20-22's
  EXISTS chains, Q17/Q18's aggregated sub-queries) are replaced by the
  equivalent join against the referenced tables or dropped when they only
  post-filter the result, because our optimizer (like the paper's costing) is
  scoped to a single query block;
* Q7/Q8's symmetric nation-pair OR predicate is kept as a residual predicate,
  with the implied per-nation IN filters spelled explicitly (the paper's
  system derives them internally) so that predicate transfer has a source;
* select lists are trimmed to the aggregates that drive the result size.
"""

from __future__ import annotations

from typing import Dict, List

#: Queries the paper omits from its analysis.
OMITTED_QUERIES = {1, 6, 13, 14, 15, 22}

#: Queries for which the paper reports BF-CBO picked a different plan than
#: BF-Post (Table 2, red italic query numbers).
PLAN_CHANGED_QUERIES = {5, 7, 8, 9, 11, 12, 16, 20, 21}

QUERY_TEXTS: Dict[int, str] = {
    2: """
        select s_acctbal, s_name, n_name, p_partkey
        from part, supplier, partsupp, nation, region
        where p_partkey = ps_partkey
          and s_suppkey = ps_suppkey
          and s_nationkey = n_nationkey
          and n_regionkey = r_regionkey
          and p_size = 15
          and p_type like '%BRASS'
          and r_name = 'EUROPE'
        order by s_acctbal desc
        limit 100
    """,
    3: """
        select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
               o_orderdate
        from customer, orders, lineitem
        where c_mktsegment = 'BUILDING'
          and c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and o_orderdate < date '1995-03-15'
          and l_shipdate > date '1995-03-15'
        group by l_orderkey, o_orderdate
        order by revenue desc
        limit 10
    """,
    4: """
        select o_orderpriority, count(*) as order_count
        from orders, lineitem
        where l_orderkey = o_orderkey
          and o_orderdate >= date '1993-07-01'
          and o_orderdate < date '1993-10-01'
          and l_commitdate < l_receiptdate
        group by o_orderpriority
        order by o_orderpriority
    """,
    5: """
        select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
        from customer, orders, lineitem, supplier, nation, region
        where c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and l_suppkey = s_suppkey
          and c_nationkey = s_nationkey
          and s_nationkey = n_nationkey
          and n_regionkey = r_regionkey
          and r_name = 'ASIA'
          and o_orderdate >= date '1994-01-01'
          and o_orderdate < date '1995-01-01'
        group by n_name
        order by revenue desc
    """,
    7: """
        select n1.n_name as supp_nation, n2.n_name as cust_nation,
               extract(year from l_shipdate) as l_year,
               sum(l_extendedprice * (1 - l_discount)) as volume
        from supplier, lineitem, orders, customer, nation n1, nation n2
        where s_suppkey = l_suppkey
          and o_orderkey = l_orderkey
          and c_custkey = o_custkey
          and s_nationkey = n1.n_nationkey
          and c_nationkey = n2.n_nationkey
          and n1.n_name in ('FRANCE', 'GERMANY')
          and n2.n_name in ('FRANCE', 'GERMANY')
          and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
               or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))
          and l_shipdate between date '1995-01-01' and date '1996-12-31'
        group by n1.n_name, n2.n_name, l_year
        order by supp_nation, cust_nation, l_year
    """,
    8: """
        select extract(year from o_orderdate) as o_year,
               sum(l_extendedprice * (1 - l_discount)) as volume
        from part, supplier, lineitem, orders, customer, nation n1, nation n2,
             region
        where p_partkey = l_partkey
          and s_suppkey = l_suppkey
          and l_orderkey = o_orderkey
          and o_custkey = c_custkey
          and c_nationkey = n1.n_nationkey
          and n1.n_regionkey = r_regionkey
          and s_nationkey = n2.n_nationkey
          and r_name = 'AMERICA'
          and o_orderdate between date '1995-01-01' and date '1996-12-31'
          and p_type = 'ECONOMY ANODIZED STEEL'
        group by o_year
        order by o_year
    """,
    9: """
        select n_name, extract(year from o_orderdate) as o_year,
               sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)
                   as amount
        from part, supplier, lineitem, partsupp, orders, nation
        where s_suppkey = l_suppkey
          and ps_suppkey = l_suppkey
          and ps_partkey = l_partkey
          and p_partkey = l_partkey
          and o_orderkey = l_orderkey
          and s_nationkey = n_nationkey
          and p_name like '%green%'
        group by n_name, o_year
        order by n_name, o_year desc
    """,
    10: """
        select c_custkey, c_name,
               sum(l_extendedprice * (1 - l_discount)) as revenue
        from customer, orders, lineitem, nation
        where c_custkey = o_custkey
          and l_orderkey = o_orderkey
          and c_nationkey = n_nationkey
          and o_orderdate >= date '1993-10-01'
          and o_orderdate < date '1994-01-01'
          and l_returnflag = 'R'
        group by c_custkey, c_name
        order by revenue desc
        limit 20
    """,
    11: """
        select ps_partkey, sum(ps_supplycost * ps_availqty) as value
        from partsupp, supplier, nation
        where ps_suppkey = s_suppkey
          and s_nationkey = n_nationkey
          and n_name = 'GERMANY'
        group by ps_partkey
        order by value desc
        limit 100
    """,
    12: """
        select l_shipmode, count(*) as line_count
        from orders, lineitem
        where o_orderkey = l_orderkey
          and l_shipmode in ('MAIL', 'SHIP')
          and l_commitdate < l_receiptdate
          and l_shipdate < l_commitdate
          and l_receiptdate >= date '1994-01-01'
          and l_receiptdate < date '1995-01-01'
        group by l_shipmode
        order by l_shipmode
    """,
    16: """
        select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
        from partsupp, part
        where p_partkey = ps_partkey
          and p_brand <> 'Brand#45'
          and p_type not like 'MEDIUM POLISHED%'
          and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
        group by p_brand, p_type, p_size
        order by supplier_cnt desc
        limit 100
    """,
    17: """
        select sum(l_extendedprice) as total_price, count(*) as line_count
        from lineitem, part
        where p_partkey = l_partkey
          and p_brand = 'Brand#23'
          and p_container = 'MED BOX'
          and l_quantity < 10
    """,
    18: """
        select c_custkey, o_orderkey, o_totalprice, sum(l_quantity) as total_qty
        from customer, orders, lineitem
        where c_custkey = o_custkey
          and o_orderkey = l_orderkey
          and o_totalprice > 300000
        group by c_custkey, o_orderkey, o_totalprice
        order by o_totalprice desc
        limit 100
    """,
    19: """
        select sum(l_extendedprice * (1 - l_discount)) as revenue
        from lineitem, part
        where p_partkey = l_partkey
          and l_shipmode in ('AIR', 'REG AIR')
          and p_brand in ('Brand#12', 'Brand#23', 'Brand#34')
          and p_container in ('SM CASE', 'SM BOX', 'MED BOX', 'LG CASE')
          and l_quantity between 1 and 30
          and ((p_brand = 'Brand#12' and l_quantity <= 11)
               or (p_brand = 'Brand#23' and l_quantity <= 20)
               or (p_brand = 'Brand#34' and l_quantity <= 30))
    """,
    20: """
        select s_name, count(*) as part_count
        from supplier, nation, partsupp, part
        where s_suppkey = ps_suppkey
          and ps_partkey = p_partkey
          and s_nationkey = n_nationkey
          and n_name = 'CANADA'
          and p_name like 'forest%'
        group by s_name
        order by s_name
    """,
    21: """
        select s_name, count(*) as numwait
        from supplier, lineitem, orders, nation
        where s_suppkey = l_suppkey
          and o_orderkey = l_orderkey
          and s_nationkey = n_nationkey
          and o_orderstatus = 'F'
          and n_name = 'SAUDI ARABIA'
          and l_receiptdate > l_commitdate
        group by s_name
        order by numwait desc
        limit 100
    """,
}

#: Query numbers analysed by the paper, in ascending order.
ANALYZED_QUERIES: List[int] = sorted(QUERY_TEXTS)


def query_text(number: int) -> str:
    """SQL text for TPC-H query ``number`` (raises KeyError if omitted)."""
    return QUERY_TEXTS[number]


def query_name(number: int) -> str:
    """Canonical query name used in reports (``"Q7"``)."""
    return "Q%d" % number
