"""BF-CBO: the paper's two-phase Bloom-filter-aware bottom-up optimization.

The four steps of Section 3.2 map directly onto this module:

1. **Marking Bloom filter candidates** — delegated to
   :func:`repro.core.candidates.mark_bloom_filter_candidates` (Heuristics 1, 2
   and optionally 9).
2. **First bottom-up phase** (:meth:`TwoPhaseBloomOptimizer.first_phase`) —
   walk the same ordered join pairs the costed DP will walk, but without
   creating or costing any plans; whenever the inner side of a pair supplies a
   candidate's build column, record the inner relation set as a new δ for that
   candidate (Heuristic 3 prunes lossless FK→PK δ's).  The pass also
   accumulates the total join-input cardinality used by Heuristic 8.
3. **Costing Bloom filter sub-plans**
   (:meth:`TwoPhaseBloomOptimizer.cost_bloom_subplans`) — for every surviving
   δ combination create a Bloom filter scan sub-plan with a semi-join-based
   cardinality estimate, applying Heuristics 4, 5 and 6, and insert it into the
   base relation's plan list where the Section 3.5 dominance rule prunes it
   against existing sub-plans.
4. **Second bottom-up phase** — the ordinary costed DP of
   :class:`repro.core.enumerator.JoinEnumerator`, which enforces the δ join
   constraints of Section 3.6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..storage.catalog import Catalog
from .candidates import (
    BloomFilterCandidate,
    BloomFilterSpec,
    mark_bloom_filter_candidates,
)
from .cardinality import CardinalityEstimator
from .cost import CostModel
from .enumerator import EnumerationSequenceCache, JoinEnumerator
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .planlist import PlanList, PlanTable
from .plans import PlanNode, ScanNode
from .query import QueryBlock

#: Safety cap on the number of δ-combination scan sub-plans per relation.
MAX_BLOOM_SCAN_COMBINATIONS = 32


@dataclass
class FirstPhaseResult:
    """Outcome of the structural first bottom-up pass."""

    candidates: Dict[str, List[BloomFilterCandidate]]
    total_join_input_rows: float = 0.0
    join_pairs_observed: int = 0
    deltas_pruned_heuristic3: int = 0

    @property
    def total_deltas(self) -> int:
        return sum(len(c.deltas) for cands in self.candidates.values()
                   for c in cands)


@dataclass
class BfCboReport:
    """Diagnostics describing one BF-CBO run (used by experiments/tests)."""

    first_phase: Optional[FirstPhaseResult] = None
    bloom_subplans_created: int = 0
    bloom_subplans_retained: int = 0
    subplans_pruned_heuristic5: int = 0
    subplans_pruned_heuristic6: int = 0
    skipped_by_heuristic8: bool = False
    specs: List[BloomFilterSpec] = field(default_factory=list)


class TwoPhaseBloomOptimizer:
    """Drives the two-phase BF-CBO optimization of one query block."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 estimator: CardinalityEstimator, cost_model: CostModel,
                 settings: Optional[BfCboSettings] = None,
                 sequence_cache: Optional[EnumerationSequenceCache] = None) -> None:
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings or BfCboSettings.paper_defaults()
        self.join_graph = JoinGraph(query)
        self.enumerator = JoinEnumerator(catalog, query, estimator, cost_model,
                                         self.settings, self.join_graph,
                                         sequence_cache=sequence_cache)
        self.report = BfCboReport()
        self._spec_counter = itertools.count()

    # ------------------------------------------------------------------
    # Top-level driver
    # ------------------------------------------------------------------

    def optimize_table(self) -> PlanTable:
        """Run the full two-phase optimization and return the DP memo."""
        base_table = self.enumerator.build_base_plan_table()
        if not self.settings.enabled or len(self.query.relations) < 2:
            return self.enumerator.optimize_table(base_table)

        candidates = mark_bloom_filter_candidates(self.query, self.estimator,
                                                  self.settings,
                                                  self.join_graph)
        first_phase = self.first_phase(candidates)
        self.report.first_phase = first_phase

        if self._skip_by_heuristic8(first_phase):
            self.report.skipped_by_heuristic8 = True
            return self.enumerator.optimize_table(base_table)

        self.cost_bloom_subplans(candidates, base_table)
        return self.enumerator.optimize_table(base_table)

    def optimize(self) -> Dict[FrozenSet[str], PlanList]:
        """Frozenset-keyed view of :meth:`optimize_table` (public seam)."""
        return self.optimize_table().to_alias_dict(self.join_graph)

    # ------------------------------------------------------------------
    # Step 2: first bottom-up phase (structural, no costing)
    # ------------------------------------------------------------------

    def first_phase(self, candidates: Dict[str, List[BloomFilterCandidate]],
                    ) -> FirstPhaseResult:
        """Populate every candidate's Δ list by simulating the join order DP.

        The walk is keyed on the pair bitmasks: candidates are bucketed per
        apply-relation bit (only buckets intersecting the outer mask are
        visited), the build relation is tested against the inner mask, and
        each candidate's already-recorded δ's are tracked as a mask set so the
        dedup check is O(1) per pair.
        """
        result = FirstPhaseResult(candidates=candidates)
        graph = self.join_graph
        estimator = self.estimator
        use_heuristic3 = self.settings.use_heuristic3
        # One bucket of (build-bit-mask, candidate, seen-delta-masks) rows per
        # apply-relation bit, OR-ed into candidate_bits for a cheap per-pair
        # "any candidate on the outer side?" test.
        buckets: Dict[int, List] = {}
        candidate_bits = 0
        for alias, relation_candidates in candidates.items():
            apply_mask = graph.mask_of_alias(alias)
            candidate_bits |= apply_mask
            buckets[apply_mask] = [
                (graph.mask_of_alias(c.build_alias), c,
                 {graph.mask_of(delta) for delta in c.deltas})
                for c in relation_candidates]
        for pair in self.enumerator.enumerate_join_pairs():
            result.join_pairs_observed += 1
            result.total_join_input_rows += (estimator.join_rows(pair.outer)
                                             + estimator.join_rows(pair.inner))
            applicable = pair.outer_mask & candidate_bits
            while applicable:
                apply_mask = applicable & -applicable
                applicable ^= apply_mask
                for build_mask, candidate, seen in buckets[apply_mask]:
                    if not build_mask & pair.inner_mask:
                        continue
                    if pair.inner_mask in seen:
                        continue
                    delta = pair.inner
                    if (use_heuristic3
                            and estimator.is_lossless_fk_join(
                                candidate.apply_column, candidate.build_column,
                                delta)):
                        result.deltas_pruned_heuristic3 += 1
                        continue
                    seen.add(pair.inner_mask)
                    candidate.add_delta(delta)
        return result

    def _skip_by_heuristic8(self, first_phase: FirstPhaseResult) -> bool:
        """Heuristic 8: small queries are not worth the extra search space."""
        if not self.settings.use_heuristic8:
            return False
        return (first_phase.total_join_input_rows
                < self.settings.heuristic8_min_total_join_input)

    # ------------------------------------------------------------------
    # Step 3: costing Bloom filter sub-plans
    # ------------------------------------------------------------------

    def _make_spec(self, candidate: BloomFilterCandidate,
                   delta: FrozenSet[str]) -> Optional[BloomFilterSpec]:
        """Build a costed spec for one (candidate, δ), applying H5/H6/H9."""
        estimate = self.estimator.bloom_estimate(candidate.apply_column,
                                                 candidate.build_column, delta)
        if estimate.build_ndv > self.settings.max_build_ndv:
            self.report.subplans_pruned_heuristic5 += 1
            return None
        if estimate.selectivity > self.settings.max_selectivity:
            self.report.subplans_pruned_heuristic6 += 1
            return None
        if self.settings.use_heuristic9:
            build_rows = self.estimator.join_rows(delta)
            if build_rows >= self.estimator.scan_rows(candidate.apply_alias):
                return None
        filter_id = "bf%d_%s_%s" % (next(self._spec_counter),
                                    candidate.apply_alias,
                                    candidate.apply_column.column)
        spec = BloomFilterSpec(filter_id=filter_id,
                               apply_column=candidate.apply_column,
                               build_column=candidate.build_column,
                               delta=frozenset(delta), estimate=estimate)
        self.report.specs.append(spec)
        return spec

    def cost_bloom_subplans(self, candidates: Dict[str, List[BloomFilterCandidate]],
                            base_table: PlanTable) -> None:
        """Create Bloom filter scan sub-plans and add them to base plan lists."""
        for alias, relation_candidates in candidates.items():
            options: List[List[BloomFilterSpec]] = []
            for candidate in relation_candidates:
                specs = [spec for spec in
                         (self._make_spec(candidate, delta)
                          for delta in candidate.deltas)
                         if spec is not None]
                if specs:
                    options.append(specs)
            if not options:
                continue
            plan_list = base_table.target(self.join_graph.mask_of_alias(alias))
            for spec_combo in self._spec_combinations(options):
                self.report.bloom_subplans_created += 1
                scan = self.enumerator.make_bloom_scan(alias, spec_combo)
                if plan_list.add(scan):
                    self.report.bloom_subplans_retained += 1
            if self.settings.use_heuristic7:
                plan_list.apply_heuristic7(self.settings.heuristic7_max_subplans)

    def _spec_combinations(self, options: List[List[BloomFilterSpec]],
                           ) -> List[Tuple[BloomFilterSpec, ...]]:
        """δ combinations for one relation's candidates.

        With Heuristic 4 every candidate that has at least one valid δ is
        applied in every sub-plan, and the sub-plans differ only in which δ is
        chosen per candidate.  Without it (ablation), each candidate also gets
        standalone sub-plans.
        """
        combos: List[Tuple[BloomFilterSpec, ...]] = []
        if self.settings.apply_all_candidates:
            for combo in itertools.product(*options):
                combos.append(tuple(combo))
                if len(combos) >= MAX_BLOOM_SCAN_COMBINATIONS:
                    break
        else:
            for specs in options:
                for spec in specs:
                    combos.append((spec,))
                    if len(combos) >= MAX_BLOOM_SCAN_COMBINATIONS:
                        break
        return combos
