"""The bound query block: base relations, join clauses and predicates.

A :class:`QueryBlock` is the unit of optimization in the paper ("a single
select-project-join block", Section 3.7/3.8).  It is produced either by the
SQL binder or constructed programmatically (the running example of Section 3
and the synthetic workloads do the latter), and consumed by every optimizer
variant (plain CBO, BF-Post, BF-CBO, naïve).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .expressions import (
    AggregateCall,
    ColumnRef,
    Predicate,
    ScalarExpression,
)


class JoinType(enum.Enum):
    """Join types relevant to Bloom filter legality (Section 3.3)."""

    INNER = "inner"
    LEFT = "left"        # row-preserving side is the left input
    FULL = "full"
    SEMI = "semi"
    ANTI = "anti"


@dataclass(frozen=True)
class BaseRelation:
    """A FROM-list entry: a base table under an alias."""

    alias: str
    table_name: str

    def __str__(self) -> str:
        if self.alias == self.table_name:
            return self.table_name
        return "%s %s" % (self.table_name, self.alias)


@dataclass(frozen=True)
class JoinClause:
    """A single-column equi-join clause ``left = right``.

    Attributes:
        left: Column reference on one relation.
        right: Column reference on the other relation.
        join_type: Logical join type connecting the two relations.  For
            non-inner joins, ``left`` belongs to the row-preserving (outer
            spelled in SQL order) side.
    """

    left: ColumnRef
    right: ColumnRef
    join_type: JoinType = JoinType.INNER

    def __post_init__(self) -> None:
        if self.left.relation == self.right.relation:
            raise ValueError("join clause must reference two distinct relations")

    @property
    def relations(self) -> FrozenSet[str]:
        """The two relation aliases this clause connects."""
        return frozenset((self.left.relation, self.right.relation))

    def column_for(self, alias: str) -> ColumnRef:
        """The side of the clause belonging to relation ``alias``."""
        if self.left.relation == alias:
            return self.left
        if self.right.relation == alias:
            return self.right
        raise KeyError("relation %r not part of join clause %s" % (alias, self))

    def other(self, alias: str) -> ColumnRef:
        """The side of the clause *not* belonging to relation ``alias``."""
        if self.left.relation == alias:
            return self.right
        if self.right.relation == alias:
            return self.left
        raise KeyError("relation %r not part of join clause %s" % (alias, self))

    def connects(self, left_set: FrozenSet[str], right_set: FrozenSet[str]) -> bool:
        """True if this clause joins a relation in each of the two sets."""
        return ((self.left.relation in left_set and self.right.relation in right_set)
                or (self.left.relation in right_set and self.right.relation in left_set))

    @property
    def is_hashable(self) -> bool:
        """True if a hash join (and hence a Bloom filter) can use this clause."""
        return self.join_type in (JoinType.INNER, JoinType.SEMI, JoinType.LEFT)

    def __str__(self) -> str:
        suffix = "" if self.join_type is JoinType.INNER else " [%s]" % self.join_type.value
        return "%s = %s%s" % (self.left, self.right, suffix)


@dataclass(frozen=True)
class OutputItem:
    """One SELECT-list item: an expression plus its output name."""

    expression: ScalarExpression
    name: str

    @property
    def is_aggregate(self) -> bool:
        """True if the item is an aggregate call."""
        return isinstance(self.expression, AggregateCall)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item.

    ``nulls_first`` defaults to False — the engine's historical nulls-last
    ordering — so queries without an explicit ``NULLS FIRST`` modifier sort
    (and fingerprint) exactly as before.
    """

    expression: ScalarExpression
    descending: bool = False
    nulls_first: bool = False


@dataclass
class QueryBlock:
    """A bound select-project-join query block.

    Attributes:
        relations: FROM-list base relations, in syntactic order.
        join_clauses: Equi-join clauses extracted from the WHERE clause.
        local_predicates: Per-relation filters, keyed by relation alias.
        residual_predicates: Predicates referencing two or more relations that
            are not simple equi-joins (e.g. the nation-pair OR in TPC-H Q7);
            they are applied once all referenced relations have been joined.
        output: SELECT-list items (may include aggregates).
        group_by: GROUP BY expressions.
        order_by: ORDER BY items.
        limit: Optional LIMIT row count.
        name: Optional human-readable name (e.g. ``"Q7"``), used in reports.
    """

    relations: List[BaseRelation]
    join_clauses: List[JoinClause] = field(default_factory=list)
    local_predicates: Dict[str, List[Predicate]] = field(default_factory=dict)
    residual_predicates: List[Predicate] = field(default_factory=list)
    output: List[OutputItem] = field(default_factory=list)
    group_by: List[ScalarExpression] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    name: str = "query"

    def __post_init__(self) -> None:
        aliases = [rel.alias for rel in self.relations]
        if len(set(aliases)) != len(aliases):
            raise ValueError("duplicate relation aliases in query block")
        self._by_alias = {rel.alias: rel for rel in self.relations}
        self._fingerprint: Optional[str] = None
        self._fingerprint_shape: Optional[Tuple] = None
        for alias in self.local_predicates:
            if alias not in self._by_alias:
                raise ValueError("local predicate on unknown relation %r" % alias)
        for clause in self.join_clauses:
            for alias in clause.relations:
                if alias not in self._by_alias:
                    raise ValueError("join clause references unknown relation %r"
                                     % alias)

    # -- lookups -------------------------------------------------------------

    @property
    def aliases(self) -> List[str]:
        """All relation aliases in FROM order."""
        return [rel.alias for rel in self.relations]

    def relation(self, alias: str) -> BaseRelation:
        """The base relation registered under ``alias``."""
        return self._by_alias[alias]

    def table_name(self, alias: str) -> str:
        """Catalog table name behind ``alias``."""
        return self._by_alias[alias].table_name

    def predicates_for(self, alias: str) -> List[Predicate]:
        """Local predicates attached to relation ``alias``."""
        return list(self.local_predicates.get(alias, []))

    def clauses_between(self, left: FrozenSet[str],
                        right: FrozenSet[str]) -> List[JoinClause]:
        """All join clauses connecting the two relation sets."""
        return [c for c in self.join_clauses if c.connects(left, right)]

    def clauses_for_relation(self, alias: str) -> List[JoinClause]:
        """All join clauses that touch relation ``alias``."""
        return [c for c in self.join_clauses if alias in c.relations]

    def residuals_applicable(self, relations: FrozenSet[str]) -> List[Predicate]:
        """Residual predicates fully covered by ``relations``."""
        return [p for p in self.residual_predicates
                if p.referenced_relations() <= relations]

    @property
    def has_aggregation(self) -> bool:
        """True if the SELECT list or GROUP BY implies aggregation."""
        return bool(self.group_by) or any(item.is_aggregate for item in self.output)

    @property
    def all_relations(self) -> FrozenSet[str]:
        """The full set of relation aliases."""
        return frozenset(self.aliases)

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable textual identity of the bound query.

        Two query blocks with equal fingerprints describe the same logical
        query (same relations, join clauses and types, predicates, output,
        grouping, ordering and limit) and therefore optimize to the same plan
        under the same mode and settings — the fingerprint keys the
        :class:`repro.api.Database` plan cache.  Every component renders
        through the deterministic ``__str__`` of the expression tree, so the
        fingerprint is independent of object identity and hash seeds.  The
        query ``name`` is deliberately excluded: renaming a query must not
        defeat the cache.  Memoized: blocks are bound once and treated as
        immutable afterwards, and re-executing a prepared query must not
        re-stringify the whole tree just to hit the cache.  As a guard
        against callers that nevertheless append predicates or output items
        after binding, the memo is keyed on the component counts and
        recomputed when they change (in-place *replacement* of an element
        remains undetected — don't do that to a block you already executed).
        """
        shape = (len(self.relations), len(self.join_clauses),
                 sum(len(preds) for preds in self.local_predicates.values()),
                 len(self.residual_predicates), len(self.output),
                 len(self.group_by), len(self.order_by), self.limit)
        if self._fingerprint is not None and shape == self._fingerprint_shape:
            return self._fingerprint
        parts: List[str] = ["R:" + ";".join(str(rel) for rel in self.relations)]
        parts.append("J:" + ";".join(str(c) for c in self.join_clauses))
        parts.append("L:" + ";".join(
            "%s(%s)" % (alias, "&".join(str(p) for p in
                                        self.local_predicates[alias]))
            for alias in sorted(self.local_predicates)
            if self.local_predicates[alias]))
        parts.append("P:" + ";".join(str(p) for p in self.residual_predicates))
        parts.append("O:" + ";".join("%s=%s" % (item.name, item.expression)
                                     for item in self.output))
        parts.append("G:" + ";".join(str(e) for e in self.group_by))
        parts.append("S:" + ";".join(
            "%s%s%s" % (item.expression, " desc" if item.descending else "",
                        " nulls first" if item.nulls_first else "")
            for item in self.order_by))
        parts.append("T:%s" % self.limit)
        self._fingerprint = "|".join(parts)
        self._fingerprint_shape = shape
        return self._fingerprint

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "QueryBlock(%s: %d relations, %d join clauses)" % (
            self.name, len(self.relations), len(self.join_clauses))
