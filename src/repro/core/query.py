"""The bound query block: base relations, join clauses and predicates.

A :class:`QueryBlock` is the unit of optimization in the paper ("a single
select-project-join block", Section 3.7/3.8).  It is produced either by the
SQL binder or constructed programmatically (the running example of Section 3
and the synthetic workloads do the latter), and consumed by every optimizer
variant (plain CBO, BF-Post, BF-CBO, naïve).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .expressions import (
    AggregateCall,
    ColumnRef,
    Predicate,
    ScalarExpression,
)


class JoinType(enum.Enum):
    """Join types relevant to Bloom filter legality (Section 3.3)."""

    INNER = "inner"
    LEFT = "left"        # row-preserving side is the left input
    FULL = "full"
    SEMI = "semi"
    ANTI = "anti"


@dataclass(frozen=True)
class BaseRelation:
    """A FROM-list entry: a base table under an alias."""

    alias: str
    table_name: str

    def __str__(self) -> str:
        if self.alias == self.table_name:
            return self.table_name
        return "%s %s" % (self.table_name, self.alias)


@dataclass(frozen=True)
class JoinClause:
    """A single-column equi-join clause ``left = right``.

    Attributes:
        left: Column reference on one relation.
        right: Column reference on the other relation.
        join_type: Logical join type connecting the two relations.  For
            non-inner joins, ``left`` belongs to the row-preserving (outer
            spelled in SQL order) side.
    """

    left: ColumnRef
    right: ColumnRef
    join_type: JoinType = JoinType.INNER

    def __post_init__(self) -> None:
        if self.left.relation == self.right.relation:
            raise ValueError("join clause must reference two distinct relations")

    @property
    def relations(self) -> FrozenSet[str]:
        """The two relation aliases this clause connects."""
        return frozenset((self.left.relation, self.right.relation))

    def column_for(self, alias: str) -> ColumnRef:
        """The side of the clause belonging to relation ``alias``."""
        if self.left.relation == alias:
            return self.left
        if self.right.relation == alias:
            return self.right
        raise KeyError("relation %r not part of join clause %s" % (alias, self))

    def other(self, alias: str) -> ColumnRef:
        """The side of the clause *not* belonging to relation ``alias``."""
        if self.left.relation == alias:
            return self.right
        if self.right.relation == alias:
            return self.left
        raise KeyError("relation %r not part of join clause %s" % (alias, self))

    def connects(self, left_set: FrozenSet[str], right_set: FrozenSet[str]) -> bool:
        """True if this clause joins a relation in each of the two sets."""
        return ((self.left.relation in left_set and self.right.relation in right_set)
                or (self.left.relation in right_set and self.right.relation in left_set))

    @property
    def is_hashable(self) -> bool:
        """True if a hash join (and hence a Bloom filter) can use this clause."""
        return self.join_type in (JoinType.INNER, JoinType.SEMI, JoinType.LEFT)

    def __str__(self) -> str:
        suffix = "" if self.join_type is JoinType.INNER else " [%s]" % self.join_type.value
        return "%s = %s%s" % (self.left, self.right, suffix)


@dataclass(frozen=True)
class OutputItem:
    """One SELECT-list item: an expression plus its output name."""

    expression: ScalarExpression
    name: str

    @property
    def is_aggregate(self) -> bool:
        """True if the item is an aggregate call."""
        return isinstance(self.expression, AggregateCall)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    expression: ScalarExpression
    descending: bool = False


@dataclass
class QueryBlock:
    """A bound select-project-join query block.

    Attributes:
        relations: FROM-list base relations, in syntactic order.
        join_clauses: Equi-join clauses extracted from the WHERE clause.
        local_predicates: Per-relation filters, keyed by relation alias.
        residual_predicates: Predicates referencing two or more relations that
            are not simple equi-joins (e.g. the nation-pair OR in TPC-H Q7);
            they are applied once all referenced relations have been joined.
        output: SELECT-list items (may include aggregates).
        group_by: GROUP BY expressions.
        order_by: ORDER BY items.
        limit: Optional LIMIT row count.
        name: Optional human-readable name (e.g. ``"Q7"``), used in reports.
    """

    relations: List[BaseRelation]
    join_clauses: List[JoinClause] = field(default_factory=list)
    local_predicates: Dict[str, List[Predicate]] = field(default_factory=dict)
    residual_predicates: List[Predicate] = field(default_factory=list)
    output: List[OutputItem] = field(default_factory=list)
    group_by: List[ScalarExpression] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    name: str = "query"

    def __post_init__(self) -> None:
        aliases = [rel.alias for rel in self.relations]
        if len(set(aliases)) != len(aliases):
            raise ValueError("duplicate relation aliases in query block")
        self._by_alias = {rel.alias: rel for rel in self.relations}
        for alias in self.local_predicates:
            if alias not in self._by_alias:
                raise ValueError("local predicate on unknown relation %r" % alias)
        for clause in self.join_clauses:
            for alias in clause.relations:
                if alias not in self._by_alias:
                    raise ValueError("join clause references unknown relation %r"
                                     % alias)

    # -- lookups -------------------------------------------------------------

    @property
    def aliases(self) -> List[str]:
        """All relation aliases in FROM order."""
        return [rel.alias for rel in self.relations]

    def relation(self, alias: str) -> BaseRelation:
        """The base relation registered under ``alias``."""
        return self._by_alias[alias]

    def table_name(self, alias: str) -> str:
        """Catalog table name behind ``alias``."""
        return self._by_alias[alias].table_name

    def predicates_for(self, alias: str) -> List[Predicate]:
        """Local predicates attached to relation ``alias``."""
        return list(self.local_predicates.get(alias, []))

    def clauses_between(self, left: FrozenSet[str],
                        right: FrozenSet[str]) -> List[JoinClause]:
        """All join clauses connecting the two relation sets."""
        return [c for c in self.join_clauses if c.connects(left, right)]

    def clauses_for_relation(self, alias: str) -> List[JoinClause]:
        """All join clauses that touch relation ``alias``."""
        return [c for c in self.join_clauses if alias in c.relations]

    def residuals_applicable(self, relations: FrozenSet[str]) -> List[Predicate]:
        """Residual predicates fully covered by ``relations``."""
        return [p for p in self.residual_predicates
                if p.referenced_relations() <= relations]

    @property
    def has_aggregation(self) -> bool:
        """True if the SELECT list or GROUP BY implies aggregation."""
        return bool(self.group_by) or any(item.is_aggregate for item in self.output)

    @property
    def all_relations(self) -> FrozenSet[str]:
        """The full set of relation aliases."""
        return frozenset(self.aliases)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "QueryBlock(%s: %d relations, %d join clauses)" % (
            self.name, len(self.relations), len(self.join_clauses))
