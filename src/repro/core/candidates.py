"""Bloom filter candidates and Bloom filter specifications.

Terminology follows Section 3.3 of the paper:

* A **Bloom filter candidate** (BFC) is attached to the base relation to which
  a Bloom filter *could* be applied.  It records the apply column, the build
  column (from the other side of a hashable join clause) and an initially
  empty list Δ of build-side relation sets δ, which the first bottom-up phase
  populates.
* A **Bloom filter specification** is one concrete, costed instance of a
  candidate for a particular δ, carrying its cardinality estimate.  Specs are
  what scan sub-plans and plan properties reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .cardinality import BloomEstimate, CardinalityEstimator
from .expressions import ColumnRef
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .query import JoinClause, JoinType, QueryBlock


@dataclass
class BloomFilterCandidate:
    """A potential Bloom filter application attached to a base relation.

    Attributes:
        apply_column: Column of the (larger) relation the filter will probe.
        build_column: Column of the joining relation the filter is built from.
        clause: The hashable join clause that gave rise to this candidate.
        deltas: The list Δ of valid build-side relation sets collected during
            the first bottom-up pass.
    """

    apply_column: ColumnRef
    build_column: ColumnRef
    clause: JoinClause
    deltas: List[FrozenSet[str]] = field(default_factory=list)

    @property
    def apply_alias(self) -> str:
        return self.apply_column.relation

    @property
    def build_alias(self) -> str:
        return self.build_column.relation

    def add_delta(self, delta: FrozenSet[str]) -> bool:
        """Record a build-side relation set if not already present."""
        delta = frozenset(delta)
        if self.build_alias not in delta:
            raise ValueError("delta %r must contain the build relation %r"
                             % (sorted(delta), self.build_alias))
        if delta in self.deltas:
            return False
        self.deltas.append(delta)
        return True

    def __str__(self) -> str:
        return ("bfc(apply=%s, build=%s, deltas=%s)"
                % (self.apply_column, self.build_column,
                   [sorted(d) for d in self.deltas]))


@dataclass(frozen=True)
class BloomFilterSpec:
    """A fully specified, costed Bloom filter application.

    Attributes:
        filter_id: Stable unique identifier, also used by the executor to link
            the building hash join with the probing scan.
        apply_column: Probe-side column the filter is applied to.
        build_column: Build-side column the filter is built from.
        delta: Required build-side relation set (δ).
        estimate: Planning-time estimate of selectivity / FPR / build NDV.
    """

    filter_id: str
    apply_column: ColumnRef
    build_column: ColumnRef
    delta: FrozenSet[str]
    estimate: BloomEstimate

    @property
    def apply_alias(self) -> str:
        return self.apply_column.relation

    @property
    def build_alias(self) -> str:
        return self.build_column.relation

    def __str__(self) -> str:
        return ("BF[%s](apply=%s, build=%s, δ={%s}, sel=%.3f)"
                % (self.filter_id, self.apply_column, self.build_column,
                   ", ".join(sorted(self.delta)), self.estimate.selectivity))


def _join_type_allows_candidate(clause: JoinClause, apply_alias: str) -> bool:
    """Correctness restrictions from Section 3.3 (not heuristics).

    A Bloom filter must not cross a full outer join or an anti join, and for a
    left outer join the apply side must not be the row-preserving (left) side.
    """
    if clause.join_type in (JoinType.FULL, JoinType.ANTI):
        return False
    if clause.join_type is JoinType.LEFT:
        return clause.left.relation != apply_alias
    return True


def mark_bloom_filter_candidates(query: QueryBlock,
                                 estimator: CardinalityEstimator,
                                 settings: BfCboSettings,
                                 join_graph: Optional[JoinGraph] = None,
                                 ) -> Dict[str, List[BloomFilterCandidate]]:
    """Step 1 of BF-CBO: attach Bloom filter candidates to base relations.

    Implements Heuristic 1 (candidate only on the larger relation of each
    hashable join clause; with a multi-way equivalence class, build from the
    smallest member and apply to the larger ones), Heuristic 2 (skip apply
    relations below the row-count threshold), and Heuristic 9 as the optional,
    more permissive alternative to Heuristic 1.

    Returns:
        Mapping from apply-relation alias to its list of candidates.
    """
    join_graph = join_graph or JoinGraph(query)
    candidates: Dict[str, List[BloomFilterCandidate]] = {}

    def add_candidate(apply_col: ColumnRef, build_col: ColumnRef,
                      clause: JoinClause) -> None:
        apply_alias = apply_col.relation
        # Heuristic 2: the apply relation must be large enough to be worth it.
        if estimator.scan_rows(apply_alias) < settings.min_apply_rows:
            return
        if not _join_type_allows_candidate(clause, apply_alias):
            return
        existing = candidates.setdefault(apply_alias, [])
        for candidate in existing:
            if (candidate.apply_column == apply_col
                    and candidate.build_column == build_col):
                return
        existing.append(BloomFilterCandidate(apply_column=apply_col,
                                             build_column=build_col,
                                             clause=clause))

    for clause in query.join_clauses:
        if not clause.is_hashable:
            continue
        left, right = clause.left, clause.right
        left_rows = estimator.scan_rows(left.relation)
        right_rows = estimator.scan_rows(right.relation)

        equivalence = join_graph.equivalent_columns(left)
        if len(equivalence) > 2 and settings.use_heuristic1:
            # Multi-way equivalence class: build only from the smallest member,
            # apply to strictly larger members.
            smallest = min(equivalence,
                           key=lambda col: estimator.scan_rows(col.relation))
            for column in (left, right):
                if column.relation == smallest.relation:
                    continue
                if estimator.scan_rows(column.relation) <= estimator.scan_rows(
                        smallest.relation):
                    continue
                add_candidate(column, smallest, clause)
            continue

        if settings.use_heuristic9 or not settings.use_heuristic1:
            # Heuristic 9: candidates on both sides; δ pruning happens later
            # (only δ's smaller than the apply relation are retained).
            add_candidate(left, right, clause)
            add_candidate(right, left, clause)
        else:
            # Heuristic 1: candidate only on the larger relation.
            if left_rows >= right_rows:
                add_candidate(left, right, clause)
            else:
                add_candidate(right, left, clause)
    return candidates
