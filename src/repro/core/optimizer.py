"""The optimizer facade: No-BF, BF-Post and BF-CBO entry points.

:class:`Optimizer` is the public API most examples and experiments use.  It
wraps candidate marking, the two bottom-up phases, post-processing and final
plan assembly (aggregation / sort / limit / gather) behind a single
``optimize(query, mode)`` call and records planning time, which the paper
reports alongside query latency (Tables 2 and 3).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import PlanningError
from ..storage.catalog import Catalog
from .bfcbo import BfCboReport, TwoPhaseBloomOptimizer
from .cardinality import CardinalityEstimator
from .cost import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from .enumerator import (
    EnumerationSequenceCache,
    EnumerationStatistics,
    JoinEnumerator,
)
from .expressions import AggregateCall, ColumnRef
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .planlist import PlanList, PlanTable
from .plans import (
    AggregateNode,
    ExchangeKind,
    ExchangeNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
    count_bloom_filters,
)
from .postprocess import BloomPostProcessor, PostProcessReport
from .properties import Distribution, DistributionKind, PlanProperties
from .query import OrderItem, OutputItem, QueryBlock


class OptimizerMode(enum.Enum):
    """The three optimization strategies compared throughout the paper."""

    NO_BF = "no-bf"      # plain CBO, Bloom filters disabled entirely
    BF_POST = "bf-post"  # plain CBO + post-optimization Bloom filter placement
    BF_CBO = "bf-cbo"    # the paper's two-phase Bloom-filter-aware CBO


def resolve_optimizer_settings(mode: OptimizerMode,
                               settings: Optional[BfCboSettings]) -> BfCboSettings:
    """The effective settings ``optimize`` runs under for ``mode``.

    BF-CBO defaults to the paper configuration; every other mode runs with
    Bloom awareness forced off.  The single source of truth for this
    defaulting — the :class:`repro.api.Database` plan cache keys on its
    output, so it must match what the optimizer actually uses.
    """
    if settings is None:
        settings = (BfCboSettings.paper_defaults()
                    if mode is OptimizerMode.BF_CBO
                    else BfCboSettings.disabled())
    if mode is not OptimizerMode.BF_CBO:
        settings = settings.with_overrides(enabled=False)
    return settings


@dataclass
class OptimizationResult:
    """Everything produced by one optimizer invocation."""

    query: QueryBlock
    mode: OptimizerMode
    plan: PlanNode
    join_plan: PlanNode
    plan_lists: Dict[FrozenSet[str], PlanList]
    planning_time_ms: float
    settings: BfCboSettings
    enumeration_stats: EnumerationStatistics
    bfcbo_report: Optional[BfCboReport] = None
    postprocess_report: Optional[PostProcessReport] = None

    @property
    def num_bloom_filters(self) -> int:
        """Number of Bloom filters applied anywhere in the final plan."""
        return count_bloom_filters(self.plan)

    @property
    def estimated_cost(self) -> float:
        """Total estimated cost of the final plan."""
        return self.plan.cost.total


class Optimizer:
    """Plans query blocks against a catalog under a chosen optimizer mode."""

    def __init__(self, catalog: Catalog,
                 cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
                 sequence_cache: Optional[EnumerationSequenceCache] = None) -> None:
        self.catalog = catalog
        self.cost_model = CostModel(cost_parameters)
        #: Optional cross-query DPccp sequence cache (see
        #: :class:`~repro.core.enumerator.EnumerationSequenceCache`), shared
        #: by every optimization this optimizer runs.
        self.sequence_cache = sequence_cache

    # ------------------------------------------------------------------

    def optimize(self, query: QueryBlock,
                 mode: OptimizerMode = OptimizerMode.BF_CBO,
                 settings: Optional[BfCboSettings] = None) -> OptimizationResult:
        """Optimize ``query`` and return the chosen plan plus diagnostics."""
        started = time.perf_counter()
        settings = resolve_optimizer_settings(mode, settings)

        estimator = CardinalityEstimator(self.catalog, query)
        two_phase = TwoPhaseBloomOptimizer(self.catalog, query, estimator,
                                           self.cost_model, settings,
                                           sequence_cache=self.sequence_cache)
        table = two_phase.optimize_table()
        join_plan = self._best_join_plan(query, two_phase.join_graph, table)
        plan_lists = table.to_alias_dict(two_phase.join_graph)

        postprocess_report: Optional[PostProcessReport] = None
        if mode in (OptimizerMode.BF_POST, OptimizerMode.BF_CBO):
            # BF-Post places all its filters here; BF-CBO retains the pass to
            # catch filters its per-block costing could not claim (Section 3.7).
            processor = BloomPostProcessor(self.catalog, query, estimator,
                                           BfCboSettings.paper_defaults())
            join_plan, postprocess_report = processor.process(join_plan)

        final_plan = self._finalize(query, join_plan, estimator)
        planning_time_ms = (time.perf_counter() - started) * 1e3
        return OptimizationResult(
            query=query, mode=mode, plan=final_plan, join_plan=join_plan,
            plan_lists=plan_lists, planning_time_ms=planning_time_ms,
            settings=settings, enumeration_stats=two_phase.enumerator.stats,
            bfcbo_report=two_phase.report if settings.enabled else None,
            postprocess_report=postprocess_report)

    # ------------------------------------------------------------------

    @staticmethod
    def _best_join_plan(query: QueryBlock, join_graph: "JoinGraph",
                        table: "PlanTable") -> PlanNode:
        """Cheapest complete (no pending Bloom filters) plan for all relations."""
        plan_list = table.get(join_graph.all_mask)
        if plan_list is None or plan_list.best() is None:
            raise PlanningError("optimizer produced no plan for %s" % query.name)
        return plan_list.best()

    # ------------------------------------------------------------------

    def _finalize(self, query: QueryBlock, join_plan: PlanNode,
                  estimator: CardinalityEstimator) -> PlanNode:
        """Add gather / aggregation / sort / limit / projection on top."""
        plan = join_plan
        # Bring the result to a single worker before final presentation.
        if plan.properties.distribution.kind is not DistributionKind.SINGLETON:
            gather_cost = self.cost_model.gather(plan.rows, plan.row_width)
            plan = ExchangeNode(kind=ExchangeKind.GATHER, child=plan,
                                rows=plan.rows, cost=plan.cost + gather_cost,
                                properties=PlanProperties(
                                    distribution=Distribution.singleton(),
                                    pending_blooms=plan.pending_blooms),
                                row_width=plan.row_width)

        order_by, carried, drop_keys = self._carry_order_keys(query)
        if query.has_aggregation:
            groups = self._estimate_groups(query, plan.rows, estimator)
            agg_cost = self.cost_model.aggregate(plan.rows, groups)
            aggregates = tuple(item for item in query.output) + carried
            plan = AggregateNode(child=plan, group_by=tuple(query.group_by),
                                 aggregates=aggregates, rows=groups,
                                 cost=plan.cost + agg_cost,
                                 properties=plan.properties, row_width=64)
        elif query.output:
            items = tuple(query.output) + carried
            project_cost = self.cost_model.project(plan.rows, len(items))
            plan = ProjectNode(child=plan, items=items,
                               rows=plan.rows, cost=plan.cost + project_cost,
                               properties=plan.properties,
                               row_width=plan.row_width)

        if query.order_by:
            sort_cost = self.cost_model.sort(plan.rows)
            plan = SortNode(child=plan, order_by=order_by,
                            drop_keys=drop_keys,
                            rows=plan.rows, cost=plan.cost + sort_cost,
                            properties=plan.properties, row_width=plan.row_width)
        if query.limit is not None:
            rows = min(plan.rows, float(query.limit))
            plan = LimitNode(child=plan, limit=query.limit, rows=rows,
                             cost=plan.cost + self.cost_model.limit(rows),
                             properties=plan.properties, row_width=plan.row_width)
        return plan

    @staticmethod
    def _carry_order_keys(query: QueryBlock,
                          ) -> Tuple[Tuple[OrderItem, ...],
                                     Tuple[OutputItem, ...],
                                     Tuple[str, ...]]:
        """Carry ORDER BY keys on non-projected columns through the output.

        The sort runs above the projection (or aggregation), where the batch
        is keyed by output names — an ORDER BY expression the output does
        not *cover* would have nothing to resolve against.  Such expressions
        are appended to the output as hidden items named by their rendering,
        the order item is rewritten to reference that output name, and the
        hidden names are returned as ``drop_keys`` for the
        :class:`~repro.core.plans.SortNode` to remove once the rows are
        ordered.  Covered items (an output name, or a column the projection
        already exposes under the same name) pass through untouched, so
        previously-working queries plan exactly as before.

        Returns ``(order_by, carried_output_items, drop_keys)``.
        """
        if not query.order_by or not query.output:
            return tuple(query.order_by), (), ()
        names = {item.name for item in query.output}
        grouped = {str(expression) for expression in query.group_by}
        by_rendering: Dict[str, str] = {}
        for item in query.output:
            by_rendering.setdefault(str(item.expression), item.name)
        order_by = []
        carried = []
        drop_keys = []
        for item in query.order_by:
            expression = item.expression
            covered = ((isinstance(expression, ColumnRef)
                        and expression.column in names)
                       or str(expression) in names)
            if covered:
                order_by.append(item)
                continue
            if (query.has_aggregation
                    and not isinstance(expression, AggregateCall)
                    and str(expression) not in grouped):
                # Under GROUP BY a carried sort key must itself be grouped
                # or an aggregate — anything else has no well-defined
                # per-group value, so reject it instead of silently sorting
                # by an arbitrary representative row.
                raise PlanningError(
                    "ORDER BY expression %s must appear in GROUP BY or be "
                    "an aggregate" % expression)
            name = by_rendering.get(str(expression))
            if name is None:
                # Not computed by any output item: carry it as a hidden
                # column (named by its rendering, disambiguated on the
                # off-chance of a collision) and drop it after the sort.
                name = str(expression)
                while name in names:
                    name += "#sort"
                names.add(name)
                by_rendering[str(expression)] = name
                carried.append(OutputItem(expression=expression, name=name))
                drop_keys.append(name)
            order_by.append(OrderItem(expression=ColumnRef("", name),
                                      descending=item.descending,
                                      nulls_first=item.nulls_first))
        return tuple(order_by), tuple(carried), tuple(drop_keys)

    @staticmethod
    def _estimate_groups(query: QueryBlock, input_rows: float,
                         estimator: CardinalityEstimator) -> float:
        """Estimated number of output groups of the final aggregation."""
        if not query.group_by:
            return 1.0
        groups = 1.0
        for expression in query.group_by:
            if isinstance(expression, ColumnRef):
                groups *= estimator.column_ndv(expression.relation,
                                               expression.column)
            else:
                groups *= 32.0  # derived expression: modest default
        return max(1.0, min(input_rows, groups))
