"""Cardinality and selectivity estimation.

The paper's method is, at heart, a cardinality-estimation change: a scan with a
Bloom filter applied gets a revised row estimate equal to the semi-join of the
scan relation with the filter's build-side relation set δ, plus the expected
false-positive leakage (Section 3.5).  Everything else reuses the ordinary
bottom-up machinery: local-predicate selectivity from column statistics,
equi-join cardinality from distinct counts, and distinct-count propagation
through joins.

The estimator works purely from catalog statistics — it never reads table data
— so it can plan against the paper's SF100 row counts via
:func:`repro.storage.statistics.synthetic_statistics` as well as against the
materialised reproduction datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..bloom.math import expected_fpr_for_build_ndv
from ..storage.catalog import Catalog
from ..storage.statistics import ColumnStatistics
from .expressions import (
    Between,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    IsNotNull,
    IsNull,
    Like,
    Literal,
    Not,
    And,
    Or,
    Predicate,
)
from .query import JoinClause, QueryBlock

#: Selectivity assumed for predicates the estimator cannot analyse.
DEFAULT_UNKNOWN_SELECTIVITY = 0.25

#: Lower bound applied to every row estimate (avoid zero-cost plans).
MIN_ROWS = 1.0


@dataclass(frozen=True)
class BloomEstimate:
    """Estimated effect of one Bloom filter on a scan.

    Attributes:
        selectivity: True-match fraction (semi-join selectivity, no FPR).
        false_positive_rate: Expected FPR given the planned filter size.
        build_ndv: Estimated distinct build-side values (sizes the filter).
        effective_selectivity: Fraction of rows surviving including FPR.
    """

    selectivity: float
    false_positive_rate: float
    build_ndv: float

    @property
    def effective_selectivity(self) -> float:
        return min(1.0, self.selectivity
                   + self.false_positive_rate * (1.0 - self.selectivity))


class CardinalityEstimator:
    """Statistics-driven cardinality estimation for one query block."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 unknown_selectivity: float = DEFAULT_UNKNOWN_SELECTIVITY) -> None:
        self.catalog = catalog
        self.query = query
        self.unknown_selectivity = unknown_selectivity
        self._scan_rows_cache: Dict[str, float] = {}
        self._join_rows_cache: Dict[FrozenSet[str], float] = {}

    # ------------------------------------------------------------------
    # Column statistics helpers
    # ------------------------------------------------------------------

    def _column_stats(self, alias: str, column: str) -> ColumnStatistics:
        table_name = self.query.table_name(alias)
        return self.catalog.statistics(table_name).column(column)

    def base_rows(self, alias: str) -> float:
        """Unfiltered row count of the base relation behind ``alias``."""
        table_name = self.query.table_name(alias)
        return float(max(MIN_ROWS, self.catalog.statistics(table_name).num_rows))

    def local_selectivity(self, alias: str) -> float:
        """Combined selectivity of all local predicates on ``alias``."""
        selectivity = 1.0
        for predicate in self.query.predicates_for(alias):
            selectivity *= self.predicate_selectivity(predicate, alias)
        return min(1.0, max(0.0, selectivity))

    def scan_rows(self, alias: str) -> float:
        """Rows produced by scanning ``alias`` after local predicates."""
        if alias not in self._scan_rows_cache:
            rows = self.base_rows(alias) * self.local_selectivity(alias)
            self._scan_rows_cache[alias] = max(MIN_ROWS, rows)
        return self._scan_rows_cache[alias]

    def column_ndv(self, alias: str, column: str,
                   after_local_filter: bool = True) -> float:
        """Distinct count of ``alias.column`` (optionally after local filters)."""
        stats = self._column_stats(alias, column)
        ndv = float(max(1, stats.ndv))
        if after_local_filter:
            selectivity = self.local_selectivity(alias)
            if selectivity < 1.0:
                ndv = max(1.0, stats.ndv_after_filter(selectivity))
        return ndv

    # ------------------------------------------------------------------
    # Predicate selectivity
    # ------------------------------------------------------------------

    def predicate_selectivity(self, predicate: Predicate, alias: str) -> float:
        """Selectivity of a (local) predicate on relation ``alias``."""
        if isinstance(predicate, And):
            sel = 1.0
            for operand in predicate.operands:
                sel *= self.predicate_selectivity(operand, alias)
            return sel
        if isinstance(predicate, Or):
            sel = 0.0
            for operand in predicate.operands:
                child = self.predicate_selectivity(operand, alias)
                sel = sel + child - sel * child
            return min(1.0, sel)
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.predicate_selectivity(predicate.operand, alias))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, alias)
        if isinstance(predicate, Between):
            return self._between_selectivity(predicate, alias)
        if isinstance(predicate, InList):
            return self._in_list_selectivity(predicate, alias)
        if isinstance(predicate, Like):
            # LIKE patterns with a literal prefix are moderately selective;
            # leading-wildcard patterns are barely selective.
            base = 0.05 if not predicate.pattern.startswith("%") else 0.25
            return 1.0 - base if predicate.negated else base
        if isinstance(predicate, (IsNull, IsNotNull)):
            return self._null_test_selectivity(predicate, alias)
        return self.unknown_selectivity

    def _null_test_selectivity(self, predicate: Union[IsNull, IsNotNull],
                               alias: str) -> float:
        """Selectivity of ``IS [NOT] NULL`` from the column's null fraction."""
        if not isinstance(predicate.operand, ColumnRef) \
                or predicate.operand.relation != alias:
            return self.unknown_selectivity
        stats = self._column_stats(alias, predicate.operand.column)
        fraction = min(1.0, max(0.0, stats.null_fraction))
        return fraction if isinstance(predicate, IsNull) else 1.0 - fraction

    @staticmethod
    def _literal_value(expr: object) -> Optional[object]:
        return expr.value if isinstance(expr, Literal) else None

    def _comparison_selectivity(self, predicate: Comparison, alias: str) -> float:
        column, literal = None, None
        op = predicate.op
        if isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, Literal):
            column, literal = predicate.left, predicate.right.value
        elif isinstance(predicate.right, ColumnRef) and isinstance(predicate.left, Literal):
            column, literal = predicate.right, predicate.left.value
            flip = {ComparisonOp.LT: ComparisonOp.GT, ComparisonOp.GT: ComparisonOp.LT,
                    ComparisonOp.LE: ComparisonOp.GE, ComparisonOp.GE: ComparisonOp.LE}
            op = flip.get(op, op)
        if column is None or column.relation != alias:
            return self.unknown_selectivity
        if literal is None:
            return 0.0  # comparison with the NULL literal is never TRUE
        stats = self._column_stats(alias, column.column)
        if op is ComparisonOp.EQ:
            return stats.equality_selectivity(literal)
        if op is ComparisonOp.NE:
            # NULL rows satisfy neither = nor <>: start from the valid
            # fraction, not 1.0.
            return max(0.0, stats.valid_fraction
                       - stats.equality_selectivity(literal))
        numeric = self._as_number(literal)
        if numeric is None:
            return self.unknown_selectivity
        if op in (ComparisonOp.LT, ComparisonOp.LE):
            return stats.range_selectivity(low=None, high=numeric,
                                           high_inclusive=op is ComparisonOp.LE)
        if op in (ComparisonOp.GT, ComparisonOp.GE):
            return stats.range_selectivity(low=numeric, high=None,
                                           low_inclusive=op is ComparisonOp.GE)
        return self.unknown_selectivity

    def _between_selectivity(self, predicate: Between, alias: str) -> float:
        if not isinstance(predicate.operand, ColumnRef):
            return self.unknown_selectivity
        if predicate.operand.relation != alias:
            return self.unknown_selectivity
        low = self._as_number(self._literal_value(predicate.low))
        high = self._as_number(self._literal_value(predicate.high))
        stats = self._column_stats(alias, predicate.operand.column)
        return stats.range_selectivity(low=low, high=high)

    def _in_list_selectivity(self, predicate: InList, alias: str) -> float:
        if not isinstance(predicate.operand, ColumnRef):
            return self.unknown_selectivity
        if predicate.operand.relation != alias:
            return self.unknown_selectivity
        stats = self._column_stats(alias, predicate.operand.column)
        sel = sum(stats.equality_selectivity(value) for value in predicate.values)
        return min(1.0, sel)

    @staticmethod
    def _as_number(value: Any) -> Optional[float]:
        if value is None or isinstance(value, str):
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Join cardinality
    # ------------------------------------------------------------------

    def residual_selectivity(self, relations: FrozenSet[str]) -> float:
        """Combined selectivity of residual predicates covered by ``relations``.

        Residual predicates (multi-relation filters that are not equi-joins)
        get a fixed default selectivity each; they are rare in the workload and
        only affect absolute estimates, not the Bloom filter machinery.
        """
        count = len(self.query.residuals_applicable(relations))
        return self.unknown_selectivity ** count if count else 1.0

    def join_rows(self, relations: Iterable[str]) -> float:
        """Estimated cardinality of the join of the given relation set.

        Uses the textbook formula: the product of filtered base cardinalities
        divided, per applicable equi-join clause, by the larger of the two join
        columns' distinct counts.
        """
        rel_set = frozenset(relations)
        if not rel_set:
            return MIN_ROWS
        if rel_set in self._join_rows_cache:
            return self._join_rows_cache[rel_set]
        rows = 1.0
        for alias in rel_set:
            rows *= self.scan_rows(alias)
        for clause in self.query.join_clauses:
            if clause.relations <= rel_set:
                rows *= self.join_clause_selectivity(clause)
        rows *= self.residual_selectivity(rel_set)
        rows = max(MIN_ROWS, rows)
        self._join_rows_cache[rel_set] = rows
        return rows

    def join_clause_selectivity(self, clause: JoinClause) -> float:
        """Selectivity contributed by a single equi-join clause."""
        left_ndv = self.column_ndv(clause.left.relation, clause.left.column)
        right_ndv = self.column_ndv(clause.right.relation, clause.right.column)
        return 1.0 / max(1.0, left_ndv, right_ndv)

    def join_pair_rows(self, left: FrozenSet[str], right: FrozenSet[str]) -> float:
        """Cardinality of joining two disjoint relation sets."""
        return self.join_rows(left | right)

    def column_ndv_in_join(self, relations: FrozenSet[str], column: ColumnRef) -> float:
        """Distinct count of ``column`` within the join of ``relations``.

        The distinct count can only shrink as the column's relation is joined
        (and thereby semi-join-filtered) with other relations, so it is capped
        by both its filtered base NDV and the join cardinality itself.  This is
        what makes predicate transfer visible to the estimator: joining
        ``customer`` with a filtered ``nation`` shrinks the surviving
        ``c_custkey`` domain, which in turn shrinks a Bloom filter built on it.
        """
        if column.relation not in relations:
            raise ValueError("column %s not available in relation set %r"
                             % (column, sorted(relations)))
        base_ndv = self.column_ndv(column.relation, column.column)
        join_cardinality = self.join_rows(relations)
        return max(1.0, min(base_ndv, join_cardinality))

    # ------------------------------------------------------------------
    # Semi-joins and Bloom filters
    # ------------------------------------------------------------------

    def semijoin_selectivity(self, apply_column: ColumnRef,
                             build_column: ColumnRef,
                             build_relations: FrozenSet[str]) -> float:
        """Selectivity of ``apply ⋉ build`` on the given join column pair.

        Estimated as the fraction of the apply column's distinct values that
        also appear on the build side, assuming containment of the smaller
        distinct set in the larger (the usual equi-join assumption).
        """
        build_ndv = self.column_ndv_in_join(build_relations, build_column)
        apply_ndv = self.column_ndv(apply_column.relation, apply_column.column)
        if apply_ndv <= 0:
            return 1.0
        return min(1.0, build_ndv / apply_ndv)

    def bloom_estimate(self, apply_column: ColumnRef, build_column: ColumnRef,
                       build_relations: FrozenSet[str]) -> BloomEstimate:
        """Planning-time estimate of one Bloom filter's filtering effect."""
        selectivity = self.semijoin_selectivity(apply_column, build_column,
                                                build_relations)
        build_ndv = self.column_ndv_in_join(build_relations, build_column)
        fpr = expected_fpr_for_build_ndv(int(round(build_ndv)))
        return BloomEstimate(selectivity=selectivity, false_positive_rate=fpr,
                             build_ndv=build_ndv)

    def bloom_scan_rows(self, alias: str,
                        estimates: Sequence[BloomEstimate]) -> float:
        """Rows surviving a scan of ``alias`` with the given Bloom filters.

        Multiple filters on the same scan (Heuristic 4 applies them all at
        once) are assumed independent, so their effective selectivities
        multiply.
        """
        rows = self.scan_rows(alias)
        for estimate in estimates:
            rows *= estimate.effective_selectivity
        return max(MIN_ROWS, rows)

    # ------------------------------------------------------------------
    # Foreign-key reasoning (Heuristic 3)
    # ------------------------------------------------------------------

    def is_lossless_fk_join(self, apply_column: ColumnRef,
                            build_column: ColumnRef,
                            build_relations: FrozenSet[str]) -> bool:
        """True if the Bloom filter provably cannot remove any apply-side rows.

        This is the Heuristic-3 situation: the apply column is a foreign key
        referencing the build column's primary key, and the primary-key side is
        not reduced — neither by local predicates nor by the other relations in
        δ.  In that case every apply-side value is guaranteed to be present in
        the filter, so planning a Bloom filter scan sub-plan is pointless.
        """
        apply_table = self.query.table_name(apply_column.relation)
        build_table = self.query.table_name(build_column.relation)
        is_fk = self.catalog.is_foreign_key_reference(
            apply_table, apply_column.column, build_table, build_column.column)
        is_pk = self.catalog.is_primary_key(build_table, build_column.column)
        if not (is_fk and is_pk):
            return False
        # "Unfiltered": no local predicate on the PK relation, and no other
        # relation in δ that could shrink its key domain through a join.
        if self.query.predicates_for(build_column.relation):
            return False
        others = build_relations - {build_column.relation}
        if not others:
            return True
        base_ndv = self.column_ndv(build_column.relation, build_column.column,
                                   after_local_filter=False)
        joined_ndv = self.column_ndv_in_join(build_relations, build_column)
        return joined_ndv >= base_ndv * 0.999
