"""The physical cost model.

Costs are expressed in abstract work units, PostgreSQL-style: every operator
charges a per-row CPU cost for the work it does, scans additionally charge for
reading column data, and exchange operators charge for the bytes they move
between the simulated SMP workers.  The Bloom-filter-specific knobs follow the
paper (Section 3.5):

* applying a Bloom filter costs a constant ``k`` per probed row, with ``k``
  strictly smaller than the per-row cost of a hash-table lookup;
* building a Bloom filter has an (optional) per-row cost that defaults to zero
  because the authors measured it to be negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model.

    The defaults are chosen so that relative magnitudes mirror a conventional
    disk-less, columnar, in-memory engine: hashing a row is several times more
    expensive than streaming it, probing a Bloom filter is cheaper than probing
    a hash table, and shuffling a row across workers costs more than touching
    it locally.
    """

    #: Cost of emitting / touching one tuple in any operator.
    cpu_tuple_cost: float = 0.01
    #: Cost of evaluating one predicate (or expression) on one tuple.
    cpu_operator_cost: float = 0.0025
    #: Per-row cost of reading a tuple from columnar storage during a scan.
    scan_row_cost: float = 0.01
    #: Additional per-byte cost of reading column data during a scan.
    scan_byte_cost: float = 0.0001
    #: Per-row cost of inserting a row into a hash-join hash table.
    hash_build_row_cost: float = 0.04
    #: Per-row cost of probing a hash-join hash table.
    hash_probe_row_cost: float = 0.02
    #: Per-row cost of applying a Bloom filter (the paper's ``k``); strictly
    #: less than :attr:`hash_probe_row_cost`.
    bloom_probe_row_cost: float = 0.005
    #: Per-row cost of inserting into a Bloom filter while building the hash
    #: table.  The paper found this negligible and sets it to zero.
    bloom_build_row_cost: float = 0.0
    #: Per-row, per-comparison cost of a nested-loop join.
    nestloop_compare_cost: float = 0.005
    #: Per-row cost of a sort, multiplied by log2(n).
    sort_row_cost: float = 0.01
    #: Per-row cost of the merge phase of a merge join.
    merge_row_cost: float = 0.015
    #: Per-byte cost of redistributing (shuffling) a row to another worker.
    redistribute_byte_cost: float = 0.0004
    #: Per-byte cost of broadcasting a row to every worker.
    broadcast_byte_cost: float = 0.0004
    #: Per-row cost of computing one aggregate transition.
    agg_row_cost: float = 0.015
    #: Degree of parallelism assumed for exchange costing (paper uses 48).
    degree_of_parallelism: int = 48
    #: Default row width (bytes) when a plan node cannot derive one.
    default_row_width: int = 32

    def with_dop(self, dop: int) -> "CostParameters":
        """Return a copy of the parameters with a different DOP."""
        return replace(self, degree_of_parallelism=dop)


DEFAULT_COST_PARAMETERS = CostParameters()


@dataclass(frozen=True)
class Cost:
    """A plan cost: total work units plus the startup (blocking) portion.

    ``startup`` models work that must finish before the first output row can
    be produced (building hash tables, sorting, building Bloom filters); it is
    what makes nested-loop inner rescans and Bloom-filter wait semantics
    costable, but most comparisons only use :attr:`total`.
    """

    startup: float = 0.0
    total: float = 0.0

    def __post_init__(self) -> None:
        # Keep in sync with the fast path in Cost._clamped.
        if self.total < self.startup - 1e-9:
            object.__setattr__(self, "total", self.startup)

    @staticmethod
    def _clamped(startup: float, total: float) -> "Cost":
        """Allocation-fast constructor (runs for every candidate sub-plan):
        builds the instance directly, applying the same clamp as
        ``__post_init__``."""
        if total < startup - 1e-9:
            total = startup
        result = object.__new__(Cost)
        object.__setattr__(result, "startup", startup)
        object.__setattr__(result, "total", total)
        return result

    def __add__(self, other: "Cost") -> "Cost":
        return Cost._clamped(self.startup + other.startup,
                             self.total + other.total)

    def add_work(self, work: float, blocking: bool = False) -> "Cost":
        """Return a new cost with ``work`` added (optionally to startup too)."""
        return Cost._clamped(self.startup + (work if blocking else 0.0),
                             self.total + work)

    def __lt__(self, other: "Cost") -> bool:
        return self.total < other.total

    def __le__(self, other: "Cost") -> bool:
        return self.total <= other.total


ZERO_COST = Cost(0.0, 0.0)


class CostModel:
    """Computes operator costs from :class:`CostParameters`."""

    def __init__(self, params: CostParameters = DEFAULT_COST_PARAMETERS) -> None:
        self.params = params

    # -- scans -------------------------------------------------------------

    def seq_scan(self, rows: float, row_width: int,
                 num_predicates: int = 0) -> Cost:
        """Cost of a full sequential scan with ``num_predicates`` filters."""
        p = self.params
        work = rows * (p.scan_row_cost + row_width * p.scan_byte_cost)
        work += rows * num_predicates * p.cpu_operator_cost
        return Cost(0.0, work)

    def bloom_apply(self, input_rows: float, num_filters: int) -> Cost:
        """Extra cost of probing ``num_filters`` Bloom filters per input row.

        This is the paper's ``extra cost = k * input_rows`` term; it is charged
        on the rows *entering* the filter (the pre-filter scan output).
        """
        work = input_rows * num_filters * self.params.bloom_probe_row_cost
        return Cost(0.0, work)

    def bloom_build(self, build_rows: float, num_filters: int) -> Cost:
        """Cost of inserting build-side rows into ``num_filters`` filters."""
        work = build_rows * num_filters * self.params.bloom_build_row_cost
        return Cost(work, work)

    # -- joins -------------------------------------------------------------

    def hash_join(self, build_rows: float, probe_rows: float,
                  output_rows: float, num_clauses: int = 1) -> Cost:
        """Cost of a hash join given already-costed inputs."""
        p = self.params
        build = build_rows * p.hash_build_row_cost * max(1, num_clauses)
        probe = probe_rows * p.hash_probe_row_cost * max(1, num_clauses)
        emit = output_rows * p.cpu_tuple_cost
        return Cost(build, build + probe + emit)

    def nested_loop(self, outer_rows: float, inner_rows: float,
                    output_rows: float, inner_rescan_cost: float = 0.0) -> Cost:
        """Cost of a (materialised-inner) nested-loop join."""
        p = self.params
        compare = outer_rows * inner_rows * p.nestloop_compare_cost
        rescan = max(0.0, outer_rows - 1.0) * inner_rescan_cost
        emit = output_rows * p.cpu_tuple_cost
        return Cost(0.0, compare + rescan + emit)

    def sort(self, rows: float) -> Cost:
        """Cost of sorting ``rows`` rows."""
        rows = max(2.0, rows)
        work = rows * math.log2(rows) * self.params.sort_row_cost
        return Cost(work, work)

    def merge_join(self, left_rows: float, right_rows: float,
                   output_rows: float, left_sorted: bool = False,
                   right_sorted: bool = False) -> Cost:
        """Cost of a merge join, including any sorts it needs."""
        p = self.params
        cost = Cost(0.0, (left_rows + right_rows) * p.merge_row_cost
                    + output_rows * p.cpu_tuple_cost)
        if not left_sorted:
            cost = cost + self.sort(left_rows)
        if not right_sorted:
            cost = cost + self.sort(right_rows)
        return cost

    # -- exchanges ----------------------------------------------------------

    def broadcast(self, rows: float, row_width: int) -> Cost:
        """Cost of broadcasting ``rows`` to every worker."""
        p = self.params
        bytes_moved = rows * row_width * p.degree_of_parallelism
        return Cost(0.0, bytes_moved * p.broadcast_byte_cost
                    + rows * p.cpu_tuple_cost)

    def redistribute(self, rows: float, row_width: int) -> Cost:
        """Cost of hash-redistributing ``rows`` across workers."""
        p = self.params
        bytes_moved = rows * row_width
        return Cost(0.0, bytes_moved * p.redistribute_byte_cost
                    + rows * p.cpu_tuple_cost)

    def gather(self, rows: float, row_width: int) -> Cost:
        """Cost of gathering ``rows`` to a single worker."""
        return self.redistribute(rows, row_width)

    # -- other operators ------------------------------------------------------

    def aggregate(self, input_rows: float, output_groups: float) -> Cost:
        """Cost of a hash aggregation."""
        p = self.params
        work = input_rows * p.agg_row_cost + output_groups * p.cpu_tuple_cost
        return Cost(work, work)

    def project(self, rows: float, num_expressions: int) -> Cost:
        """Cost of computing ``num_expressions`` output expressions per row."""
        return Cost(0.0, rows * num_expressions * self.params.cpu_operator_cost)

    def limit(self, rows: float) -> Cost:
        """Cost of a LIMIT (essentially free)."""
        return Cost(0.0, rows * self.params.cpu_tuple_cost * 0.1)
