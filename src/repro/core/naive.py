"""The naïve single-pass approach of Section 3.1 (for the blow-up experiment).

The paper motivates its two-phase design by describing what happens if Bloom
filter sub-plans are added in a single bottom-up pass: the cardinality of a
Bloom filter scan cannot be known until the complete build-side relation set δ
is known, so the optimizer must carry *uncosted* sub-plans upward.  Uncosted
sub-plans cannot be pruned, and every join that does not resolve a Bloom filter
multiplies their number, leading to exponential growth in both the number of
maintained sub-plans and the optimization time (28 ms for 3 tables, 375 ms for
4 tables, 56 s for 5 tables, > 30 min for 6 tables in the paper's system).

This module reproduces that behaviour in a deliberately simple enumerator so
that the growth curve can be measured and compared against the two-phase
approach.  A configurable safety budget aborts the enumeration when it becomes
clear the search space has exploded, mirroring the authors giving up on the
6-table query.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..storage.catalog import Catalog
from .candidates import mark_bloom_filter_candidates
from .cardinality import CardinalityEstimator
from .cost import CostModel
from .enumerator import JoinEnumerator
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .query import QueryBlock


@dataclass(frozen=True)
class NaiveSubPlan:
    """A lightweight sub-plan record used only by the naïve enumerator.

    Attributes:
        relations: Relation aliases covered by the sub-plan.
        unresolved: Bloom filter applications (apply alias, apply column,
            build alias, build column) whose build side has not yet joined;
            while non-empty the sub-plan is *uncosted* and unprunable.
        rows: Estimated rows, or ``None`` while any Bloom filter is unresolved.
        cost: Estimated cost, or ``None`` while any Bloom filter is unresolved.
        shape: A tuple encoding the join order, to keep sub-plans distinct.
    """

    relations: FrozenSet[str]
    unresolved: Tuple[Tuple[str, str, str, str], ...]
    rows: Optional[float]
    cost: Optional[float]
    shape: Tuple


@dataclass
class NaiveResult:
    """Outcome of a naïve enumeration run."""

    planning_time_seconds: float
    subplans_maintained: int
    join_pairs_considered: int
    combinations_evaluated: int
    completed: bool
    budget_exceeded: bool = False


class NaiveBloomEnumerator:
    """Single-pass enumeration that keeps uncosted Bloom filter sub-plans."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 estimator: CardinalityEstimator, cost_model: CostModel,
                 settings: Optional[BfCboSettings] = None,
                 max_total_subplans: int = 200_000,
                 max_seconds: float = 60.0) -> None:
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings or BfCboSettings.paper_defaults()
        self.join_graph = JoinGraph(query)
        self.enumerator = JoinEnumerator(catalog, query, estimator, cost_model,
                                         self.settings, self.join_graph)
        self.max_total_subplans = max_total_subplans
        self.max_seconds = max_seconds

    # ------------------------------------------------------------------

    def _base_subplans(self) -> Dict[int, List[NaiveSubPlan]]:
        """Per-relation sub-plans keyed by relation-set bitmask: one plain
        scan plus uncosted Bloom scans."""
        candidates = mark_bloom_filter_candidates(self.query, self.estimator,
                                                  self.settings,
                                                  self.join_graph)
        plan_lists: Dict[int, List[NaiveSubPlan]] = {}
        for alias in self.query.aliases:
            rows = self.estimator.scan_rows(alias)
            width = self.enumerator.row_width(alias)
            cost = self.cost_model.seq_scan(self.estimator.base_rows(alias),
                                            width).total
            plans = [NaiveSubPlan(relations=frozenset({alias}), unresolved=(),
                                  rows=rows, cost=cost, shape=(alias,))]
            for candidate in candidates.get(alias, ()):
                marker = (candidate.apply_alias, candidate.apply_column.column,
                          candidate.build_alias, candidate.build_column.column)
                plans.append(NaiveSubPlan(relations=frozenset({alias}),
                                          unresolved=(marker,), rows=None,
                                          cost=None, shape=(alias, marker)))
            plan_lists[self.join_graph.mask_of_alias(alias)] = plans
        return plan_lists

    def _resolve(self, plan: NaiveSubPlan, inner: NaiveSubPlan,
                 union: FrozenSet[str]) -> Tuple[Optional[float], Optional[float]]:
        """Cost a joined sub-plan, recursively re-deriving Bloom cardinalities.

        This is the expensive part the paper describes: the uncosted sub-plan
        must be traversed down to its leaf scans, the Bloom-filtered
        cardinality of each leaf recomputed against the now-known build-side
        relation set, and the intermediate cardinalities recomputed back up.
        Here that recursion is represented by re-estimating the join cardinality
        of every prefix of the recorded join order (linear in plan depth), so
        the measured planning time scales the same way.
        """
        rows = self.estimator.join_rows(union)
        cost = (plan.cost or 0.0) + (inner.cost or 0.0)
        # Recursively revisit the shape to emulate leaf-to-root recosting.
        accumulated: List[str] = []
        for element in _flatten_shape(plan.shape) + _flatten_shape(inner.shape):
            if isinstance(element, str) and element in union:
                accumulated.append(element)
                cost += self.estimator.join_rows(frozenset(accumulated)) * 1e-6
        cost += self.cost_model.hash_join(
            inner.rows or self.estimator.join_rows(inner.relations),
            plan.rows or self.estimator.join_rows(plan.relations), rows).total
        return rows, cost

    def run(self) -> NaiveResult:
        """Run the naïve enumeration, returning timing and size counters."""
        start = time.perf_counter()
        plan_lists = self._base_subplans()
        pairs = 0
        combinations = 0
        budget_exceeded = False

        for pair in self.enumerator.enumerate_join_pairs():
            pairs += 1
            outer_plans = plan_lists.get(pair.outer_mask, [])
            inner_plans = plan_lists.get(pair.inner_mask, [])
            if not outer_plans or not inner_plans:
                continue
            target = plan_lists.setdefault(pair.union_mask, [])
            best_cost: Optional[float] = None
            for existing in target:
                if existing.cost is not None:
                    best_cost = existing.cost if best_cost is None else min(
                        best_cost, existing.cost)
            for outer_plan in outer_plans:
                for inner_plan in inner_plans:
                    combinations += 1
                    unresolved = tuple(
                        marker for marker in outer_plan.unresolved + inner_plan.unresolved
                        if marker[2] not in pair.inner or marker[0] not in pair.outer)
                    if unresolved:
                        # Still uncosted: must be kept, cannot be pruned.
                        target.append(NaiveSubPlan(
                            relations=pair.union, unresolved=unresolved,
                            rows=None, cost=None,
                            shape=(outer_plan.shape, inner_plan.shape)))
                        continue
                    rows, cost = self._resolve(outer_plan, inner_plan, pair.union)
                    if best_cost is not None and cost is not None and cost >= best_cost:
                        continue
                    best_cost = cost if best_cost is None else min(best_cost, cost)
                    target.append(NaiveSubPlan(relations=pair.union,
                                               unresolved=(), rows=rows,
                                               cost=cost,
                                               shape=(outer_plan.shape,
                                                      inner_plan.shape)))
                total = sum(len(plans) for plans in plan_lists.values())
                if (total > self.max_total_subplans
                        or time.perf_counter() - start > self.max_seconds):
                    budget_exceeded = True
                    break
            if budget_exceeded:
                break

        elapsed = time.perf_counter() - start
        total = sum(len(plans) for plans in plan_lists.values())
        return NaiveResult(planning_time_seconds=elapsed,
                           subplans_maintained=total,
                           join_pairs_considered=pairs,
                           combinations_evaluated=combinations,
                           completed=not budget_exceeded,
                           budget_exceeded=budget_exceeded)


def _flatten_shape(shape: Tuple) -> List:
    """Flatten a nested shape tuple into a list of leaves."""
    result: List = []
    stack = [shape]
    while stack:
        item = stack.pop()
        if isinstance(item, tuple):
            stack.extend(item)
        else:
            result.append(item)
    return result
