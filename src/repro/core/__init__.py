"""The paper's primary contribution: Bloom-filter-aware bottom-up optimization."""

from .bfcbo import BfCboReport, TwoPhaseBloomOptimizer
from .candidates import (
    BloomFilterCandidate,
    BloomFilterSpec,
    mark_bloom_filter_candidates,
)
from .cardinality import BloomEstimate, CardinalityEstimator
from .cost import Cost, CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from .enumerator import EnumerationSequenceCache, JoinEnumerator, JoinPair
from .explain import bloom_filter_summary, explain, join_order_summary
from .expressions import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    Between,
    Coalesce,
    ColumnRef,
    Comparison,
    ComparisonOp,
    ExtractYear,
    InList,
    IsNotNull,
    IsNull,
    Like,
    Literal,
    Not,
    NullIf,
    Or,
    Predicate,
    ScalarExpression,
    combine_null_masks,
    conjunction,
    conjuncts,
)
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .naive import NaiveBloomEnumerator, NaiveResult
from .optimizer import OptimizationResult, Optimizer, OptimizerMode
from .planlist import PlanList
from .plans import (
    AggregateNode,
    ExchangeKind,
    ExchangeNode,
    JoinMethod,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    count_bloom_filters,
    join_nodes,
    scan_nodes,
)
from .postprocess import BloomPostProcessor, PostProcessReport
from .properties import Distribution, DistributionKind, PlanProperties
from .query import (
    BaseRelation,
    JoinClause,
    JoinType,
    OrderItem,
    OutputItem,
    QueryBlock,
)

__all__ = [
    "AggregateCall", "AggregateFunction", "AggregateNode", "And", "Arithmetic",
    "ArithmeticOp", "BaseRelation", "Between", "BfCboReport", "BfCboSettings",
    "BloomEstimate", "BloomFilterCandidate", "BloomFilterSpec",
    "BloomPostProcessor", "CardinalityEstimator", "Coalesce", "ColumnRef",
    "Comparison", "ComparisonOp", "Cost", "CostModel", "CostParameters",
    "DEFAULT_COST_PARAMETERS", "Distribution", "DistributionKind",
    "EnumerationSequenceCache",
    "ExchangeKind", "ExchangeNode", "ExtractYear", "InList", "IsNotNull",
    "IsNull", "JoinClause",
    "JoinEnumerator", "JoinGraph", "JoinMethod", "JoinNode", "JoinPair",
    "JoinType", "Like", "LimitNode", "Literal", "NaiveBloomEnumerator",
    "NaiveResult", "Not", "NullIf", "OptimizationResult", "Optimizer",
    "OptimizerMode",
    "Or", "OrderItem", "OutputItem", "PlanList", "PlanNode", "PlanProperties",
    "PostProcessReport", "Predicate", "ProjectNode", "QueryBlock",
    "ScalarExpression", "ScanNode", "SortNode", "TwoPhaseBloomOptimizer",
    "bloom_filter_summary", "combine_null_masks", "conjunction", "conjuncts",
    "count_bloom_filters",
    "explain", "join_nodes", "join_order_summary",
    "mark_bloom_filter_candidates", "scan_nodes",
]
