"""Plan lists with property-aware pruning.

A relation (base or join relation) keeps the lowest cost sub-plan *per property
signature* — a higher-cost sub-plan survives only if it carries a property that
cheaper sub-plans lack.  On top of the per-signature minimum, a dominance check
removes sub-plans that are worse on every axis the paper cares about:

* a sub-plan requiring *more* δ relations (a superset of pending Bloom filters)
  is pruned unless it also promises *fewer* rows (Section 3.5);
* a sub-plan that is more expensive, produces at least as many rows, has the
  same distribution and needs a superset of pending Bloom filters is dominated.

Heuristic 7 (Section 3.10 / Table 3) is implemented here as an optional cap on
the number of Bloom filter sub-plans kept per relation.

The DP memo itself is a :class:`PlanTable`: plan lists keyed by the integer
bitmask of their relation set (see :class:`~repro.core.joingraph.JoinGraph`
for the alias↔bit mapping).  Frozenset-keyed dictionaries appear only at the
public seams via :meth:`PlanTable.to_alias_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .joingraph import JoinGraph
from .plans import PlanNode


@dataclass
class PlanList:
    """The set of retained sub-plans for one relation set.

    Plans are additionally bucketed by distribution signature: dominance can
    only hold between plans with the same distribution, so :meth:`add` scans
    one bucket instead of the whole list.
    """

    plans: List[PlanNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._buckets: Dict[Tuple, List[PlanNode]] = {}
        for plan in self.plans:
            self._buckets.setdefault(
                plan.properties.distribution.signature(), []).append(plan)

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self.plans)

    # -- pruning rules -----------------------------------------------------

    @staticmethod
    def _dominates(keeper: PlanNode, challenger: PlanNode) -> bool:
        """True if ``keeper`` makes ``challenger`` redundant."""
        if keeper.properties.distribution.signature() != \
                challenger.properties.distribution.signature():
            return False
        keeper_pending = keeper.properties.pending_blooms
        challenger_pending = challenger.properties.pending_blooms
        if not keeper_pending <= challenger_pending:
            # The keeper needs something the challenger doesn't; the challenger
            # may still be interesting.
            return False
        cheaper_or_equal = keeper.cost.total <= challenger.cost.total + 1e-9
        no_more_rows = keeper.rows <= challenger.rows + 1e-9
        if keeper_pending == challenger_pending:
            return cheaper_or_equal and no_more_rows
        # The challenger requires strictly more δ relations than the keeper:
        # it is only worth keeping if it promises strictly fewer rows
        # (Section 3.5's immediate pruning rule).
        return challenger.rows >= keeper.rows - 1e-9

    def add(self, plan: PlanNode) -> bool:
        """Try to add ``plan``; returns True if it was retained."""
        signature = plan.properties.distribution.signature()
        bucket = self._buckets.setdefault(signature, [])
        for existing in bucket:
            if self._dominates(existing, plan):
                return False
        dominated = [existing for existing in bucket
                     if self._dominates(plan, existing)]
        if dominated:
            dominated_ids = {id(existing) for existing in dominated}
            self.plans = [p for p in self.plans
                          if id(p) not in dominated_ids]
            bucket[:] = [p for p in bucket if id(p) not in dominated_ids]
        self.plans.append(plan)
        bucket.append(plan)
        return True

    def add_all(self, plans: Iterable[PlanNode]) -> int:
        """Add several plans; returns how many were retained."""
        return sum(1 for plan in plans if self.add(plan))

    # -- queries --------------------------------------------------------------

    def best(self) -> Optional[PlanNode]:
        """The cheapest sub-plan without pending Bloom filters, if any;
        otherwise the cheapest overall."""
        complete = [p for p in self.plans if not p.properties.has_pending_blooms]
        pool = complete or self.plans
        if not pool:
            return None
        return min(pool, key=lambda p: p.cost.total)

    def best_any(self) -> Optional[PlanNode]:
        """The cheapest sub-plan regardless of pending Bloom filters."""
        if not self.plans:
            return None
        return min(self.plans, key=lambda p: p.cost.total)

    def bloom_plans(self) -> List[PlanNode]:
        """Sub-plans that still carry pending Bloom filters."""
        return [p for p in self.plans if p.properties.has_pending_blooms]

    def non_bloom_plans(self) -> List[PlanNode]:
        """Sub-plans with no pending Bloom filters."""
        return [p for p in self.plans if not p.properties.has_pending_blooms]

    # -- Heuristic 7 ------------------------------------------------------------

    def apply_heuristic7(self, max_bloom_subplans: int) -> int:
        """Cap the number of Bloom filter sub-plans kept for this relation.

        If the relation has accumulated more than ``max_bloom_subplans``
        Bloom filter sub-plans, keep only the one with the fewest estimated
        rows (ties broken by total cost).  Returns the number of pruned plans.
        """
        bloom_plans = self.bloom_plans()
        if len(bloom_plans) <= max_bloom_subplans:
            return 0
        keeper = min(bloom_plans, key=lambda p: (p.rows, p.cost.total))
        pruned = [p for p in bloom_plans if p is not keeper]
        self.plans = self.non_bloom_plans() + [keeper]
        self.__post_init__()  # rebuild the signature buckets
        return len(pruned)


@dataclass
class PlanTable:
    """The bottom-up DP memo: one :class:`PlanList` per relation-set bitmask."""

    lists: Dict[int, PlanList] = field(default_factory=dict)

    def get(self, mask: int) -> Optional[PlanList]:
        """The plan list for ``mask``, or None if the set was never planned."""
        return self.lists.get(mask)

    def target(self, mask: int) -> PlanList:
        """The plan list for ``mask``, created empty on first use."""
        plan_list = self.lists.get(mask)
        if plan_list is None:
            plan_list = PlanList()
            self.lists[mask] = plan_list
        return plan_list

    def set(self, mask: int, plan_list: PlanList) -> None:
        """Install ``plan_list`` as the memo entry for ``mask``."""
        self.lists[mask] = plan_list

    def __len__(self) -> int:
        return len(self.lists)

    def __iter__(self) -> Iterator[int]:
        return iter(self.lists)

    def items(self) -> Iterable[Tuple[int, "PlanList"]]:
        return self.lists.items()

    def to_alias_dict(self, join_graph: JoinGraph) -> Dict:
        """Frozenset-keyed view for the public optimizer seams."""
        return {join_graph.aliases_of(mask): plan_list
                for mask, plan_list in self.lists.items()}

    @classmethod
    def from_alias_dict(cls, plan_lists: Dict,
                        join_graph: JoinGraph) -> "PlanTable":
        """Mask-keyed table from a frozenset-keyed dictionary."""
        return cls(lists={join_graph.mask_of(relations): plan_list
                          for relations, plan_list in plan_lists.items()})
