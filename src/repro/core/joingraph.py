"""Join graph utilities: bitmask connectivity, DPccp enumeration primitives,
equivalence classes and FK detection.

The bottom-up enumerator only combines relation sets that are connected by at
least one join clause (unless cross products are explicitly stitched in), and
the candidate-marking step of BF-CBO needs to reason about multi-way
equivalence classes (Section 3.3: "If we have a multi-way equivalence clause,
then we only consider building a Bloom filter from the smallest table").  This
module derives both from the bound :class:`~repro.core.query.QueryBlock`.

Relation sets are represented internally as **integer bitmasks** over a stable
alias↔bit mapping (bit ``i`` is the ``i``-th relation in FROM order).  All
connectivity questions are answered with word-level bit operations against
precomputed per-relation neighbor masks, and the connected-subgraph /
complement-pair walk at the heart of the enumerator is the DPccp algorithm of
Moerkotte & Neumann ("Analysis of Two Existing and One New Dynamic Programming
Algorithm for the Generation of Optimal Bushy Join Trees without Cross
Products", VLDB 2006): it emits exactly the connected subsets and connected
(csg, cmp) pairs, never scanning the exponentially many disconnected subsets.
``FrozenSet[str]`` conversions are provided (and memoized) for the public
seams; see ``docs/enumeration.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .expressions import ColumnRef
from .query import JoinClause, QueryBlock


@dataclass
class EquivalenceClass:
    """A set of columns known to be equal through equi-join clauses."""

    columns: Set[ColumnRef] = field(default_factory=set)

    @property
    def relations(self) -> FrozenSet[str]:
        """Relations participating in the equivalence class."""
        return frozenset(col.relation for col in self.columns)

    def __contains__(self, column: ColumnRef) -> bool:
        return column in self.columns

    def __len__(self) -> int:
        return len(self.columns)


class JoinGraph:
    """Adjacency and equivalence-class view of a query block's join clauses."""

    def __init__(self, query: QueryBlock) -> None:
        self.query = query
        #: Stable alias <-> bit mapping: bit ``i`` is ``aliases[i]`` (FROM order).
        self.aliases: Tuple[str, ...] = tuple(query.aliases)
        self.bit_of: Dict[str, int] = {alias: i
                                       for i, alias in enumerate(self.aliases)}
        self.num_relations = len(self.aliases)
        self.all_mask = (1 << self.num_relations) - 1

        self._adjacency: Dict[str, Set[str]] = {a: set() for a in query.aliases}
        #: neighbor_masks[i] = OR of the bits of every relation joined to bit i.
        self.neighbor_masks: List[int] = [0] * self.num_relations
        #: Per join clause (in clause order): the bit of its left / right relation.
        self.clause_bits: List[Tuple[int, int]] = []
        for clause in query.join_clauses:
            left, right = clause.left.relation, clause.right.relation
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)
            left_bit, right_bit = self.bit_of[left], self.bit_of[right]
            self.neighbor_masks[left_bit] |= 1 << right_bit
            self.neighbor_masks[right_bit] |= 1 << left_bit
            self.clause_bits.append((1 << left_bit, 1 << right_bit))

        self._alias_sets: Dict[int, FrozenSet[str]] = {}
        self._component_masks: Optional[List[int]] = None
        self._edge_signature: Optional[Tuple] = None
        self.equivalence_classes = self._build_equivalence_classes(query.join_clauses)

    @staticmethod
    def _build_equivalence_classes(clauses: Sequence[JoinClause]) -> List[EquivalenceClass]:
        """Union-find over equi-join columns (inner joins only)."""
        parent: Dict[ColumnRef, ColumnRef] = {}

        def find(col: ColumnRef) -> ColumnRef:
            parent.setdefault(col, col)
            while parent[col] != col:
                parent[col] = parent[parent[col]]
                col = parent[col]
            return col

        def union(a: ColumnRef, b: ColumnRef) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for clause in clauses:
            if clause.join_type.value == "inner":
                union(clause.left, clause.right)
        groups: Dict[ColumnRef, Set[ColumnRef]] = {}
        for col in parent:
            groups.setdefault(find(col), set()).add(col)
        return [EquivalenceClass(columns=cols) for cols in groups.values()
                if len(cols) >= 2]

    # -- mask <-> alias-set conversion ----------------------------------------

    def mask_of_alias(self, alias: str) -> int:
        """The single-bit mask of one relation alias."""
        return 1 << self.bit_of[alias]

    def mask_of(self, relations: Iterable[str]) -> int:
        """Bitmask of an alias collection."""
        mask = 0
        for alias in relations:
            mask |= 1 << self.bit_of[alias]
        return mask

    def aliases_of(self, mask: int) -> FrozenSet[str]:
        """Frozen alias set for ``mask`` (memoized: masks recur constantly)."""
        cached = self._alias_sets.get(mask)
        if cached is None:
            cached = frozenset(self.aliases[i]
                               for i in self._bit_indices(mask))
            self._alias_sets[mask] = cached
        return cached

    @staticmethod
    def _bit_indices(mask: int) -> Iterator[int]:
        """Indices of the set bits of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    # -- shape signature --------------------------------------------------------

    def edge_signature(self) -> Tuple:
        """Hashable key identifying the *shape* of the DPccp walk.

        Two join graphs with equal signatures produce the identical canonical
        (union, outer, inner) mask-triple sequence, regardless of their
        predicates, table names or statistics.  The signature therefore keys
        the cross-query enumeration-sequence cache.  It captures everything
        the walk depends on:

        * the relation count (the bit universe),
        * the undirected edge set over bit indices (adjacency drives the
          csg/cmp generators, component discovery and cross-product
          stitching),
        * the alphabetical rank permutation of the aliases — the per-union
          split ranking sorts a union's members alphabetically, so two
          same-shape queries only share a sequence when their aliases sort
          into the same bit order.
        """
        if self._edge_signature is None:
            edges = set()
            for bit, mask in enumerate(self.neighbor_masks):
                for other in self._bit_indices(mask):
                    if other > bit:
                        edges.add((bit, other))
            alpha_rank = tuple(sorted(range(self.num_relations),
                                      key=self.aliases.__getitem__))
            self._edge_signature = (self.num_relations,
                                    tuple(sorted(edges)), alpha_rank)
        return self._edge_signature

    # -- connectivity (bitmask core) ------------------------------------------

    def neighbor_mask(self, mask: int) -> int:
        """All relations adjacent to ``mask``, excluding ``mask`` itself."""
        result = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            result |= self.neighbor_masks[low.bit_length() - 1]
            remaining ^= low
        return result & ~mask

    def is_connected_mask(self, mask: int) -> bool:
        """True if the induced subgraph on ``mask`` is connected."""
        if mask == 0:
            return False
        reached = mask & -mask
        frontier = reached
        while frontier:
            grown = 0
            while frontier:
                low = frontier & -frontier
                grown |= self.neighbor_masks[low.bit_length() - 1]
                frontier ^= low
            frontier = grown & mask & ~reached
            reached |= frontier
        return reached == mask

    def component_masks(self) -> List[int]:
        """Connected components as masks, ordered by their lowest bit."""
        if self._component_masks is None:
            components: List[int] = []
            remaining = self.all_mask
            while remaining:
                seed = remaining & -remaining
                component = seed
                frontier = seed
                while frontier:
                    grown = 0
                    while frontier:
                        low = frontier & -frontier
                        grown |= self.neighbor_masks[low.bit_length() - 1]
                        frontier ^= low
                    frontier = grown & remaining & ~component
                    component |= frontier
                components.append(component)
                remaining &= ~component
            self._component_masks = components
        return list(self._component_masks)

    # -- DPccp: connected subgraph / complement enumeration --------------------

    def connected_subset_masks(self, component: Optional[int] = None) -> Iterator[int]:
        """Every connected subset of ``component``, exactly once (EnumerateCsg).

        Starts one expansion per vertex, forbidding lower-numbered vertices, so
        each connected set is produced from its minimum vertex only.  Emission
        order is an implementation detail — callers needing a particular order
        must sort.
        """
        comp = self.all_mask if component is None else component
        forbidden_outside = self.all_mask ^ comp
        for i in reversed(list(self._bit_indices(comp))):
            seed = 1 << i
            yield seed
            prohibited = ((seed << 1) - 1) | forbidden_outside
            yield from self._enumerate_csg_rec(seed, prohibited)

    def _enumerate_csg_rec(self, subgraph: int, prohibited: int) -> Iterator[int]:
        """Connected supersets of ``subgraph`` grown through its neighborhood."""
        neighborhood = self.neighbor_mask(subgraph) & ~prohibited
        if not neighborhood:
            return
        extension = neighborhood
        extensions = []
        while extension:
            extensions.append(extension)
            extension = (extension - 1) & neighborhood
        for extension in extensions:
            yield subgraph | extension
        for extension in extensions:
            yield from self._enumerate_csg_rec(subgraph | extension,
                                               prohibited | neighborhood)

    def csg_cmp_pairs(self, component: Optional[int] = None,
                      ) -> Iterator[Tuple[int, int]]:
        """Every connected (csg, cmp) pair of ``component``, once per unordered pair.

        Both halves are connected, disjoint, and joined by at least one edge;
        the complement always carries a higher minimum vertex than the csg
        (DPccp's dedup invariant).  Callers wanting both join orientations emit
        the swapped pair themselves.
        """
        comp = self.all_mask if component is None else component
        forbidden_outside = self.all_mask ^ comp
        for csg in self.connected_subset_masks(comp):
            min_bit = csg & -csg
            prohibited = ((min_bit << 1) - 1) | csg | forbidden_outside
            neighborhood = self.neighbor_mask(csg) & ~prohibited
            for i in reversed(list(self._bit_indices(neighborhood))):
                seed = 1 << i
                yield csg, seed
                seeded_prohibited = (prohibited
                                     | (neighborhood & ((seed << 1) - 1)))
                for cmp_mask in self._enumerate_csg_rec(seed, seeded_prohibited):
                    yield csg, cmp_mask

    # -- connectivity (frozenset seams) ---------------------------------------

    def neighbours(self, alias: str) -> Set[str]:
        """Relations directly joined to ``alias``."""
        return set(self._adjacency.get(alias, set()))

    def are_connected(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        """True if some join clause connects the two disjoint relation sets."""
        return any(clause.connects(left, right)
                   for clause in self.query.join_clauses)

    def is_connected_set(self, relations: FrozenSet[str]) -> bool:
        """True if the induced subgraph on ``relations`` is connected."""
        if not relations:
            return False
        return self.is_connected_mask(self.mask_of(relations))

    def connected_components(self) -> List[FrozenSet[str]]:
        """Connected components of the whole join graph."""
        return [self.aliases_of(mask) for mask in self.component_masks()]

    # -- equivalence-class helpers ---------------------------------------------

    def equivalence_class_of(self, column: ColumnRef) -> EquivalenceClass:
        """Equivalence class containing ``column`` (singleton if none)."""
        for eq_class in self.equivalence_classes:
            if column in eq_class:
                return eq_class
        return EquivalenceClass(columns={column})

    def equivalent_columns(self, column: ColumnRef) -> Set[ColumnRef]:
        """All columns transitively equal to ``column`` (including itself)."""
        return set(self.equivalence_class_of(column).columns)
