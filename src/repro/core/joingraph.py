"""Join graph utilities: connectivity, equivalence classes, FK detection.

The bottom-up enumerator only combines relation sets that are connected by at
least one join clause (unless cross products are explicitly allowed), and the
candidate-marking step of BF-CBO needs to reason about multi-way equivalence
classes (Section 3.3: "If we have a multi-way equivalence clause, then we only
consider building a Bloom filter from the smallest table").  This module
derives both from the bound :class:`~repro.core.query.QueryBlock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .expressions import ColumnRef
from .query import JoinClause, QueryBlock


@dataclass
class EquivalenceClass:
    """A set of columns known to be equal through equi-join clauses."""

    columns: Set[ColumnRef] = field(default_factory=set)

    @property
    def relations(self) -> FrozenSet[str]:
        """Relations participating in the equivalence class."""
        return frozenset(col.relation for col in self.columns)

    def __contains__(self, column: ColumnRef) -> bool:
        return column in self.columns

    def __len__(self) -> int:
        return len(self.columns)


class JoinGraph:
    """Adjacency and equivalence-class view of a query block's join clauses."""

    def __init__(self, query: QueryBlock) -> None:
        self.query = query
        self._adjacency: Dict[str, Set[str]] = {a: set() for a in query.aliases}
        for clause in query.join_clauses:
            left, right = clause.left.relation, clause.right.relation
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)
        self.equivalence_classes = self._build_equivalence_classes(query.join_clauses)

    @staticmethod
    def _build_equivalence_classes(clauses: Sequence[JoinClause]) -> List[EquivalenceClass]:
        """Union-find over equi-join columns (inner joins only)."""
        parent: Dict[ColumnRef, ColumnRef] = {}

        def find(col: ColumnRef) -> ColumnRef:
            parent.setdefault(col, col)
            while parent[col] != col:
                parent[col] = parent[parent[col]]
                col = parent[col]
            return col

        def union(a: ColumnRef, b: ColumnRef) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for clause in clauses:
            if clause.join_type.value == "inner":
                union(clause.left, clause.right)
        groups: Dict[ColumnRef, Set[ColumnRef]] = {}
        for col in parent:
            groups.setdefault(find(col), set()).add(col)
        return [EquivalenceClass(columns=cols) for cols in groups.values()
                if len(cols) >= 2]

    # -- connectivity ---------------------------------------------------------

    def neighbours(self, alias: str) -> Set[str]:
        """Relations directly joined to ``alias``."""
        return set(self._adjacency.get(alias, set()))

    def are_connected(self, left: FrozenSet[str], right: FrozenSet[str]) -> bool:
        """True if some join clause connects the two disjoint relation sets."""
        return any(clause.connects(left, right)
                   for clause in self.query.join_clauses)

    def is_connected_set(self, relations: FrozenSet[str]) -> bool:
        """True if the induced subgraph on ``relations`` is connected."""
        if not relations:
            return False
        relations = frozenset(relations)
        if len(relations) == 1:
            return True
        seen = {next(iter(relations))}
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for neighbour in self._adjacency.get(current, ()):
                if neighbour in relations and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == set(relations)

    def connected_components(self) -> List[FrozenSet[str]]:
        """Connected components of the whole join graph."""
        remaining = set(self.query.aliases)
        components: List[FrozenSet[str]] = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbour in self._adjacency.get(current, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            remaining -= seen
            components.append(frozenset(seen))
        return components

    # -- equivalence-class helpers ---------------------------------------------

    def equivalence_class_of(self, column: ColumnRef) -> EquivalenceClass:
        """Equivalence class containing ``column`` (singleton if none)."""
        for eq_class in self.equivalence_classes:
            if column in eq_class:
                return eq_class
        return EquivalenceClass(columns={column})

    def equivalent_columns(self, column: ColumnRef) -> Set[ColumnRef]:
        """All columns transitively equal to ``column`` (including itself)."""
        return set(self.equivalence_class_of(column).columns)
