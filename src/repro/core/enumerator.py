"""Bottom-up join enumeration (the DP at the heart of a System-R optimizer).

The enumerator builds, for every connected relation subset, a
:class:`~repro.core.planlist.PlanList` of retained sub-plans, by combining the
plan lists of every connected (outer, inner) split of that subset.  It is used
in three ways:

* plain cost-based optimization (no Bloom filter sub-plans in the base plan
  lists) — the "No BF" and "BF-Post" baselines;
* the *second* bottom-up phase of BF-CBO, where base plan lists additionally
  contain Bloom filter scan sub-plans and joins must respect the δ constraints
  of Section 3.6 (including the Figure 3 exception);
* structurally (``enumerate_join_pairs``) for the *first* bottom-up phase of
  BF-CBO, which only needs to observe which relation sets can appear on the
  build side of a join with each Bloom filter candidate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..storage.catalog import Catalog
from .candidates import BloomFilterSpec
from .cardinality import CardinalityEstimator
from .cost import Cost, CostModel
from .expressions import ColumnRef
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .planlist import PlanList
from .plans import (
    ExchangeKind,
    ExchangeNode,
    JoinMethod,
    JoinNode,
    PlanNode,
    ScanNode,
)
from .properties import Distribution, DistributionKind, PlanProperties
from .query import JoinClause, JoinType, QueryBlock


@dataclass(frozen=True)
class JoinPair:
    """One ordered (outer, inner) split of a relation set considered by DP."""

    union: FrozenSet[str]
    outer: FrozenSet[str]
    inner: FrozenSet[str]
    clauses: Tuple[JoinClause, ...]
    is_cross_product: bool = False


@dataclass
class EnumerationStatistics:
    """Counters describing the work done by one enumeration run."""

    join_pairs_considered: int = 0
    subplan_combinations: int = 0
    plans_retained: int = 0
    plans_rejected_bloom_constraint: int = 0
    heuristic7_pruned: int = 0


class JoinEnumerator:
    """Bottom-up, bushy, property-aware join enumeration."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 estimator: CardinalityEstimator, cost_model: CostModel,
                 settings: Optional[BfCboSettings] = None,
                 join_graph: Optional[JoinGraph] = None) -> None:
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings or BfCboSettings.disabled()
        self.join_graph = join_graph or JoinGraph(query)
        self.stats = EnumerationStatistics()
        self._row_widths: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Relation-set enumeration (shared by both BF-CBO phases)
    # ------------------------------------------------------------------

    def connected_subsets(self) -> List[FrozenSet[str]]:
        """All connected relation subsets, ordered by increasing size."""
        aliases = self.query.aliases
        subsets: List[FrozenSet[str]] = []
        for size in range(1, len(aliases) + 1):
            for combo in itertools.combinations(aliases, size):
                subset = frozenset(combo)
                if self.join_graph.is_connected_set(subset) or size == len(aliases):
                    subsets.append(subset)
        return subsets

    def enumerate_join_pairs(self) -> Iterator[JoinPair]:
        """Yield every ordered (outer, inner) split, bottom-up by union size.

        The first bottom-up phase of BF-CBO iterates exactly this sequence to
        populate Δ; the second phase iterates it again to build costed plans,
        so both phases observe the same join combinations.
        """
        aliases = self.query.aliases
        all_relations = frozenset(aliases)
        for size in range(2, len(aliases) + 1):
            for combo in itertools.combinations(aliases, size):
                union = frozenset(combo)
                if not (self.join_graph.is_connected_set(union)
                        or union == all_relations):
                    continue
                yield from self._splits_of(union)

    def _splits_of(self, union: FrozenSet[str]) -> Iterator[JoinPair]:
        members = sorted(union)
        connected_pairs: List[JoinPair] = []
        cross_pairs: List[JoinPair] = []
        # Enumerate proper, non-empty subsets via bitmask over the members.
        for mask in range(1, (1 << len(members)) - 1):
            outer = frozenset(members[i] for i in range(len(members))
                              if mask & (1 << i))
            inner = union - outer
            if not (self.join_graph.is_connected_set(outer)
                    and self.join_graph.is_connected_set(inner)):
                continue
            clauses = tuple(self.query.clauses_between(outer, inner))
            pair = JoinPair(union=union, outer=outer, inner=inner,
                            clauses=clauses, is_cross_product=not clauses)
            if clauses:
                connected_pairs.append(pair)
            else:
                cross_pairs.append(pair)
        # Cross products are only considered when the union cannot be formed
        # through join clauses at all (disconnected query graphs).
        if connected_pairs:
            yield from connected_pairs
        else:
            yield from cross_pairs

    # ------------------------------------------------------------------
    # Base relation plan lists
    # ------------------------------------------------------------------

    def row_width(self, alias: str) -> int:
        """Approximate output row width for a base relation."""
        if alias not in self._row_widths:
            schema = self.catalog.schema(self.query.table_name(alias))
            self._row_widths[alias] = max(8, schema.row_width_bytes)
        return self._row_widths[alias]

    def make_seq_scan(self, alias: str) -> ScanNode:
        """Build and cost a plain sequential scan sub-plan for ``alias``."""
        predicates = tuple(self.query.predicates_for(alias))
        base_rows = self.estimator.base_rows(alias)
        rows = self.estimator.scan_rows(alias)
        width = self.row_width(alias)
        cost = self.cost_model.seq_scan(base_rows, width, len(predicates))
        return ScanNode(alias=alias, table_name=self.query.table_name(alias),
                        predicates=predicates, bloom_filters=(),
                        pre_bloom_rows=rows, rows=rows, cost=cost,
                        properties=PlanProperties(), row_width=width)

    def make_bloom_scan(self, alias: str,
                        specs: Sequence[BloomFilterSpec]) -> ScanNode:
        """Build and cost a Bloom filter scan sub-plan for ``alias``.

        The Bloom filters are applied on top of the plain scan: the scan still
        reads every base row and evaluates local predicates, then probes each
        Bloom filter for every surviving row (the paper's ``k * input rows``
        extra cost), producing the reduced, semi-join-sized output.
        """
        plain = self.make_seq_scan(alias)
        specs = tuple(specs)
        rows = self.estimator.bloom_scan_rows(alias,
                                              [s.estimate for s in specs])
        extra = self.cost_model.bloom_apply(plain.pre_bloom_rows, len(specs))
        properties = PlanProperties(distribution=plain.properties.distribution,
                                    pending_blooms=frozenset(specs))
        return ScanNode(alias=alias, table_name=plain.table_name,
                        predicates=plain.predicates, bloom_filters=specs,
                        pre_bloom_rows=plain.pre_bloom_rows, rows=rows,
                        cost=plain.cost + extra, properties=properties,
                        row_width=plain.row_width)

    def build_base_plan_lists(self) -> Dict[FrozenSet[str], PlanList]:
        """Plan lists for single relations (plain scans only)."""
        plan_lists: Dict[FrozenSet[str], PlanList] = {}
        for alias in self.query.aliases:
            plan_list = PlanList()
            plan_list.add(self.make_seq_scan(alias))
            plan_lists[frozenset({alias})] = plan_list
        return plan_lists

    # ------------------------------------------------------------------
    # The DP itself
    # ------------------------------------------------------------------

    def optimize(self, base_plan_lists: Optional[Dict[FrozenSet[str], PlanList]] = None,
                 ) -> Dict[FrozenSet[str], PlanList]:
        """Run bottom-up DP and return the plan list for every relation set."""
        plan_lists = dict(base_plan_lists or self.build_base_plan_lists())
        for pair in self.enumerate_join_pairs():
            self.stats.join_pairs_considered += 1
            outer_list = plan_lists.get(pair.outer)
            inner_list = plan_lists.get(pair.inner)
            if not outer_list or not inner_list:
                continue
            target = plan_lists.setdefault(pair.union, PlanList())
            for outer_plan in list(outer_list):
                for inner_plan in list(inner_list):
                    self.stats.subplan_combinations += 1
                    for join_plan in self.combine(pair, outer_plan, inner_plan):
                        if target.add(join_plan):
                            self.stats.plans_retained += 1
            if self.settings.use_heuristic7:
                self.stats.heuristic7_pruned += target.apply_heuristic7(
                    self.settings.heuristic7_max_subplans)
        return plan_lists

    # ------------------------------------------------------------------
    # Combining two sub-plans into join plans
    # ------------------------------------------------------------------

    def combine(self, pair: JoinPair, outer_plan: PlanNode,
                inner_plan: PlanNode) -> List[PlanNode]:
        """All legal, costed join plans for one (outer, inner) sub-plan pair."""
        join_type = self._join_type_for(pair)
        if join_type is None:
            return []
        legal, resolved, pending = self._check_bloom_constraints(
            outer_plan, inner_plan)
        if not legal:
            self.stats.plans_rejected_bloom_constraint += 1
            return []
        if resolved and not self._resolution_allowed(resolved):
            self.stats.plans_rejected_bloom_constraint += 1
            return []
        must_use_hash = bool(resolved) or self._hash_required(outer_plan,
                                                              inner_plan)
        methods: List[JoinMethod] = [JoinMethod.HASH]
        if not must_use_hash and pair.clauses:
            methods.extend([JoinMethod.MERGE, JoinMethod.NESTED_LOOP])
        if not pair.clauses:
            methods = [JoinMethod.NESTED_LOOP]
        if not pair.clauses and must_use_hash:
            return []

        rows = self._join_output_rows(pair, pending)
        residuals = self._new_residuals(pair)
        plans: List[PlanNode] = []
        for method in methods:
            for plan in self._physical_variants(pair, method, join_type,
                                                 outer_plan, inner_plan, rows,
                                                 resolved, pending, residuals):
                plans.append(plan)
        return plans

    # -- join-type / legality helpers -----------------------------------------

    def _join_type_for(self, pair: JoinPair) -> Optional[JoinType]:
        """Join type of the pair; None if this orientation is illegal.

        For outer/semi/anti joins the row-preserving (left in SQL order) side
        must be on the probe/outer side of our physical join.
        """
        join_type = JoinType.INNER
        for clause in pair.clauses:
            if clause.join_type is JoinType.INNER:
                continue
            join_type = clause.join_type
            preserved = clause.left.relation
            if preserved not in pair.outer:
                return None
        return join_type

    def _hash_required(self, outer_plan: PlanNode, inner_plan: PlanNode) -> bool:
        """Hash join is forced whenever any pending Bloom filter's δ overlaps
        the other side (Section 3.6, second constraint)."""
        for spec in outer_plan.pending_blooms:
            if spec.delta & inner_plan.relations:
                return True
        return False

    def _check_bloom_constraints(self, outer_plan: PlanNode,
                                 inner_plan: PlanNode,
                                 ) -> Tuple[bool, List[BloomFilterSpec],
                                            FrozenSet[BloomFilterSpec]]:
        """Apply the δ-consistency rules of Section 3.6.

        Returns ``(legal, resolved_specs, pending_specs)`` where
        ``resolved_specs`` are the outer-side Bloom filters that this join will
        build (fully or through the Figure-3 exception) and ``pending_specs``
        is the property set of the joined sub-plan.
        """
        inner_relations = inner_plan.relations
        inner_pending = inner_plan.pending_blooms
        inner_delta_union: Set[str] = set()
        for spec in inner_pending:
            inner_delta_union |= spec.delta

        resolved: List[BloomFilterSpec] = []
        carried: List[BloomFilterSpec] = []
        for spec in outer_plan.pending_blooms:
            if spec.delta <= inner_relations:
                # Fully resolved: every required build relation is on the
                # inner side of this (necessarily hash) join.
                resolved.append(spec)
            elif spec.delta & inner_relations:
                # Partially provided: only legal through the Figure 3(c)
                # exception — the inner side is itself a Bloom filter sub-plan
                # whose pending δ's cover the outstanding relations.
                outstanding = spec.delta - inner_relations
                if outstanding <= inner_delta_union:
                    resolved.append(spec)
                else:
                    return False, [], frozenset()
            else:
                carried.append(spec)
        pending = frozenset(carried) | inner_pending
        return True, resolved, pending

    def _resolution_allowed(self, resolved: Sequence[BloomFilterSpec]) -> bool:
        """Heuristic 5 re-check at resolution time: the filter must still fit."""
        if not self.settings.enabled:
            return True
        return all(spec.estimate.build_ndv <= self.settings.max_build_ndv
                   for spec in resolved)

    # -- cardinality ----------------------------------------------------------

    def _join_output_rows(self, pair: JoinPair,
                          pending: FrozenSet[BloomFilterSpec]) -> float:
        """Estimated output rows of the joined relation.

        Resolved Bloom filters contribute nothing here — once the build side is
        joined, the filter only removes rows the join would have removed anyway
        (Section 3.6: "the cardinality estimate simply becomes the original
        cardinality estimate for the joined relation").  Unresolved filters
        keep reducing the estimate by their effective selectivity.
        """
        rows = self.estimator.join_rows(pair.union)
        for spec in pending:
            rows *= spec.estimate.effective_selectivity
        return max(1.0, rows)

    def _new_residuals(self, pair: JoinPair) -> Tuple:
        """Residual predicates that become applicable exactly at this join."""
        now = set(self.query.residuals_applicable(pair.union))
        before = set(self.query.residuals_applicable(pair.outer))
        before |= set(self.query.residuals_applicable(pair.inner))
        return tuple(p for p in self.query.residual_predicates
                     if p in now and p not in before)

    # -- physical variants (join method x distribution strategy) ----------------

    def _physical_variants(self, pair: JoinPair, method: JoinMethod,
                           join_type: JoinType, outer_plan: PlanNode,
                           inner_plan: PlanNode, rows: float,
                           resolved: Sequence[BloomFilterSpec],
                           pending: FrozenSet[BloomFilterSpec],
                           residuals: Tuple) -> Iterator[PlanNode]:
        width = outer_plan.row_width + inner_plan.row_width
        outer_cols, inner_cols = self._join_columns(pair)
        strategies = self._distribution_strategies(method, outer_plan,
                                                   inner_plan, outer_cols,
                                                   inner_cols)
        for outer_input, inner_input, distribution in strategies:
            cost = outer_input.cost + inner_input.cost
            cost = cost + self._join_work(method, outer_input, inner_input,
                                          rows, len(pair.clauses))
            if resolved:
                cost = cost + self.cost_model.bloom_build(inner_input.rows,
                                                          len(resolved))
            if residuals:
                cost = cost + self.cost_model.project(rows, len(residuals))
            properties = PlanProperties(distribution=distribution,
                                        pending_blooms=pending)
            yield JoinNode(method=method, join_type=join_type,
                           outer=outer_input, inner=inner_input,
                           clauses=pair.clauses,
                           built_filters=tuple(resolved),
                           residual_predicates=residuals,
                           rows=rows, cost=cost, properties=properties,
                           row_width=width)

    def _join_columns(self, pair: JoinPair) -> Tuple[Tuple[ColumnRef, ...],
                                                     Tuple[ColumnRef, ...]]:
        outer_cols: List[ColumnRef] = []
        inner_cols: List[ColumnRef] = []
        for clause in pair.clauses:
            if clause.left.relation in pair.outer:
                outer_cols.append(clause.left)
                inner_cols.append(clause.right)
            else:
                outer_cols.append(clause.right)
                inner_cols.append(clause.left)
        return tuple(outer_cols), tuple(inner_cols)

    def _distribution_strategies(self, method: JoinMethod, outer_plan: PlanNode,
                                 inner_plan: PlanNode,
                                 outer_cols: Tuple[ColumnRef, ...],
                                 inner_cols: Tuple[ColumnRef, ...],
                                 ) -> List[Tuple[PlanNode, PlanNode, Distribution]]:
        """Streaming strategies: broadcast the build side, or shuffle both."""
        strategies: List[Tuple[PlanNode, PlanNode, Distribution]] = []
        # Strategy 1: broadcast the inner (build) side.
        broadcast_inner = self._exchange(inner_plan, ExchangeKind.BROADCAST, ())
        strategies.append((outer_plan, broadcast_inner,
                           outer_plan.properties.distribution))
        # Strategy 2: hash-redistribute both sides on the join columns (only
        # meaningful when there are join columns, i.e. not a cross product).
        if outer_cols and method is not JoinMethod.NESTED_LOOP:
            outer_shuffled = outer_plan
            if not outer_plan.properties.distribution.is_hashed_on(outer_cols):
                outer_shuffled = self._exchange(outer_plan,
                                                ExchangeKind.REDISTRIBUTE,
                                                outer_cols)
            inner_shuffled = inner_plan
            if not inner_plan.properties.distribution.is_hashed_on(inner_cols):
                inner_shuffled = self._exchange(inner_plan,
                                                ExchangeKind.REDISTRIBUTE,
                                                inner_cols)
            strategies.append((outer_shuffled, inner_shuffled,
                               Distribution.hashed(outer_cols)))
        return strategies

    def _exchange(self, child: PlanNode, kind: ExchangeKind,
                  keys: Tuple[ColumnRef, ...]) -> ExchangeNode:
        """Wrap ``child`` in an exchange operator and cost the data movement."""
        if kind is ExchangeKind.BROADCAST:
            move = self.cost_model.broadcast(child.rows, child.row_width)
            distribution = Distribution.broadcast()
        elif kind is ExchangeKind.REDISTRIBUTE:
            move = self.cost_model.redistribute(child.rows, child.row_width)
            distribution = Distribution.hashed(keys)
        else:
            move = self.cost_model.gather(child.rows, child.row_width)
            distribution = Distribution.singleton()
        properties = PlanProperties(distribution=distribution,
                                    pending_blooms=child.pending_blooms)
        return ExchangeNode(kind=kind, child=child, hash_keys=keys,
                            rows=child.rows, cost=child.cost + move,
                            properties=properties, row_width=child.row_width)

    def _join_work(self, method: JoinMethod, outer_input: PlanNode,
                   inner_input: PlanNode, output_rows: float,
                   num_clauses: int) -> Cost:
        """Cost of the join operator itself (inputs already costed)."""
        dop = self.cost_model.params.degree_of_parallelism
        build_rows = inner_input.rows
        # A broadcast build side is materialised (and hashed) once per worker.
        if inner_input.properties.distribution.kind is DistributionKind.BROADCAST:
            build_rows = inner_input.rows * dop
        if method is JoinMethod.HASH:
            return self.cost_model.hash_join(build_rows, outer_input.rows,
                                             output_rows, num_clauses)
        if method is JoinMethod.MERGE:
            return self.cost_model.merge_join(outer_input.rows,
                                              inner_input.rows, output_rows)
        inner_rescan = inner_input.rows * self.cost_model.params.cpu_tuple_cost
        return self.cost_model.nested_loop(outer_input.rows, inner_input.rows,
                                           output_rows, inner_rescan)
