"""Bottom-up join enumeration (the DP at the heart of a System-R optimizer).

The enumerator builds, for every connected relation subset, a
:class:`~repro.core.planlist.PlanList` of retained sub-plans, by combining the
plan lists of every connected (outer, inner) split of that subset.  It is used
in three ways:

* plain cost-based optimization (no Bloom filter sub-plans in the base plan
  lists) — the "No BF" and "BF-Post" baselines;
* the *second* bottom-up phase of BF-CBO, where base plan lists additionally
  contain Bloom filter scan sub-plans and joins must respect the δ constraints
  of Section 3.6 (including the Figure 3 exception);
* structurally (``enumerate_join_pairs``) for the *first* bottom-up phase of
  BF-CBO, which only needs to observe which relation sets can appear on the
  build side of a join with each Bloom filter candidate.

Relation sets travel through the DP as integer bitmasks (see
:class:`~repro.core.joingraph.JoinGraph` for the alias↔bit mapping and the
DPccp connected-subgraph/complement generators).  The (csg, cmp) pairs are
collected per component, cross-product stitching joins disconnected components
in FROM order, and the whole sequence is sorted into the canonical bottom-up
order — union size, then FROM-order bit tuple, then split rank — so both
BF-CBO phases observe the identical pair sequence.  ``FrozenSet[str]`` appears
only at the public seams (:class:`JoinPair` fields, plan-list dict keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..cache import LruCache
from ..storage.catalog import Catalog
from .candidates import BloomFilterSpec
from .cardinality import CardinalityEstimator
from .cost import Cost, CostModel, CostParameters
from .expressions import ColumnRef
from .greedy import greedy_unordered_pairs
from .heuristics import BfCboSettings
from .joingraph import JoinGraph
from .planlist import PlanList, PlanTable
from .plans import (
    ExchangeKind,
    ExchangeNode,
    JoinMethod,
    JoinNode,
    PlanNode,
    ScanNode,
)
from .properties import Distribution, DistributionKind, PlanProperties
from .query import JoinClause, JoinType, QueryBlock


@dataclass(frozen=True)
class JoinPair:
    """One ordered (outer, inner) split of a relation set considered by DP.

    The frozenset fields are the public seam; the ``*_mask`` fields carry the
    same sets as bitmasks for mask-keyed consumers (0 when constructed
    directly without a graph, e.g. in experiments).
    """

    union: FrozenSet[str]
    outer: FrozenSet[str]
    inner: FrozenSet[str]
    clauses: Tuple[JoinClause, ...]
    is_cross_product: bool = False
    union_mask: int = 0
    outer_mask: int = 0
    inner_mask: int = 0


@dataclass
class EnumerationStatistics:
    """Counters describing the work done by one enumeration run."""

    join_pairs_considered: int = 0
    subplan_combinations: int = 0
    plans_retained: int = 0
    plans_rejected_bloom_constraint: int = 0
    heuristic7_pruned: int = 0
    #: Ordered cross-product pairs considered while stitching disconnected
    #: components — like join_pairs_considered, this counts both orientations
    #: of each stitch step, so a query with k+1 components reports 2k.
    cross_products_stitched: int = 0
    #: Adaptive-planning telemetry (docs/enumeration.md): did the exact DPccp
    #: walk hit its pair budget, did the greedy fallback supply the pair
    #: sequence (and why: "budget" or "relations"), how many merge steps the
    #: greedy join tree has, and how many shard *tasks* the sharded DP ran
    #: (one task per worker per size class; 0 means the serial loop ran).
    budget_exhausted: bool = False
    fallback_engaged: bool = False
    fallback_reason: str = ""
    greedy_merge_steps: int = 0
    parallel_shards: int = 0

    def merge(self, other: "EnumerationStatistics") -> None:
        """Fold a shard worker's counters into this run's totals."""
        self.join_pairs_considered += other.join_pairs_considered
        self.subplan_combinations += other.subplan_combinations
        self.plans_retained += other.plans_retained
        self.plans_rejected_bloom_constraint += \
            other.plans_rejected_bloom_constraint
        self.heuristic7_pruned += other.heuristic7_pruned
        self.cross_products_stitched += other.cross_products_stitched
        self.budget_exhausted = self.budget_exhausted or other.budget_exhausted
        self.fallback_engaged = self.fallback_engaged or other.fallback_engaged
        self.fallback_reason = self.fallback_reason or other.fallback_reason
        self.greedy_merge_steps += other.greedy_merge_steps
        self.parallel_shards += other.parallel_shards


class EnumerationSequenceCache(LruCache):
    """Cross-query cache of canonical DPccp mask-triple sequences.

    The (union, outer, inner) triple sequence of the bottom-up walk is a pure
    function of the join graph's *shape*
    (:meth:`~repro.core.joingraph.JoinGraph.edge_signature`), not of its
    predicates or statistics.  Repeated workloads — the same query template
    with different constants, or different queries over the same join
    topology — therefore share one sequence: the first query pays for the
    DPccp walk, every later same-shape query skips it entirely.

    Keys are edge signatures; values are ``(sequence, emitted)`` pairs — the
    tuple of (union, outer, inner) mask triples plus the number of unordered
    pairs the walk emitted, so a consumer with a tighter
    ``enumeration_budget`` can reject a cached over-budget sequence instead
    of inheriting another session's unbounded DP.  A budget-aborted walk
    stores ``(None, emitted)``: the shape-pure fact "this shape emits more
    than ``emitted`` pairs", letting every later same-shape query under a
    budget ``<= emitted`` skip straight to the greedy fallback instead of
    re-paying the aborted walk.  Storage, LRU eviction, locking and the
    hit/miss counters feeding ``Database.cache_stats()`` come from
    :class:`repro.cache.LruCache`.
    """


class JoinEnumerator:
    """Bottom-up, bushy, property-aware join enumeration."""

    def __init__(self, catalog: Catalog, query: QueryBlock,
                 estimator: CardinalityEstimator, cost_model: CostModel,
                 settings: Optional[BfCboSettings] = None,
                 join_graph: Optional[JoinGraph] = None,
                 sequence_cache: Optional[EnumerationSequenceCache] = None) -> None:
        self.catalog = catalog
        self.query = query
        self.estimator = estimator
        self.cost_model = cost_model
        self.settings = settings or BfCboSettings.disabled()
        self.join_graph = join_graph or JoinGraph(query)
        self.stats = EnumerationStatistics()
        self._sequence_cache = sequence_cache
        self._row_widths: Dict[str, int] = {}
        self._pair_masks_cache: Optional[Sequence[Tuple[int, int, int]]] = None
        self._pair_cache: Optional[List[JoinPair]] = None
        # (id(child), kind, keys) -> ExchangeNode.  Exchange placement is a
        # pure function of its inputs and plan nodes are immutable during
        # planning, so identical exchanges are shared instead of rebuilt for
        # every combination; the node value keeps its child alive, which keeps
        # the id() key stable.
        self._exchange_cache: Dict[Tuple[int, ExchangeKind, Tuple[ColumnRef, ...]],
                                   ExchangeNode] = {}
        # Single-slot per-pair memos, keyed by pair identity (one JoinPair
        # object is live per DP step).
        self._residuals_memo: Tuple[Optional[JoinPair], Tuple] = (None, ())
        self._join_columns_memo: Tuple[Optional[JoinPair], Tuple] = (None, ())
        # (id(outer), id(inner), outer_cols, nested_loop?) -> strategy list;
        # the hash and merge variants of one sub-plan combination share it.
        # A sub-plan combination only recurs within one DP pair, so
        # optimize_table clears this per pair — entries must not outlive the
        # pair or they would pin dominated plans in memory.
        self._strategy_cache: Dict[Tuple, List] = {}

    # ------------------------------------------------------------------
    # Relation-set enumeration (shared by both BF-CBO phases)
    # ------------------------------------------------------------------

    def connected_subsets(self) -> List[FrozenSet[str]]:
        """All plannable relation subsets, ordered by increasing size.

        Derived from the pair walk itself: singletons plus the union of every
        (csg, cmp) pair.  On the exact path that is precisely the connected
        subsets of each component plus the cross-product-stitched prefix
        unions; under the greedy fallback it is the (much smaller) set of
        join-tree nodes the DP will actually populate.
        """
        graph = self.join_graph
        masks = {graph.mask_of_alias(alias) for alias in self.query.aliases}
        masks.update(union for union, _, _ in self._pair_masks())
        return [graph.aliases_of(mask)
                for mask in sorted(masks, key=self._union_order_key)]

    def enumerate_join_pairs(self) -> Iterator[JoinPair]:
        """Yield every ordered (outer, inner) split, bottom-up by union size.

        The first bottom-up phase of BF-CBO iterates exactly this sequence to
        populate Δ; the second phase iterates it again to build costed plans,
        so both phases observe the same join combinations.  The constructed
        pair sequence is cached — the second walk is free.
        """
        if self._pair_cache is None:
            self._pair_cache = self._build_pairs()
        return iter(self._pair_cache)

    def _build_pairs(self) -> List[JoinPair]:
        graph = self.join_graph
        aliases_of = graph.aliases_of
        clause_pairs = list(zip(self.query.join_clauses, graph.clause_bits))
        # clauses_between is symmetric: both orientations of a split share one
        # clause tuple, keyed by the unordered (mask, mask) pair.
        clause_cache: Dict[Tuple[int, int], Tuple[JoinClause, ...]] = {}
        cache_get = clause_cache.get
        pairs: List[JoinPair] = []
        append = pairs.append
        make_pair = JoinPair
        for union_mask, outer_mask, inner_mask in self._pair_masks():
            key = ((outer_mask, inner_mask) if outer_mask < inner_mask
                   else (inner_mask, outer_mask))
            clauses = cache_get(key)
            if clauses is None:
                clauses = tuple(
                    clause for clause, (left_bit, right_bit) in clause_pairs
                    if (left_bit & outer_mask and right_bit & inner_mask)
                    or (left_bit & inner_mask and right_bit & outer_mask))
                clause_cache[key] = clauses
            append(make_pair(aliases_of(union_mask), aliases_of(outer_mask),
                             aliases_of(inner_mask), clauses, not clauses,
                             union_mask, outer_mask, inner_mask))
        return pairs

    def _pair_masks(self) -> Sequence[Tuple[int, int, int]]:
        """The ordered (union, outer, inner) mask triples of the DP walk.

        Computed once per enumerator (the query is fixed): DPccp emits each
        unordered connected (csg, cmp) pair once per component, both
        orientations are kept, cross-product stitching appends the
        component-prefix unions, and everything is sorted into the canonical
        bottom-up order.  With a shared :class:`EnumerationSequenceCache` the
        whole walk is skipped for join graphs whose shape
        (:meth:`~repro.core.joingraph.JoinGraph.edge_signature`) was already
        enumerated by an earlier query.

        Two adaptive escape hatches bound the Θ(3^n) walk on large graphs
        (docs/enumeration.md): queries beyond
        ``settings.fallback_relation_threshold`` relations skip the walk
        entirely, and a walk that emits more than
        ``settings.enumeration_budget`` unordered pairs is abandoned
        mid-flight.  Both return the greedy (GOO / IKKBZ) join tree of
        :mod:`repro.core.greedy` instead, run through the identical canonical
        ordering so the DP downstream cannot tell the sources apart.
        """
        if self._pair_masks_cache is None:
            self._pair_masks_cache = self._compute_pair_masks()
        return self._pair_masks_cache

    def _compute_pair_masks(self) -> Tuple[Tuple[int, int, int], ...]:
        graph = self.join_graph
        threshold = self.settings.fallback_relation_threshold
        if 0 < threshold < graph.num_relations:
            return self._fallback_pair_masks("relations")
        budget = self.settings.enumeration_budget
        signature: Optional[Tuple] = None
        if self._sequence_cache is not None:
            signature = graph.edge_signature()
            cached = self._sequence_cache.lookup(signature)
            if cached is not None:
                sequence, emitted = cached
                # The cache stores the walk's unordered pair count (or, for
                # an aborted walk, its lower bound) alongside the sequence:
                # a shape enumerated by a roomier session must not smuggle an
                # over-budget DP into a session whose budget exists to bound
                # exactly that DP — and a shape known to exceed this budget
                # skips the walk entirely.  The check keeps plans a pure
                # function of (query, settings), not of cache history.
                if 0 < budget < emitted:
                    self.stats.budget_exhausted = True
                    return self._fallback_pair_masks("budget")
                if sequence is not None:
                    return sequence
                # Only a lower bound was cached and our budget exceeds it:
                # fall through and run the walk for real.
        emitted = 0
        unordered_by_union: Dict[int, List[Tuple[int, int]]] = {}
        for component in graph.component_masks():
            for csg, cmp_mask in graph.csg_cmp_pairs(component):
                emitted += 1
                if 0 < budget < emitted:
                    self.stats.budget_exhausted = True
                    if signature is not None:
                        self._sequence_cache.store(signature, (None, emitted))
                    return self._fallback_pair_masks("budget")
                unordered_by_union.setdefault(csg | cmp_mask, []).append(
                    (csg, cmp_mask))
        for union, prefix, component in self._stitch_steps():
            unordered_by_union[union] = [(prefix, component)]
        sequence = self._canonical_triples(unordered_by_union)
        if signature is not None:
            self._sequence_cache.store(signature, (sequence, emitted))
        return sequence

    def _fallback_pair_masks(self, reason: str) -> Tuple[Tuple[int, int, int], ...]:
        """Greedy join tree as canonical mask triples (budget/threshold path).

        The greedy ordering depends on the catalog's statistics, not just the
        graph shape, so fallback sequences are never stored in the shape-keyed
        sequence cache.
        """
        self.stats.fallback_engaged = True
        self.stats.fallback_reason = reason
        unordered = greedy_unordered_pairs(self.join_graph, self.estimator)
        self.stats.greedy_merge_steps = sum(len(splits)
                                            for splits in unordered.values())
        return self._canonical_triples(unordered)

    def _canonical_triples(self, unordered_by_union: Dict[int, List[Tuple[int, int]]],
                           ) -> Tuple[Tuple[int, int, int], ...]:
        """Sort unordered splits into the canonical bottom-up pair sequence."""
        graph = self.join_graph
        ordered_unions = sorted(unordered_by_union,
                                key=self._union_order_key)
        triples: List[Tuple[int, int, int]] = []
        for union in ordered_unions:
            # Rank a split by its outer side's bit pattern over the
            # union's alphabetically sorted members (the seed enumerator's
            # subset-mask iteration order).  Each unordered pair is ranked
            # once: the swapped orientation's rank is the complement.
            position_of = {graph.bit_of[alias]: position
                           for position, alias
                           in enumerate(sorted(graph.aliases_of(union)))}
            full_rank = (1 << len(position_of)) - 1
            ranked: List[Tuple[int, int, int]] = []
            for csg, cmp_mask in unordered_by_union[union]:
                rank = 0
                remaining = csg
                while remaining:
                    low = remaining & -remaining
                    rank |= 1 << position_of[low.bit_length() - 1]
                    remaining ^= low
                ranked.append((rank, csg, cmp_mask))
                ranked.append((full_rank ^ rank, cmp_mask, csg))
            ranked.sort()
            triples.extend((union, outer, inner)
                           for _, outer, inner in ranked)
        return tuple(triples)

    def _stitch_steps(self) -> List[Tuple[int, int, int]]:
        """Cross-product stitching plan for disconnected join graphs.

        Components (ordered by lowest FROM-order bit) are stitched
        incrementally: C1∪C2, C1∪C2∪C3, ... — giving every intermediate
        disconnected union an explicit cross-product split instead of leaving
        multi-component queries unplannable.  Returns one
        ``(union, prefix, newest component)`` triple per stitch step, the
        source the exact pair walk appends after the per-component DPccp
        pairs (:meth:`connected_subsets` sees them through the walk's unions).
        """
        components = self.join_graph.component_masks()
        steps: List[Tuple[int, int, int]] = []
        accumulated = components[0] if components else 0
        for component in components[1:]:
            steps.append((accumulated | component, accumulated, component))
            accumulated |= component
        return steps

    def _union_order_key(self, mask: int) -> Tuple[int, Tuple[int, ...]]:
        """Bottom-up union order: size first, then FROM-order combination rank."""
        bits = tuple(JoinGraph._bit_indices(mask))
        return len(bits), bits

    # ------------------------------------------------------------------
    # Base relation plan lists
    # ------------------------------------------------------------------

    def row_width(self, alias: str) -> int:
        """Approximate output row width for a base relation."""
        if alias not in self._row_widths:
            schema = self.catalog.schema(self.query.table_name(alias))
            self._row_widths[alias] = max(8, schema.row_width_bytes)
        return self._row_widths[alias]

    def make_seq_scan(self, alias: str) -> ScanNode:
        """Build and cost a plain sequential scan sub-plan for ``alias``."""
        predicates = tuple(self.query.predicates_for(alias))
        base_rows = self.estimator.base_rows(alias)
        rows = self.estimator.scan_rows(alias)
        width = self.row_width(alias)
        cost = self.cost_model.seq_scan(base_rows, width, len(predicates))
        return ScanNode(alias=alias, table_name=self.query.table_name(alias),
                        predicates=predicates, bloom_filters=(),
                        pre_bloom_rows=rows, rows=rows, cost=cost,
                        properties=PlanProperties(), row_width=width)

    def make_bloom_scan(self, alias: str,
                        specs: Sequence[BloomFilterSpec]) -> ScanNode:
        """Build and cost a Bloom filter scan sub-plan for ``alias``.

        The Bloom filters are applied on top of the plain scan: the scan still
        reads every base row and evaluates local predicates, then probes each
        Bloom filter for every surviving row (the paper's ``k * input rows``
        extra cost), producing the reduced, semi-join-sized output.
        """
        plain = self.make_seq_scan(alias)
        specs = tuple(specs)
        rows = self.estimator.bloom_scan_rows(alias,
                                              [s.estimate for s in specs])
        extra = self.cost_model.bloom_apply(plain.pre_bloom_rows, len(specs))
        properties = PlanProperties(distribution=plain.properties.distribution,
                                    pending_blooms=frozenset(specs))
        return ScanNode(alias=alias, table_name=plain.table_name,
                        predicates=plain.predicates, bloom_filters=specs,
                        pre_bloom_rows=plain.pre_bloom_rows, rows=rows,
                        cost=plain.cost + extra, properties=properties,
                        row_width=plain.row_width)

    def build_base_plan_table(self) -> PlanTable:
        """Plan lists for single relations (plain scans only), mask-keyed."""
        table = PlanTable()
        for alias in self.query.aliases:
            plan_list = PlanList()
            plan_list.add(self.make_seq_scan(alias))
            table.set(self.join_graph.mask_of_alias(alias), plan_list)
        return table

    def build_base_plan_lists(self) -> Dict[FrozenSet[str], PlanList]:
        """Plan lists for single relations, keyed by frozenset (public seam)."""
        return self.build_base_plan_table().to_alias_dict(self.join_graph)

    # ------------------------------------------------------------------
    # The DP itself
    # ------------------------------------------------------------------

    def optimize_table(self, base_table: Optional[PlanTable] = None) -> PlanTable:
        """Run the bottom-up DP over the mask-keyed memo and return it.

        With ``settings.parallel_workers > 1`` the per-union plan lists of
        each size class are sharded across a worker pool (the unions of one
        class only read strictly smaller, already-merged entries, so they
        partition cleanly); the serial loop and the sharded path produce
        bit-identical memo contents.
        """
        table = base_table if base_table is not None \
            else self.build_base_plan_table()
        pairs = list(self.enumerate_join_pairs())
        if self.settings.parallel_workers > 1 and len(pairs) > 1:
            return self._optimize_table_sharded(table, pairs)
        for pair in pairs:
            self.stats.join_pairs_considered += 1
            if pair.is_cross_product:
                self.stats.cross_products_stitched += 1
            outer_list = table.get(pair.outer_mask)
            inner_list = table.get(pair.inner_mask)
            if not outer_list or not inner_list:
                continue
            self._dp_step(pair, outer_list, inner_list,
                          table.target(pair.union_mask))
        return table

    def _dp_step(self, pair: JoinPair, outer_list: PlanList,
                 inner_list: PlanList, target: PlanList) -> None:
        """One DP pair: combine every sub-plan pair into ``target``.

        Shared verbatim by the serial loop and the shard workers — the
        bit-identical-to-serial guarantee of the sharded path rests on this
        being the only implementation of the step.
        """
        for outer_plan in list(outer_list):
            for inner_plan in list(inner_list):
                self.stats.subplan_combinations += 1
                for join_plan in self.combine(pair, outer_plan, inner_plan):
                    if target.add(join_plan):
                        self.stats.plans_retained += 1
        if self.settings.use_heuristic7:
            self.stats.heuristic7_pruned += target.apply_heuristic7(
                self.settings.heuristic7_max_subplans)
        self._strategy_cache.clear()

    # -- sharded DP -----------------------------------------------------------

    def _optimize_table_sharded(self, table: PlanTable,
                                pairs: Sequence[JoinPair]) -> PlanTable:
        """Shard each size class's union masks across a worker pool.

        Size classes are processed in ascending order with a barrier between
        them: every pair of class *k* reads only plan lists of size ``< k``,
        which are fully merged into the shared table before class *k* starts.
        Within a class, whole unions (never single pairs) are dealt
        round-robin to the workers, each worker walks its pairs in canonical
        order, and the per-union :class:`PlanList` results are merged back in
        canonical union order — so memo contents, plan-list ordering and
        statistics (bar ``parallel_shards``) are identical to the serial loop.
        """
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        workers = self.settings.parallel_workers
        use_processes = self.settings.parallel_executor == "process"
        size_classes: Dict[int, List[JoinPair]] = {}
        for pair in pairs:
            size_classes.setdefault(bin(pair.union_mask).count("1"),
                                    []).append(pair)
        if use_processes:
            # The query context (catalog included — potentially hundreds of
            # MB of column arrays) is shipped once per worker process via the
            # initializer; per-shard payloads carry only the plan lists the
            # shard reads plus its pairs.
            pool_cm = ProcessPoolExecutor(
                max_workers=workers, initializer=_init_process_shard_worker,
                initargs=(self.catalog, self.query, self.settings,
                          self.cost_model.params))
        else:
            pool_cm = ThreadPoolExecutor(max_workers=workers)
        with pool_cm as pool:
            for size in sorted(size_classes):
                by_union: Dict[int, List[JoinPair]] = {}
                for pair in size_classes[size]:
                    by_union.setdefault(pair.union_mask, []).append(pair)
                unions = list(by_union)
                shards = [unions[start::workers] for start in range(workers)]
                futures = []
                for shard in shards:
                    if not shard:
                        continue
                    shard_pairs = [pair for union in shard
                                   for pair in by_union[union]]
                    if use_processes:
                        futures.append(pool.submit(
                            _process_pool_shard,
                            self._shard_input_lists(table, shard_pairs),
                            shard_pairs))
                    else:
                        futures.append(pool.submit(
                            self._thread_shard, table, shard_pairs))
                merged: Dict[int, PlanList] = {}
                for future in futures:
                    shard_lists, shard_stats = future.result()
                    self.stats.merge(shard_stats)
                    self.stats.parallel_shards += 1
                    merged.update(shard_lists)  # shard unions are disjoint
                for union in unions:
                    if union in merged:
                        table.set(union, merged[union])
        return table

    def _thread_shard(self, table: PlanTable, shard_pairs: List[JoinPair],
                      ) -> Tuple[Dict[int, PlanList], EnumerationStatistics]:
        """Run one shard on a fresh enumerator clone sharing this one's
        estimator/graph (reads of the shared table are safe: a shard only
        reads size classes merged before it started)."""
        worker = JoinEnumerator(self.catalog, self.query, self.estimator,
                                self.cost_model, self.settings,
                                self.join_graph)
        return worker._run_shard(table, shard_pairs)

    @staticmethod
    def _shard_input_lists(table: PlanTable, shard_pairs: List[JoinPair],
                           ) -> Dict[int, PlanList]:
        """Only the plan lists a process shard's pairs actually read."""
        needed = set()
        for pair in shard_pairs:
            needed.add(pair.outer_mask)
            needed.add(pair.inner_mask)
        return {mask: table.get(mask) for mask in needed
                if table.get(mask) is not None}

    def _run_shard(self, table: PlanTable, shard_pairs: List[JoinPair],
                   ) -> Tuple[Dict[int, PlanList], EnumerationStatistics]:
        """The DP loop over one shard's pairs, writing local targets."""
        results: Dict[int, PlanList] = {}
        for pair in shard_pairs:
            self.stats.join_pairs_considered += 1
            if pair.is_cross_product:
                self.stats.cross_products_stitched += 1
            outer_list = table.get(pair.outer_mask)
            inner_list = table.get(pair.inner_mask)
            if not outer_list or not inner_list:
                continue
            target = results.get(pair.union_mask)
            if target is None:
                target = PlanList()
                results[pair.union_mask] = target
            self._dp_step(pair, outer_list, inner_list, target)
        return results, self.stats

    def optimize(self, base_plan_lists: Optional[Dict[FrozenSet[str], PlanList]] = None,
                 ) -> Dict[FrozenSet[str], PlanList]:
        """Run bottom-up DP and return the plan list for every relation set."""
        base_table = None
        if base_plan_lists is not None:
            base_table = PlanTable.from_alias_dict(base_plan_lists,
                                                   self.join_graph)
        table = self.optimize_table(base_table)
        return table.to_alias_dict(self.join_graph)

    # ------------------------------------------------------------------
    # Combining two sub-plans into join plans
    # ------------------------------------------------------------------

    def combine(self, pair: JoinPair, outer_plan: PlanNode,
                inner_plan: PlanNode) -> List[PlanNode]:
        """All legal, costed join plans for one (outer, inner) sub-plan pair."""
        join_type = self._join_type_for(pair)
        if join_type is None:
            return []
        legal, resolved, pending = self._check_bloom_constraints(
            outer_plan, inner_plan)
        if not legal:
            self.stats.plans_rejected_bloom_constraint += 1
            return []
        if resolved and not self._resolution_allowed(resolved):
            self.stats.plans_rejected_bloom_constraint += 1
            return []
        must_use_hash = bool(resolved) or self._hash_required(outer_plan,
                                                              inner_plan)
        methods: List[JoinMethod] = [JoinMethod.HASH]
        if not must_use_hash and pair.clauses:
            methods.extend([JoinMethod.MERGE, JoinMethod.NESTED_LOOP])
        if not pair.clauses:
            methods = [JoinMethod.NESTED_LOOP]
        if not pair.clauses and must_use_hash:
            return []

        rows = self._join_output_rows(pair, pending)
        residuals = self._pair_residuals(pair)
        plans: List[PlanNode] = []
        for method in methods:
            for plan in self._physical_variants(pair, method, join_type,
                                                 outer_plan, inner_plan, rows,
                                                 resolved, pending, residuals):
                plans.append(plan)
        return plans

    def _pair_residuals(self, pair: JoinPair) -> Tuple:
        """Per-pair memo of :meth:`_new_residuals` (combine runs once per
        sub-plan combination but residuals only depend on the pair)."""
        key, cached = self._residuals_memo
        if key is pair:
            return cached
        residuals = self._new_residuals(pair)
        self._residuals_memo = (pair, residuals)
        return residuals

    # -- join-type / legality helpers -----------------------------------------

    def _join_type_for(self, pair: JoinPair) -> Optional[JoinType]:
        """Join type of the pair; None if this orientation is illegal.

        For left-outer/semi/anti joins the row-preserving (left in SQL order)
        side must be on the probe/outer side of our physical join.  FULL
        joins preserve *both* sides and the executor's FULL kernel pads
        unmatched rows from either input, so both orientations are legal —
        the DP is free to pick whichever side is the cheaper build side.
        A pair whose clauses carry *conflicting* non-inner types (e.g. one
        LEFT and one FULL between the same relation sets) has no
        well-defined single-join semantics and is rejected outright.
        """
        join_type = JoinType.INNER
        for clause in pair.clauses:
            if clause.join_type is JoinType.INNER:
                continue
            if join_type is not JoinType.INNER \
                    and clause.join_type is not join_type:
                return None
            join_type = clause.join_type
            if clause.join_type is JoinType.FULL:
                continue
            preserved = clause.left.relation
            if preserved not in pair.outer:
                return None
        return join_type

    def _hash_required(self, outer_plan: PlanNode, inner_plan: PlanNode) -> bool:
        """Hash join is forced whenever any pending Bloom filter's δ overlaps
        the other side (Section 3.6, second constraint)."""
        return any(spec.delta & inner_plan.relations
                   for spec in outer_plan.pending_blooms)

    def _check_bloom_constraints(self, outer_plan: PlanNode,
                                 inner_plan: PlanNode,
                                 ) -> Tuple[bool, List[BloomFilterSpec],
                                            FrozenSet[BloomFilterSpec]]:
        """Apply the δ-consistency rules of Section 3.6.

        Returns ``(legal, resolved_specs, pending_specs)`` where
        ``resolved_specs`` are the outer-side Bloom filters that this join will
        build (fully or through the Figure-3 exception) and ``pending_specs``
        is the property set of the joined sub-plan.
        """
        inner_relations = inner_plan.relations
        inner_pending = inner_plan.pending_blooms
        inner_delta_union: Set[str] = set()
        for spec in inner_pending:
            inner_delta_union |= spec.delta

        resolved: List[BloomFilterSpec] = []
        carried: List[BloomFilterSpec] = []
        # Deterministic spec order: the resolved list becomes the join's
        # built_filters tuple, and frozenset iteration order varies with the
        # per-process string hash seed.
        for spec in sorted(outer_plan.pending_blooms,
                           key=lambda s: s.filter_id):
            if spec.delta <= inner_relations:
                # Fully resolved: every required build relation is on the
                # inner side of this (necessarily hash) join.
                resolved.append(spec)
            elif spec.delta & inner_relations:
                # Partially provided: only legal through the Figure 3(c)
                # exception — the inner side is itself a Bloom filter sub-plan
                # whose pending δ's cover the outstanding relations.
                outstanding = spec.delta - inner_relations
                if outstanding <= inner_delta_union:
                    resolved.append(spec)
                else:
                    return False, [], frozenset()
            else:
                carried.append(spec)
        pending = frozenset(carried) | inner_pending
        return True, resolved, pending

    def _resolution_allowed(self, resolved: Sequence[BloomFilterSpec]) -> bool:
        """Heuristic 5 re-check at resolution time: the filter must still fit."""
        if not self.settings.enabled:
            return True
        return all(spec.estimate.build_ndv <= self.settings.max_build_ndv
                   for spec in resolved)

    # -- cardinality ----------------------------------------------------------

    def _join_output_rows(self, pair: JoinPair,
                          pending: FrozenSet[BloomFilterSpec]) -> float:
        """Estimated output rows of the joined relation.

        Resolved Bloom filters contribute nothing here — once the build side is
        joined, the filter only removes rows the join would have removed anyway
        (Section 3.6: "the cardinality estimate simply becomes the original
        cardinality estimate for the joined relation").  Unresolved filters
        keep reducing the estimate by their effective selectivity.
        """
        rows = self.estimator.join_rows(pair.union)
        # Sorted so the float product is bitwise-stable across processes.
        for spec in sorted(pending, key=lambda s: s.filter_id):
            rows *= spec.estimate.effective_selectivity
        return max(1.0, rows)

    def _new_residuals(self, pair: JoinPair) -> Tuple:
        """Residual predicates that become applicable exactly at this join."""
        now = set(self.query.residuals_applicable(pair.union))
        before = set(self.query.residuals_applicable(pair.outer))
        before |= set(self.query.residuals_applicable(pair.inner))
        return tuple(p for p in self.query.residual_predicates
                     if p in now and p not in before)

    # -- physical variants (join method x distribution strategy) ----------------

    def _physical_variants(self, pair: JoinPair, method: JoinMethod,
                           join_type: JoinType, outer_plan: PlanNode,
                           inner_plan: PlanNode, rows: float,
                           resolved: Sequence[BloomFilterSpec],
                           pending: FrozenSet[BloomFilterSpec],
                           residuals: Tuple) -> Iterator[PlanNode]:
        width = outer_plan.row_width + inner_plan.row_width
        outer_cols, inner_cols = self._pair_join_columns(pair)
        strategy_key = (id(outer_plan), id(inner_plan), outer_cols,
                        method is JoinMethod.NESTED_LOOP)
        strategies = self._strategy_cache.get(strategy_key)
        if strategies is None:
            strategies = self._distribution_strategies(method, outer_plan,
                                                       inner_plan, outer_cols,
                                                       inner_cols)
            self._strategy_cache[strategy_key] = strategies
        for outer_input, inner_input, distribution in strategies:
            cost = outer_input.cost + inner_input.cost
            cost = cost + self._join_work(method, outer_input, inner_input,
                                          rows, len(pair.clauses))
            if resolved:
                cost = cost + self.cost_model.bloom_build(inner_input.rows,
                                                          len(resolved))
            if residuals:
                cost = cost + self.cost_model.project(rows, len(residuals))
            properties = PlanProperties(distribution=distribution,
                                        pending_blooms=pending)
            yield JoinNode(method=method, join_type=join_type,
                           outer=outer_input, inner=inner_input,
                           clauses=pair.clauses,
                           built_filters=tuple(resolved),
                           residual_predicates=residuals,
                           rows=rows, cost=cost, properties=properties,
                           row_width=width)

    def _pair_join_columns(self, pair: JoinPair) -> Tuple[Tuple[ColumnRef, ...],
                                                          Tuple[ColumnRef, ...]]:
        """Per-pair memo of :meth:`_join_columns`."""
        key, cached = self._join_columns_memo
        if key is pair:
            return cached
        columns = self._join_columns(pair)
        self._join_columns_memo = (pair, columns)
        return columns

    def _join_columns(self, pair: JoinPair) -> Tuple[Tuple[ColumnRef, ...],
                                                     Tuple[ColumnRef, ...]]:
        outer_cols: List[ColumnRef] = []
        inner_cols: List[ColumnRef] = []
        for clause in pair.clauses:
            if clause.left.relation in pair.outer:
                outer_cols.append(clause.left)
                inner_cols.append(clause.right)
            else:
                outer_cols.append(clause.right)
                inner_cols.append(clause.left)
        return tuple(outer_cols), tuple(inner_cols)

    def _distribution_strategies(self, method: JoinMethod, outer_plan: PlanNode,
                                 inner_plan: PlanNode,
                                 outer_cols: Tuple[ColumnRef, ...],
                                 inner_cols: Tuple[ColumnRef, ...],
                                 ) -> List[Tuple[PlanNode, PlanNode, Distribution]]:
        """Streaming strategies: broadcast the build side, or shuffle both."""
        strategies: List[Tuple[PlanNode, PlanNode, Distribution]] = []
        # Strategy 1: broadcast the inner (build) side.
        broadcast_inner = self._exchange(inner_plan, ExchangeKind.BROADCAST, ())
        strategies.append((outer_plan, broadcast_inner,
                           outer_plan.properties.distribution))
        # Strategy 2: hash-redistribute both sides on the join columns (only
        # meaningful when there are join columns, i.e. not a cross product).
        if outer_cols and method is not JoinMethod.NESTED_LOOP:
            outer_shuffled = outer_plan
            if not outer_plan.properties.distribution.is_hashed_on(outer_cols):
                outer_shuffled = self._exchange(outer_plan,
                                                ExchangeKind.REDISTRIBUTE,
                                                outer_cols)
            inner_shuffled = inner_plan
            if not inner_plan.properties.distribution.is_hashed_on(inner_cols):
                inner_shuffled = self._exchange(inner_plan,
                                                ExchangeKind.REDISTRIBUTE,
                                                inner_cols)
            strategies.append((outer_shuffled, inner_shuffled,
                               Distribution.hashed(outer_cols)))
        return strategies

    def _exchange(self, child: PlanNode, kind: ExchangeKind,
                  keys: Tuple[ColumnRef, ...]) -> ExchangeNode:
        """Wrap ``child`` in an exchange operator and cost the data movement."""
        cache_key = (id(child), kind, keys)
        cached = self._exchange_cache.get(cache_key)
        if cached is not None:
            return cached
        node = self._make_exchange(child, kind, keys)
        self._exchange_cache[cache_key] = node
        return node

    def _make_exchange(self, child: PlanNode, kind: ExchangeKind,
                       keys: Tuple[ColumnRef, ...]) -> ExchangeNode:
        if kind is ExchangeKind.BROADCAST:
            move = self.cost_model.broadcast(child.rows, child.row_width)
            distribution = Distribution.broadcast()
        elif kind is ExchangeKind.REDISTRIBUTE:
            move = self.cost_model.redistribute(child.rows, child.row_width)
            distribution = Distribution.hashed(keys)
        else:
            move = self.cost_model.gather(child.rows, child.row_width)
            distribution = Distribution.singleton()
        properties = PlanProperties(distribution=distribution,
                                    pending_blooms=child.pending_blooms)
        return ExchangeNode(kind=kind, child=child, hash_keys=keys,
                            rows=child.rows, cost=child.cost + move,
                            properties=properties, row_width=child.row_width)

    def _join_work(self, method: JoinMethod, outer_input: PlanNode,
                   inner_input: PlanNode, output_rows: float,
                   num_clauses: int) -> Cost:
        """Cost of the join operator itself (inputs already costed)."""
        dop = self.cost_model.params.degree_of_parallelism
        build_rows = inner_input.rows
        # A broadcast build side is materialised (and hashed) once per worker.
        if inner_input.properties.distribution.kind is DistributionKind.BROADCAST:
            build_rows = inner_input.rows * dop
        if method is JoinMethod.HASH:
            return self.cost_model.hash_join(build_rows, outer_input.rows,
                                             output_rows, num_clauses)
        if method is JoinMethod.MERGE:
            return self.cost_model.merge_join(outer_input.rows,
                                              inner_input.rows, output_rows)
        inner_rescan = inner_input.rows * self.cost_model.params.cpu_tuple_cost
        return self.cost_model.nested_loop(outer_input.rows, inner_input.rows,
                                           output_rows, inner_rescan)


#: Per-process shard state installed by the pool initializer:
#: (catalog, query, settings, cost model, shared estimator).
_PROCESS_SHARD_STATE: Optional[Tuple] = None


def _init_process_shard_worker(catalog: Catalog, query: QueryBlock,
                               settings: BfCboSettings,
                               cost_parameters: "CostParameters") -> None:
    """Receive the pickled query context once per worker process.

    The estimator is built here and shared by every shard the process runs,
    so its selectivity caches warm up exactly once per worker.
    """
    global _PROCESS_SHARD_STATE
    _PROCESS_SHARD_STATE = (catalog, query, settings,
                            CostModel(cost_parameters),
                            CardinalityEstimator(catalog, query))


def _process_pool_shard(input_lists: Dict[int, PlanList],
                        shard_pairs: List[JoinPair],
                        ) -> Tuple[Dict[int, PlanList], EnumerationStatistics]:
    """Process-pool entry point for one DP shard.

    Estimates and costs are deterministic functions of the statistics, so a
    process shard costs plans identically to a thread shard.  A fresh
    enumerator per shard keeps the returned statistics scoped to this shard;
    it runs at module level because bound methods of a live enumerator do
    not pickle.
    """
    catalog, query, settings, cost_model, estimator = _PROCESS_SHARD_STATE
    worker = JoinEnumerator(catalog, query, estimator, cost_model, settings)
    return worker._run_shard(PlanTable(lists=dict(input_lists)), shard_pairs)
