"""Bound scalar expressions and predicates.

These classes are the *semantic* expression model shared by the optimizer and
the executor.  The SQL front end (:mod:`repro.sql`) parses text into a purely
syntactic AST and the binder lowers that AST into these classes, resolving
column references against the catalog.

Every expression knows which relations (by alias) it references, can estimate
nothing by itself (estimation lives in :mod:`repro.core.cardinality`), and can
evaluate itself against a *column resolver* — a callable mapping a
:class:`ColumnRef` to a numpy array — which is how the executor runs
predicates and projections without the expression model knowing anything about
physical storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

ColumnResolver = Callable[["ColumnRef"], np.ndarray]


class ExpressionError(ValueError):
    """Raised for malformed or unevaluatable expressions."""


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class ScalarExpression:
    """Base class for scalar (row-wise) expressions."""

    def referenced_columns(self) -> List["ColumnRef"]:
        """All column references appearing in this expression."""
        raise NotImplementedError

    def referenced_relations(self) -> FrozenSet[str]:
        """Aliases of all relations referenced by this expression."""
        return frozenset(col.relation for col in self.referenced_columns())

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        """Evaluate the expression over a batch of rows."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(ScalarExpression):
    """A reference to ``relation.column`` where relation is a FROM alias."""

    relation: str
    column: str

    def referenced_columns(self) -> List["ColumnRef"]:
        return [self]

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        return resolve(self)

    def __str__(self) -> str:
        return "%s.%s" % (self.relation, self.column)


@dataclass(frozen=True)
class Literal(ScalarExpression):
    """A constant value."""

    value: object

    def referenced_columns(self) -> List[ColumnRef]:
        return []

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        return np.asarray(self.value)

    def __str__(self) -> str:
        return repr(self.value)


class ArithmeticOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True)
class Arithmetic(ScalarExpression):
    """Binary arithmetic over two scalar expressions."""

    op: ArithmeticOp
    left: ScalarExpression
    right: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        lhs = np.asarray(self.left.evaluate(resolve), dtype=np.float64)
        rhs = np.asarray(self.right.evaluate(resolve), dtype=np.float64)
        if self.op is ArithmeticOp.ADD:
            return lhs + rhs
        if self.op is ArithmeticOp.SUB:
            return lhs - rhs
        if self.op is ArithmeticOp.MUL:
            return lhs * rhs
        if self.op is ArithmeticOp.DIV:
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(rhs != 0, lhs / rhs, 0.0)
        raise ExpressionError("unknown arithmetic operator %r" % self.op)

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.left, self.op.value, self.right)


@dataclass(frozen=True)
class ExtractYear(ScalarExpression):
    """``EXTRACT(YEAR FROM date_column)`` over the integer date encoding."""

    operand: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        days = np.asarray(self.operand.evaluate(resolve), dtype=np.int64)
        # Days-since-epoch to year without pulling in datetime per row.
        dates = days.astype("datetime64[D]")
        return dates.astype("datetime64[Y]").astype(np.int64) + 1970

    def __str__(self) -> str:
        return "extract(year from %s)" % (self.operand,)


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateCall(ScalarExpression):
    """An aggregate function call appearing in a SELECT list."""

    func: AggregateFunction
    operand: Optional[ScalarExpression]  # None for COUNT(*)
    distinct: bool = False

    def referenced_columns(self) -> List[ColumnRef]:
        return [] if self.operand is None else self.operand.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        raise ExpressionError("aggregates are evaluated by the Aggregate "
                              "operator, not row-wise")

    def __str__(self) -> str:
        inner = "*" if self.operand is None else str(self.operand)
        prefix = "distinct " if self.distinct else ""
        return "%s(%s%s)" % (self.func.value, prefix, inner)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for boolean (filter) expressions."""

    def referenced_columns(self) -> List[ColumnRef]:
        """All column references appearing in this predicate."""
        raise NotImplementedError

    def referenced_relations(self) -> FrozenSet[str]:
        """Aliases of all relations referenced by this predicate."""
        return frozenset(col.relation for col in self.referenced_columns())

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        """Evaluate to a boolean mask over a batch of rows."""
        raise NotImplementedError


class ComparisonOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_COMPARATORS = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.LE: lambda a, b: a <= b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.GE: lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` where either side is a scalar expression."""

    op: ComparisonOp
    left: ScalarExpression
    right: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        lhs = self.left.evaluate(resolve)
        rhs = self.right.evaluate(resolve)
        return np.asarray(_COMPARATORS[self.op](lhs, rhs), dtype=bool)

    def is_equi_join(self) -> bool:
        """True if this is ``col = col`` across two different relations."""
        return (self.op is ComparisonOp.EQ
                and isinstance(self.left, ColumnRef)
                and isinstance(self.right, ColumnRef)
                and self.left.relation != self.right.relation)

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op.value, self.right)


@dataclass(frozen=True)
class Between(Predicate):
    """``operand BETWEEN low AND high`` (inclusive on both ends)."""

    operand: ScalarExpression
    low: ScalarExpression
    high: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return (self.operand.referenced_columns()
                + self.low.referenced_columns()
                + self.high.referenced_columns())

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        value = self.operand.evaluate(resolve)
        return np.asarray((value >= self.low.evaluate(resolve))
                          & (value <= self.high.evaluate(resolve)), dtype=bool)

    def __str__(self) -> str:
        return "%s between %s and %s" % (self.operand, self.low, self.high)


@dataclass(frozen=True)
class InList(Predicate):
    """``operand IN (v1, v2, ...)`` with literal list elements."""

    operand: ScalarExpression
    values: Tuple[object, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        value = self.operand.evaluate(resolve)
        return np.isin(value, np.asarray(list(self.values)))

    def __str__(self) -> str:
        return "%s in (%s)" % (self.operand,
                               ", ".join(repr(v) for v in self.values))


@dataclass(frozen=True)
class Like(Predicate):
    """``operand LIKE pattern`` supporting ``%`` and ``_`` wildcards."""

    operand: ScalarExpression
    pattern: str
    negated: bool = False

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def _regex(self):
        import re

        parts = []
        for char in self.pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        return re.compile("^" + "".join(parts) + "$")

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        regex = self._regex()
        values = self.operand.evaluate(resolve)
        matches = np.fromiter((bool(regex.match(str(v))) for v in values),
                              dtype=bool, count=len(values))
        return ~matches if self.negated else matches

    def __str__(self) -> str:
        op = "not like" if self.negated else "like"
        return "%s %s %r" % (self.operand, op, self.pattern)


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation of another predicate."""

    operand: Predicate

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        return ~self.operand.evaluate(resolve)

    def __str__(self) -> str:
        return "not (%s)" % (self.operand,)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return [col for p in self.operands for col in p.referenced_columns()]

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        result: Optional[np.ndarray] = None
        for pred in self.operands:
            mask = pred.evaluate(resolve)
            result = mask if result is None else (result & mask)
        if result is None:
            raise ExpressionError("empty AND")
        return result

    def __str__(self) -> str:
        return " and ".join("(%s)" % p for p in self.operands)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    operands: Tuple[Predicate, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return [col for p in self.operands for col in p.referenced_columns()]

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        result: Optional[np.ndarray] = None
        for pred in self.operands:
            mask = pred.evaluate(resolve)
            result = mask if result is None else (result | mask)
        if result is None:
            raise ExpressionError("empty OR")
        return result

    def __str__(self) -> str:
        return " or ".join("(%s)" % p for p in self.operands)


def conjuncts(predicate: Predicate) -> List[Predicate]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(predicate, And):
        result: List[Predicate] = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return result
    return [predicate]


def conjunction(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    """Combine predicates into a single AND (or return the single / None)."""
    preds = [p for p in predicates if p is not None]
    if not preds:
        return None
    if len(preds) == 1:
        return preds[0]
    return And(tuple(preds))
