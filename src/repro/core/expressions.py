"""Bound scalar expressions and predicates.

These classes are the *semantic* expression model shared by the optimizer and
the executor.  The SQL front end (:mod:`repro.sql`) parses text into a purely
syntactic AST and the binder lowers that AST into these classes, resolving
column references against the catalog.

Every expression knows which relations (by alias) it references, can estimate
nothing by itself (estimation lives in :mod:`repro.core.cardinality`), and can
evaluate itself against a *column resolver* — a callable mapping a
:class:`ColumnRef` to a numpy array — which is how the executor runs
predicates and projections without the expression model knowing anything about
physical storage.

NULL semantics (see ``docs/nulls.md``): evaluation follows SQL's three-valued
logic.  The executor-facing entry point is :meth:`evaluate_masked`, which
takes a *masked* resolver returning ``(values, null_mask)`` pairs — the mask
is ``None`` for all-valid columns (the fast path, where evaluation is exactly
the legacy vectorised code) or a boolean array with ``True`` marking NULLs.
Scalar expressions propagate NULL through arithmetic and comparisons;
predicates use Kleene logic for AND/OR/NOT.  A predicate's value array means
"definitely TRUE": rows whose truth value is NULL carry ``False`` there and
``True`` in the returned mask, so a filter can keep exactly the
definitely-true rows without consulting the mask.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

#: Legacy values-only resolver, still accepted by :meth:`evaluate`.
ColumnResolver = Callable[["ColumnRef"], np.ndarray]

#: Masked resolver used by the executor: maps a :class:`ColumnRef` to
#: ``(values, null_mask)`` where ``null_mask`` is ``None`` for all-valid
#: columns or a boolean array marking NULL positions.
MaskedColumnResolver = Callable[
    ["ColumnRef"], Tuple[np.ndarray, Optional[np.ndarray]]]


class ExpressionError(ValueError):
    """Raised for malformed or unevaluatable expressions."""


def combine_null_masks(*masks: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """OR together any number of optional null masks (``None`` = all valid)."""
    result: Optional[np.ndarray] = None
    for mask in masks:
        if mask is None:
            continue
        result = mask if result is None else (result | mask)
    return result


def _adapt_resolver(resolve: ColumnResolver) -> MaskedColumnResolver:
    """Wrap a values-only resolver into the masked protocol (no masks)."""

    def resolve_masked(ref: "ColumnRef",
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        return resolve(ref), None

    return resolve_masked


def _is_scalar_null(mask: Optional[np.ndarray]) -> bool:
    """True for the 0-d all-null mask produced by a NULL literal."""
    return (mask is not None and getattr(mask, "ndim", 1) == 0 and bool(mask))


def _full_mask(mask: Optional[np.ndarray],
               shape: Tuple[int, ...]) -> Optional[np.ndarray]:
    """Broadcast an optional mask to ``shape`` (None stays None)."""
    if mask is None:
        return None
    return np.broadcast_to(np.asarray(mask, dtype=bool), shape)


def fill_masked(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Copy of ``values`` with null positions replaced by comparable filler.

    The single place that knows how to canonicalise filler so masked rows
    can safely flow through comparators, sorts and group-key hashing:
    object arrays borrow a valid value (``None`` does not order against
    ``str``; an all-null column gets ``""``), fixed strings get the empty
    string, everything else zero.  The filled positions stay masked at the
    call sites, so the filler is never observable as data.
    """
    values = np.asarray(values)
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), values.shape)
    out = values.copy()
    if values.dtype.kind == "O":
        valid = values[~mask]
        out[mask] = valid[0] if valid.size else ""
    elif values.dtype.kind in ("U", "S"):
        out[mask] = values.dtype.type()
    else:
        out[mask] = values.dtype.type(0)
    return out


def _comparable(values: np.ndarray,
                mask: Optional[np.ndarray]) -> np.ndarray:
    """Make masked object-array filler safe to feed through a comparator.

    Non-object dtypes (NaN, 0, ``""``) are already comparable and pass
    through untouched; object columns are re-filled via :func:`fill_masked`.
    """
    values = np.asarray(values)
    if mask is None or values.dtype.kind != "O" or values.ndim == 0:
        return values
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), values.shape)
    if not mask.any():
        return values
    return fill_masked(values, mask)


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class ScalarExpression:
    """Base class for scalar (row-wise) expressions."""

    def referenced_columns(self) -> List["ColumnRef"]:
        """All column references appearing in this expression."""
        raise NotImplementedError

    def referenced_relations(self) -> FrozenSet[str]:
        """Aliases of all relations referenced by this expression."""
        return frozenset(col.relation for col in self.referenced_columns())

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Evaluate to ``(values, null_mask)`` over a batch of rows.

        ``null_mask`` is ``None`` when every value is valid; values at null
        positions are unspecified filler and must never be read as data.
        """
        raise NotImplementedError

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        """Values-only evaluation against a NULL-free resolver (legacy)."""
        return self.evaluate_masked(_adapt_resolver(resolve))[0]


@dataclass(frozen=True)
class ColumnRef(ScalarExpression):
    """A reference to ``relation.column`` where relation is a FROM alias."""

    relation: str
    column: str

    def referenced_columns(self) -> List["ColumnRef"]:
        return [self]

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        return resolve(self)

    def __str__(self) -> str:
        return "%s.%s" % (self.relation, self.column)


@dataclass(frozen=True)
class Literal(ScalarExpression):
    """A constant value; ``Literal(None)`` is the SQL NULL literal."""

    value: object

    def referenced_columns(self) -> List[ColumnRef]:
        return []

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if self.value is None:
            return np.zeros((), dtype=np.float64), np.ones((), dtype=bool)
        return np.asarray(self.value), None

    def __str__(self) -> str:
        return "null" if self.value is None else repr(self.value)


class ArithmeticOp(enum.Enum):
    """Binary arithmetic operators."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True)
class Arithmetic(ScalarExpression):
    """Binary arithmetic over two scalar expressions (NULL-propagating)."""

    op: ArithmeticOp
    left: ScalarExpression
    right: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        lhs_raw, lhs_mask = self.left.evaluate_masked(resolve)
        rhs_raw, rhs_mask = self.right.evaluate_masked(resolve)
        lhs = np.asarray(lhs_raw, dtype=np.float64)
        rhs = np.asarray(rhs_raw, dtype=np.float64)
        if self.op is ArithmeticOp.ADD:
            values = lhs + rhs
        elif self.op is ArithmeticOp.SUB:
            values = lhs - rhs
        elif self.op is ArithmeticOp.MUL:
            values = lhs * rhs
        elif self.op is ArithmeticOp.DIV:
            with np.errstate(divide="ignore", invalid="ignore"):
                values = np.where(rhs != 0, lhs / rhs, 0.0)
        else:
            raise ExpressionError("unknown arithmetic operator %r" % self.op)
        mask = combine_null_masks(lhs_mask, rhs_mask)
        return values, _full_mask(mask, np.shape(values))

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.left, self.op.value, self.right)


@dataclass(frozen=True)
class ExtractYear(ScalarExpression):
    """``EXTRACT(YEAR FROM date_column)`` over the integer date encoding."""

    operand: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        raw, mask = self.operand.evaluate_masked(resolve)
        days = np.asarray(raw)
        if mask is not None and days.dtype.kind == "f":
            # Null positions may hold NaN; zero them before the integer cast.
            days = np.where(np.broadcast_to(mask, days.shape), 0.0, days)
        days = days.astype(np.int64)
        # Days-since-epoch to year without pulling in datetime per row.
        dates = days.astype("datetime64[D]")
        years = dates.astype("datetime64[Y]").astype(np.int64) + 1970
        return years, _full_mask(mask, np.shape(years))

    def __str__(self) -> str:
        return "extract(year from %s)" % (self.operand,)


@dataclass(frozen=True)
class Coalesce(ScalarExpression):
    """``COALESCE(a, b, ...)``: the first non-NULL operand, row-wise.

    Works directly over the mask representation: a row takes the value of
    the first operand whose mask is clear there; rows where every operand is
    NULL stay NULL.  With no masks anywhere the first operand passes through
    untouched (the mask-free fast path).
    """

    operands: Tuple[ScalarExpression, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ExpressionError("coalesce takes at least two operands")

    def referenced_columns(self) -> List["ColumnRef"]:
        return [col for operand in self.operands
                for col in operand.referenced_columns()]

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        first_values, first_mask = self.operands[0].evaluate_masked(resolve)
        if first_mask is None or not np.any(first_mask):
            # Mask-free fast path: the fallbacks are never even evaluated.
            return first_values, None
        out = np.array(np.asarray(first_values))
        pending = np.array(np.broadcast_to(
            np.asarray(first_mask, dtype=bool), out.shape))
        for operand in self.operands[1:]:
            if not pending.any():
                break
            values, mask = operand.evaluate_masked(resolve)
            shape = np.broadcast_shapes(out.shape, np.shape(values))
            if shape != out.shape:
                out = np.array(np.broadcast_to(out, shape))
                pending = np.array(np.broadcast_to(pending, shape))
            values = np.broadcast_to(np.asarray(values), shape)
            valid = pending if mask is None else (
                pending & ~np.broadcast_to(np.asarray(mask, dtype=bool),
                                           shape))
            out = np.where(valid, values, out)
            pending = pending & ~valid
        return out, (pending if pending.any() else None)

    def __str__(self) -> str:
        return "coalesce(%s)" % ", ".join(str(op) for op in self.operands)


@dataclass(frozen=True)
class NullIf(ScalarExpression):
    """``NULLIF(a, b)``: NULL where ``a = b`` is definitely TRUE, else ``a``.

    SQL semantics over the mask representation: a row nulls out only when
    the equality holds with both sides valid — comparing with a NULL is
    UNKNOWN, which leaves ``a`` (including its own NULLs) untouched.
    """

    left: ScalarExpression
    right: ScalarExpression

    def referenced_columns(self) -> List["ColumnRef"]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        values, value_mask = self.left.evaluate_masked(resolve)
        other, other_mask = self.right.evaluate_masked(resolve)
        if _is_scalar_null(value_mask) or _is_scalar_null(other_mask):
            # A NULL literal side makes the equality UNKNOWN everywhere:
            # the left operand passes through unchanged.
            return values, _full_mask(value_mask, np.shape(values))
        equal = np.asarray(_comparable(values, value_mask)
                           == _comparable(other, other_mask), dtype=bool)
        unknown = _full_mask(combine_null_masks(value_mask, other_mask),
                             equal.shape)
        if unknown is not None:
            equal = equal & ~unknown
        shape = np.broadcast_shapes(np.shape(values), equal.shape)
        mask = combine_null_masks(_full_mask(value_mask, shape),
                                  np.broadcast_to(equal, shape))
        if mask is not None and not mask.any():
            mask = None
        return np.broadcast_to(np.asarray(values), shape), mask

    def __str__(self) -> str:
        return "nullif(%s, %s)" % (self.left, self.right)


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class AggregateCall(ScalarExpression):
    """An aggregate function call appearing in a SELECT list."""

    func: AggregateFunction
    operand: Optional[ScalarExpression]  # None for COUNT(*)
    distinct: bool = False

    def referenced_columns(self) -> List[ColumnRef]:
        return [] if self.operand is None else self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        raise ExpressionError("aggregates are evaluated by the Aggregate "
                              "operator, not row-wise")

    def __str__(self) -> str:
        inner = "*" if self.operand is None else str(self.operand)
        prefix = "distinct " if self.distinct else ""
        return "%s(%s%s)" % (self.func.value, prefix, inner)


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for boolean (filter) expressions.

    Masked evaluation returns ``(is_true, null_mask)`` where ``is_true[i]``
    holds only when the predicate is *definitely* TRUE for row ``i`` —
    UNKNOWN rows carry ``False`` there and ``True`` in ``null_mask``, so SQL
    WHERE semantics (drop non-TRUE rows) is ``filter(is_true)``.
    """

    def referenced_columns(self) -> List[ColumnRef]:
        """All column references appearing in this predicate."""
        raise NotImplementedError

    def referenced_relations(self) -> FrozenSet[str]:
        """Aliases of all relations referenced by this predicate."""
        return frozenset(col.relation for col in self.referenced_columns())

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Evaluate to a ``(definitely-true, unknown)`` mask pair."""
        raise NotImplementedError

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        """Boolean mask over a NULL-free batch (legacy values-only path)."""
        return self.evaluate_masked(_adapt_resolver(resolve))[0]


class ComparisonOp(enum.Enum):
    """Comparison operators supported in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_COMPARATORS = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.LE: lambda a, b: a <= b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.GE: lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` where either side is a scalar expression.

    Comparing anything with NULL yields UNKNOWN, never TRUE or FALSE.
    """

    op: ComparisonOp
    left: ScalarExpression
    right: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        lhs, lhs_mask = self.left.evaluate_masked(resolve)
        rhs, rhs_mask = self.right.evaluate_masked(resolve)
        if _is_scalar_null(lhs_mask) or _is_scalar_null(rhs_mask):
            # One side is the NULL literal: skip the comparator entirely (the
            # dtypes may not even be comparable) — every row is UNKNOWN.
            shape = np.broadcast_shapes(np.shape(lhs), np.shape(rhs))
            return np.zeros(shape, dtype=bool), np.ones(shape, dtype=bool)
        values = np.asarray(
            _COMPARATORS[self.op](_comparable(lhs, lhs_mask),
                                  _comparable(rhs, rhs_mask)), dtype=bool)
        mask = _full_mask(combine_null_masks(lhs_mask, rhs_mask), values.shape)
        if mask is not None:
            values = values & ~mask
        return values, mask

    def is_equi_join(self) -> bool:
        """True if this is ``col = col`` across two different relations."""
        return (self.op is ComparisonOp.EQ
                and isinstance(self.left, ColumnRef)
                and isinstance(self.right, ColumnRef)
                and self.left.relation != self.right.relation)

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op.value, self.right)


@dataclass(frozen=True)
class Between(Predicate):
    """``operand BETWEEN low AND high`` (inclusive on both ends)."""

    operand: ScalarExpression
    low: ScalarExpression
    high: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return (self.operand.referenced_columns()
                + self.low.referenced_columns()
                + self.high.referenced_columns())

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        value, value_mask = self.operand.evaluate_masked(resolve)
        low, low_mask = self.low.evaluate_masked(resolve)
        high, high_mask = self.high.evaluate_masked(resolve)
        if any(_is_scalar_null(m) for m in (value_mask, low_mask, high_mask)):
            shape = np.broadcast_shapes(np.shape(value), np.shape(low),
                                        np.shape(high))
            return np.zeros(shape, dtype=bool), np.ones(shape, dtype=bool)
        value = _comparable(value, value_mask)
        low = _comparable(low, low_mask)
        high = _comparable(high, high_mask)
        values = np.asarray((value >= low) & (value <= high), dtype=bool)
        mask = _full_mask(combine_null_masks(value_mask, low_mask, high_mask),
                          values.shape)
        if mask is not None:
            values = values & ~mask
        return values, mask

    def __str__(self) -> str:
        return "%s between %s and %s" % (self.operand, self.low, self.high)


@dataclass(frozen=True)
class InList(Predicate):
    """``operand IN (v1, v2, ...)`` with literal list elements.

    A NULL element in the list follows SQL: rows that match a non-null
    element are TRUE, all other rows are UNKNOWN (never FALSE).
    """

    operand: ScalarExpression
    values: Tuple[object, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        value, value_mask = self.operand.evaluate_masked(resolve)
        value = _comparable(value, value_mask)  # isin may sort object arrays
        literals = [v for v in self.values if v is not None]
        has_null_element = len(literals) < len(self.values)
        if literals:
            matches = np.isin(value, np.asarray(literals))
        else:
            matches = np.zeros(np.shape(value), dtype=bool)
        mask = _full_mask(value_mask, matches.shape)
        if has_null_element:
            unknown = ~matches if mask is None else (~matches | mask)
            return matches & ~unknown, unknown
        if mask is not None:
            matches = matches & ~mask
        return matches, mask

    def __str__(self) -> str:
        return "%s in (%s)" % (self.operand,
                               ", ".join(repr(v) for v in self.values))


@dataclass(frozen=True)
class Like(Predicate):
    """``operand [NOT] LIKE pattern`` supporting ``%`` and ``_`` wildcards."""

    operand: ScalarExpression
    pattern: str
    negated: bool = False

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def _regex(self) -> "re.Pattern":
        parts = []
        for char in self.pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        return re.compile("^" + "".join(parts) + "$")

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        regex = self._regex()
        values, value_mask = self.operand.evaluate_masked(resolve)
        values = np.atleast_1d(np.asarray(values))
        matches = np.fromiter((bool(regex.match(str(v))) for v in values),
                              dtype=bool, count=len(values))
        if self.negated:
            matches = ~matches
        mask = _full_mask(value_mask, matches.shape)
        if mask is not None:
            matches = matches & ~mask
        return matches, mask

    def __str__(self) -> str:
        op = "not like" if self.negated else "like"
        return "%s %s %r" % (self.operand, op, self.pattern)


@dataclass(frozen=True)
class IsNull(Predicate):
    """``operand IS NULL`` — always TRUE or FALSE, never UNKNOWN."""

    operand: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        values, mask = self.operand.evaluate_masked(resolve)
        shape = np.shape(values)
        if mask is None:
            return np.zeros(shape, dtype=bool), None
        return np.broadcast_to(np.asarray(mask, dtype=bool), shape), None

    def __str__(self) -> str:
        return "%s is null" % (self.operand,)


@dataclass(frozen=True)
class IsNotNull(Predicate):
    """``operand IS NOT NULL`` — always TRUE or FALSE, never UNKNOWN."""

    operand: ScalarExpression

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        values, mask = self.operand.evaluate_masked(resolve)
        shape = np.shape(values)
        if mask is None:
            return np.ones(shape, dtype=bool), None
        return ~np.broadcast_to(np.asarray(mask, dtype=bool), shape), None

    def __str__(self) -> str:
        return "%s is not null" % (self.operand,)


@dataclass(frozen=True)
class Not(Predicate):
    """Kleene negation: NOT UNKNOWN stays UNKNOWN."""

    operand: Predicate

    def referenced_columns(self) -> List[ColumnRef]:
        return self.operand.referenced_columns()

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        values, mask = self.operand.evaluate_masked(resolve)
        if mask is None:
            return ~values, None
        return ~values & ~mask, mask

    def __str__(self) -> str:
        return "not (%s)" % (self.operand,)


@dataclass(frozen=True)
class And(Predicate):
    """Kleene conjunction: FALSE dominates UNKNOWN."""

    operands: Tuple[Predicate, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return [col for p in self.operands for col in p.referenced_columns()]

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if not self.operands:
            raise ExpressionError("empty AND")
        all_true: Optional[np.ndarray] = None
        any_false: Optional[np.ndarray] = None
        any_null: Optional[np.ndarray] = None
        for pred in self.operands:
            values, mask = pred.evaluate_masked(resolve)
            is_false = ~values if mask is None else (~values & ~mask)
            all_true = values if all_true is None else (all_true & values)
            any_false = is_false if any_false is None else (any_false | is_false)
            any_null = combine_null_masks(any_null, mask)
        if any_null is None:
            return all_true, None
        return all_true, (any_null & ~any_false)

    def __str__(self) -> str:
        return " and ".join("(%s)" % p for p in self.operands)


@dataclass(frozen=True)
class Or(Predicate):
    """Kleene disjunction: TRUE dominates UNKNOWN."""

    operands: Tuple[Predicate, ...]

    def referenced_columns(self) -> List[ColumnRef]:
        return [col for p in self.operands for col in p.referenced_columns()]

    def evaluate_masked(self, resolve: MaskedColumnResolver,
                        ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if not self.operands:
            raise ExpressionError("empty OR")
        any_true: Optional[np.ndarray] = None
        any_null: Optional[np.ndarray] = None
        for pred in self.operands:
            values, mask = pred.evaluate_masked(resolve)
            any_true = values if any_true is None else (any_true | values)
            any_null = combine_null_masks(any_null, mask)
        if any_null is None:
            return any_true, None
        return any_true, (any_null & ~any_true)

    def __str__(self) -> str:
        return " or ".join("(%s)" % p for p in self.operands)


def conjuncts(predicate: Predicate) -> List[Predicate]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(predicate, And):
        result: List[Predicate] = []
        for operand in predicate.operands:
            result.extend(conjuncts(operand))
        return result
    return [predicate]


def conjunction(predicates: Sequence[Predicate]) -> Optional[Predicate]:
    """Combine predicates into a single AND (or return the single / None)."""
    preds = [p for p in predicates if p is not None]
    if not preds:
        return None
    if len(preds) == 1:
        return preds[0]
    return And(tuple(preds))
