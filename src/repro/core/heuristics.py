"""Configuration of the BF-CBO search-space-limiting heuristics.

The paper enumerates nine heuristics (Section 3.10).  All of them are
represented here as independently togglable settings so that the ablation
experiments (Table 3 and the heuristic-ablation example) can flip them without
touching optimizer code.  The default values mirror Section 4.1 of the paper:

* selectivity threshold 2/3 (Heuristic 6),
* apply-side row threshold 10,000 (Heuristic 2),
* maximum build-side distinct count 2,000,000 (Heuristic 5),
* Heuristic 7 disabled for the main results, enabled for Table 3 with a
  plan-list cap of four.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class BfCboSettings:
    """Tunable behaviour of Bloom-filter-aware bottom-up optimization."""

    #: Master switch: when False the optimizer behaves exactly like plain CBO.
    enabled: bool = True

    # Heuristic 1: candidate only on the larger relation of a join clause.
    use_heuristic1: bool = True
    # Heuristic 2: minimum (filtered) row count of the apply relation.
    min_apply_rows: float = 10_000.0
    # Heuristic 3: skip δ's whose build side is an unfiltered, lossless PK for
    # an FK apply column.  (A correctness-neutral skip, but listed as H3.)
    use_heuristic3: bool = True
    # Heuristic 4: apply all candidates on a relation simultaneously.
    apply_all_candidates: bool = True
    # Heuristic 5: maximum estimated distinct values on the filter build side.
    max_build_ndv: float = 2_000_000.0
    # Heuristic 6: keep a Bloom filter only if its true-match selectivity is at
    # most this value (2/3 means it must remove at least a third of the rows).
    max_selectivity: float = 2.0 / 3.0
    # Heuristic 7: if a relation accumulates more than ``heuristic7_max_subplans``
    # Bloom filter sub-plans, keep only the one with the fewest estimated rows.
    use_heuristic7: bool = False
    heuristic7_max_subplans: int = 4
    # Heuristic 8: skip Bloom filter candidates entirely when the total
    # join-input cardinality observed in the first pass is below the threshold
    # (fast transactional queries are not worth the extra planning effort).
    use_heuristic8: bool = False
    heuristic8_min_total_join_input: float = 1_000_000.0
    # Heuristic 9: allow candidates on both sides of a clause, keeping only
    # δ's whose estimated build cardinality is smaller than the apply side.
    use_heuristic9: bool = False

    # Safety cap used only by the naïve single-pass baseline (Section 3.1) so
    # that the exponential blow-up experiment terminates.
    naive_max_subplans_per_relation: int = 64

    # ------------------------------------------------------------------
    # Adaptive large-join-graph planning (docs/enumeration.md).
    # These knobs bound the Θ(3^n) DPccp pair walk the way production
    # optimizers do: an enumeration budget plus a greedy ordering fallback.
    # The defaults are far above anything an 8-relation TPC-H query (or the
    # pinned chain-12 / star-12 / clique-10 benchmark topologies) emits, so
    # plans below the fallback regime are byte-identical to the exact DP.
    # ------------------------------------------------------------------

    #: Maximum unordered (csg, cmp) pairs the exact DPccp walk may emit
    #: before the enumerator abandons it and falls back to the greedy
    #: ordering; <= 0 means unlimited.
    enumeration_budget: int = 100_000
    #: Relation count above which the exact walk is not even attempted and
    #: the greedy fallback is used directly; <= 0 means never.
    fallback_relation_threshold: int = 18
    #: Worker count for sharding the bottom-up DP's per-union plan lists;
    #: <= 1 runs the classic serial loop.
    parallel_workers: int = 0
    #: Worker pool flavour for the sharded DP: "thread" (default) or
    #: "process" (each worker re-derives estimator state from the catalog).
    parallel_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.parallel_executor not in ("thread", "process"):
            raise ValueError(
                "parallel_executor must be 'thread' or 'process', got %r"
                % (self.parallel_executor,))

    def with_overrides(self, **kwargs: object) -> "BfCboSettings":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def plan_relevant(self) -> "BfCboSettings":
        """A copy with plan-neutral execution knobs normalized away.

        The sharded DP is bit-identical to the serial loop, so
        ``parallel_workers`` / ``parallel_executor`` must not fragment
        plan-cache keys: two sessions differing only in those knobs share
        one cached plan.
        """
        if self.parallel_workers == 0 and self.parallel_executor == "thread":
            return self
        return replace(self, parallel_workers=0, parallel_executor="thread")

    @classmethod
    def disabled(cls) -> "BfCboSettings":
        """Settings for plain cost-based optimization (no Bloom awareness)."""
        return cls(enabled=False)

    @classmethod
    def paper_defaults(cls) -> "BfCboSettings":
        """The configuration used for the paper's main results (Table 2)."""
        return cls()

    @classmethod
    def with_heuristic7(cls) -> "BfCboSettings":
        """The configuration used for Table 3 (Heuristic 7 enabled)."""
        return cls(use_heuristic7=True)


def planner_overrides(enumeration_budget: Optional[int] = None,
                      fallback_relation_threshold: Optional[int] = None,
                      parallel_workers: Optional[int] = None,
                      parallel_executor: Optional[str] = None) -> dict:
    """Non-None adaptive-planner kwargs as a ``with_overrides``-ready dict.

    Shared by :class:`repro.api.Database` and :class:`repro.api.Session` so
    the two override layers expose the identical knob set and cannot drift.
    Validates eagerly: a typo'd ``parallel_executor`` fails at construction
    time, not as a surprise on the first query.
    """
    if parallel_executor is not None \
            and parallel_executor not in ("thread", "process"):
        raise ValueError(
            "parallel_executor must be 'thread' or 'process', got %r"
            % (parallel_executor,))
    return {key: value for key, value in (
        ("enumeration_budget", enumeration_budget),
        ("fallback_relation_threshold", fallback_relation_threshold),
        ("parallel_workers", parallel_workers),
        ("parallel_executor", parallel_executor)) if value is not None}


def scaled_settings(scale_factor: float,
                    base: Optional[BfCboSettings] = None) -> BfCboSettings:
    """Scale the paper's absolute heuristic thresholds to a scale factor.

    The paper's thresholds (Heuristic 2's 10,000-row apply minimum and
    Heuristic 5's 2,000,000-distinct-value filter cap) were chosen for TPC-H
    SF100.  When the reproduction runs at a smaller scale factor the same
    *relative* behaviour is obtained by scaling both thresholds by
    ``scale_factor / 100``.
    """
    base = base or BfCboSettings.paper_defaults()
    ratio = max(scale_factor / 100.0, 1e-9)
    return base.with_overrides(
        min_apply_rows=max(1.0, base.min_apply_rows * ratio),
        max_build_ndv=max(64.0, base.max_build_ndv * ratio),
        heuristic8_min_total_join_input=base.heuristic8_min_total_join_input * ratio,
    )
